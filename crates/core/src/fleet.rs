//! Virtual-time fleet simulation of a DPP session.
//!
//! The threaded [`crate::DppSession`] runs real bytes on real threads; this
//! module complements it with an *analytic* session in simulated time, for
//! experiments at fleet scale (hours of training, hundreds of workers)
//! where executing every byte is unnecessary: given a measured per-sample
//! worker demand and a trainer demand, it integrates buffer levels, stall
//! time, and the auto-scaling controller's decisions over virtual seconds —
//! the controller loop of §III-B1 ("maintain a non-zero number of buffered
//! tensors ... with minimal DPP resource requirement").

use crate::autoscale::{AutoScaler, ScalingDecision, WorkerTelemetry};
use hwsim::{NodeSpec, ResourceVector};
use serde::{Deserialize, Serialize};

/// One sampled point of the fleet trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetPoint {
    /// Virtual time in seconds.
    pub t: f64,
    /// Live workers.
    pub workers: usize,
    /// Buffered tensors (aggregate batches across workers).
    pub buffered: f64,
    /// Instantaneous supply in samples/s.
    pub supply: f64,
    /// Whether the trainer was stalled during this step.
    pub stalled: bool,
}

/// Result of a fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTrace {
    /// Sampled points, one per controller tick.
    pub points: Vec<FleetPoint>,
    /// Fraction of time the trainer spent stalled.
    pub stall_fraction: f64,
    /// Mean live workers over the run.
    pub mean_workers: f64,
    /// Final worker count.
    pub final_workers: usize,
}

impl FleetTrace {
    /// Workers strictly needed to meet demand (supply == demand).
    pub fn ideal_workers(demand_qps: f64, per_worker_qps: f64) -> f64 {
        demand_qps / per_worker_qps
    }

    /// Over-provisioning factor versus the ideal worker count.
    pub fn overprovisioning(&self, demand_qps: f64, per_worker_qps: f64) -> f64 {
        self.mean_workers / Self::ideal_workers(demand_qps, per_worker_qps)
    }
}

/// Analytic fleet simulation of one session.
#[derive(Debug, Clone)]
pub struct FleetSim {
    /// The compute node workers run on.
    pub node: NodeSpec,
    /// Measured per-sample worker resource demand.
    pub per_sample: ResourceVector,
    /// Trainer fleet demand in samples/s.
    pub demand_qps: f64,
    /// Samples per buffered batch.
    pub batch_size: f64,
    /// Per-worker buffer capacity in batches.
    pub buffer_capacity: f64,
    /// Seconds between controller ticks.
    pub tick_secs: f64,
}

impl FleetSim {
    /// Creates a simulation with the paper-ish defaults: 256-sample
    /// batches, 8-batch worker buffers, 10-second controller ticks.
    pub fn new(node: NodeSpec, per_sample: ResourceVector, demand_qps: f64) -> Self {
        Self {
            node,
            per_sample,
            demand_qps,
            batch_size: 256.0,
            buffer_capacity: 8.0,
            tick_secs: 10.0,
        }
    }

    /// Saturation throughput of one worker, in samples/s.
    pub fn per_worker_qps(&self) -> f64 {
        self.node.max_rate(&self.per_sample)
    }

    /// Runs the simulation for `duration_secs` of virtual time starting
    /// from `initial_workers`, letting `scaler` drive the fleet.
    pub fn run(
        &self,
        scaler: &mut AutoScaler,
        initial_workers: usize,
        duration_secs: f64,
    ) -> FleetTrace {
        let per_worker = self.per_worker_qps();
        let mut workers = initial_workers.max(1);
        let mut draining = 0usize;
        let mut buffered = 0.0f64; // batches, aggregate
        let mut points = Vec::new();
        let mut stalled_time = 0.0;
        let mut worker_time = 0.0;
        let mut t = 0.0;
        while t < duration_secs {
            // A worker produces at its saturation rate while buffers have
            // room; demand drains the buffer.
            let supply = workers as f64 * per_worker;
            let cap = workers as f64 * self.buffer_capacity;
            let net_batches = (supply - self.demand_qps) / self.batch_size;
            buffered = (buffered + net_batches * self.tick_secs).clamp(0.0, cap);
            let stalled = buffered <= 0.0 && supply < self.demand_qps;
            if stalled {
                stalled_time += self.tick_secs;
            }
            worker_time += workers as f64 * self.tick_secs;
            points.push(FleetPoint {
                t,
                workers,
                buffered,
                supply,
                stalled,
            });

            // Controller tick: per-worker telemetry synthesized from the
            // aggregate state.
            let per_worker_buffered = (buffered / workers as f64).round() as usize;
            let utilization = (self.demand_qps / supply).min(1.0);
            let telemetry = vec![
                WorkerTelemetry {
                    buffered_batches: per_worker_buffered,
                    max_utilization: utilization,
                };
                workers
            ];
            match scaler.evaluate(&telemetry) {
                ScalingDecision::ScaleUp(k) => workers += k,
                ScalingDecision::ScaleDown(k) => {
                    // Draining takes one tick: capacity leaves next step.
                    // Clamp to the scaler's own floor — the old hardcoded
                    // `workers - 1` silently kept one worker alive even
                    // when the controller was configured to scale to zero.
                    draining = k.min(workers.saturating_sub(scaler.config().min_workers));
                }
                ScalingDecision::Hold => {}
            }
            if draining > 0 {
                workers -= draining;
                draining = 0;
            }
            t += self.tick_secs;
        }
        FleetTrace {
            stall_fraction: stalled_time / duration_secs,
            mean_workers: worker_time / duration_secs,
            final_workers: workers,
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscale::ScalerConfig;

    fn rm_like() -> FleetSim {
        // ~10k samples/s per worker on C-v1.
        let per_sample = ResourceVector {
            cpu_cycles: 45e9 / 10_000.0,
            membw_bytes: 1_000.0,
            ..Default::default()
        };
        FleetSim::new(NodeSpec::c_v1(), per_sample, 240_000.0) // needs ~24 workers
    }

    #[test]
    fn autoscaler_converges_to_demand_and_removes_stalls() {
        let sim = rm_like();
        let mut scaler = AutoScaler::default();
        let trace = sim.run(&mut scaler, 1, 4_000.0);
        let ideal = FleetTrace::ideal_workers(sim.demand_qps, sim.per_worker_qps());
        // Converged near the ideal fleet size without gross over-provisioning.
        assert!(
            (trace.final_workers as f64) >= ideal,
            "final {} vs ideal {ideal:.1}",
            trace.final_workers
        );
        assert!(
            trace.final_workers as f64 <= ideal * 1.8,
            "final {} vs ideal {ideal:.1}",
            trace.final_workers
        );
        // Early stalls while ramping, none at the end.
        let late = &trace.points[trace.points.len() / 2..];
        assert!(late.iter().all(|p| !p.stalled), "stalls after convergence");
        assert!(trace.stall_fraction < 0.5);
    }

    #[test]
    fn adequate_initial_fleet_never_stalls() {
        let sim = rm_like();
        let mut scaler = AutoScaler::default();
        let trace = sim.run(&mut scaler, 30, 2_000.0);
        assert_eq!(trace.stall_fraction, 0.0);
    }

    #[test]
    fn overprovisioned_fleet_is_drained() {
        let sim = rm_like();
        let mut scaler = AutoScaler::new(ScalerConfig {
            min_workers: 1,
            ..Default::default()
        });
        let trace = sim.run(&mut scaler, 120, 6_000.0);
        assert!(
            trace.final_workers < 120,
            "should drain from 120, got {}",
            trace.final_workers
        );
        assert_eq!(trace.stall_fraction, 0.0, "draining must not cause stalls");
    }

    #[test]
    fn zero_min_workers_drains_fleet_to_zero() {
        // Regression: the drain clamp was hardcoded to `workers - 1`, so a
        // scaler configured with `min_workers: 0` could never empty the
        // fleet even with zero demand. The clamp now honors the scaler's
        // own floor; the fleet touches zero and (via the empty-fleet
        // recovery path) bounces back rather than freezing.
        let mut sim = rm_like();
        sim.demand_qps = 0.0;
        let mut scaler = AutoScaler::new(ScalerConfig {
            min_workers: 0,
            ..Default::default()
        });
        let trace = sim.run(&mut scaler, 4, 2_000.0);
        assert!(
            trace.points.iter().any(|p| p.workers == 0),
            "fleet never reached zero workers: min over run = {}",
            trace.points.iter().map(|p| p.workers).min().unwrap()
        );
        assert!(trace.final_workers <= 1, "idle fleet stayed scaled up");
    }

    #[test]
    fn min_workers_floor_respected_while_draining() {
        let mut sim = rm_like();
        sim.demand_qps = 0.0;
        let mut scaler = AutoScaler::new(ScalerConfig {
            min_workers: 3,
            ..Default::default()
        });
        let trace = sim.run(&mut scaler, 24, 2_000.0);
        assert!(
            trace.points.iter().all(|p| p.workers >= 3),
            "fleet dipped below the configured floor"
        );
        assert_eq!(trace.final_workers, 3);
    }

    #[test]
    fn demand_spikes_grow_the_fleet_back() {
        // Converge at low demand, then raise demand mid-run.
        let mut sim = rm_like();
        sim.demand_qps = 60_000.0;
        let mut scaler = AutoScaler::default();
        let low = sim.run(&mut scaler, 1, 3_000.0);
        let low_workers = low.final_workers;
        sim.demand_qps = 240_000.0;
        let high = sim.run(&mut scaler, low_workers, 3_000.0);
        assert!(
            high.final_workers > low_workers,
            "fleet should grow {} -> {}",
            low_workers,
            high.final_workers
        );
        let late = &high.points[high.points.len() * 3 / 4..];
        assert!(late.iter().all(|p| !p.stalled));
    }

    #[test]
    fn overprovisioning_metric() {
        let sim = rm_like();
        let mut scaler = AutoScaler::default();
        let trace = sim.run(&mut scaler, 24, 2_000.0);
        let f = trace.overprovisioning(sim.demand_qps, sim.per_worker_qps());
        assert!(f > 0.9 && f < 2.0, "overprovisioning {f:.2}");
    }
}
