//! Columnar (flatmap) transform execution over materialized tensors.
//!
//! §VII: DWRF and tensor formats both represent feature values contiguously
//! across rows, so DPP Workers adopted in-memory flatmaps to avoid format
//! conversions; the TorchArrow/Velox efforts push further toward vectorized
//! columnar execution. This module is that execution path: normalization
//! ops applied directly to [`MiniBatchTensor`] columns in single flat-buffer
//! passes, with results identical to the per-sample row path.
//!
//! Only ops that are per-element over one feature qualify; feature
//! *generation* (Cartesian, NGram, ...) materializes new columns and stays
//! on the row path. [`ColumnarPlan::try_from_plan`] splits a plan
//! accordingly.

use crate::op::TransformOp;
use dsi_types::rng::mix2;
use dsi_types::{FeatureId, MiniBatchTensor};
use serde::{Deserialize, Serialize};

/// A transform plan restricted to columnar-executable ops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnarPlan {
    ops: Vec<TransformOp>,
}

impl ColumnarPlan {
    /// Whether an op can run columnar (per-element over one feature).
    pub fn supports(op: &TransformOp) -> bool {
        matches!(
            op,
            TransformOp::SigridHash { .. }
                | TransformOp::PositiveModulus { .. }
                | TransformOp::FirstX { .. }
                | TransformOp::ComputeScore { .. }
                | TransformOp::Clamp { .. }
                | TransformOp::Logit { .. }
                | TransformOp::BoxCox { .. }
                | TransformOp::GetLocalHour { .. }
        )
    }

    /// Builds a columnar plan when *every* op qualifies; `None` otherwise.
    pub fn try_from_plan(plan: &crate::plan::TransformPlan) -> Option<ColumnarPlan> {
        if plan.ops().iter().all(Self::supports) {
            Some(ColumnarPlan {
                ops: plan.ops().to_vec(),
            })
        } else {
            None
        }
    }

    /// Splits a plan into `(columnar-executable suffix, row-path prefix)`:
    /// the longest suffix of qualifying ops can run columnar after the
    /// row path handles the rest.
    pub fn split_plan(
        plan: &crate::plan::TransformPlan,
    ) -> (crate::plan::TransformPlan, ColumnarPlan) {
        let ops = plan.ops();
        let mut cut = ops.len();
        while cut > 0 && Self::supports(&ops[cut - 1]) {
            cut -= 1;
        }
        (
            crate::plan::TransformPlan::new(ops[..cut].to_vec()),
            ColumnarPlan {
                ops: ops[cut..].to_vec(),
            },
        )
    }

    /// The plan's ops.
    pub fn ops(&self) -> &[TransformOp] {
        &self.ops
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the plan to a materialized mini-batch. `dense_ids` gives the
    /// dense matrix's column order (as passed to `Batch::materialize`).
    pub fn apply(&self, tensor: &mut MiniBatchTensor, dense_ids: &[FeatureId]) {
        let dense_col = |f: FeatureId| dense_ids.iter().position(|&d| d == f);
        for op in &self.ops {
            match op {
                TransformOp::SigridHash {
                    input,
                    salt,
                    modulus,
                } => {
                    if let Some(t) = tensor.sparse.iter_mut().find(|t| t.feature() == *input) {
                        t.map_values_in_place(|v| mix2(*salt, v) % modulus);
                    }
                }
                TransformOp::PositiveModulus { input, modulus } => {
                    if let Some(t) = tensor.sparse.iter_mut().find(|t| t.feature() == *input) {
                        t.map_values_in_place(|v| v % modulus);
                    }
                }
                TransformOp::FirstX { input, x } => {
                    if let Some(t) = tensor.sparse.iter_mut().find(|t| t.feature() == *input) {
                        t.truncate_rows(*x);
                    }
                }
                TransformOp::ComputeScore {
                    input,
                    scale,
                    offset,
                } => {
                    if let Some(t) = tensor.sparse.iter_mut().find(|t| t.feature() == *input) {
                        t.map_scores_in_place(|s| s * scale + offset);
                    }
                }
                TransformOp::Clamp { input, min, max } => {
                    if let Some(c) = dense_col(*input) {
                        tensor.dense.map_col_in_place(c, |v| v.clamp(*min, *max));
                    }
                }
                TransformOp::Logit { input } => {
                    if let Some(c) = dense_col(*input) {
                        tensor.dense.map_col_in_place(c, |v| {
                            let p = (v as f64).clamp(1e-6, 1.0 - 1e-6);
                            (p / (1.0 - p)).ln() as f32
                        });
                    }
                }
                TransformOp::BoxCox { input, lambda } => {
                    if let Some(c) = dense_col(*input) {
                        tensor.dense.map_col_in_place(c, |v| {
                            let x = (v as f64).max(1e-9);
                            if lambda.abs() < 1e-12 {
                                x.ln() as f32
                            } else {
                                ((x.powf(*lambda) - 1.0) / lambda) as f32
                            }
                        });
                    }
                }
                TransformOp::GetLocalHour {
                    input,
                    tz_offset_secs,
                } => {
                    if let Some(c) = dense_col(*input) {
                        let tz = *tz_offset_secs as i64;
                        tensor.dense.map_col_in_place(c, |v| {
                            ((v as i64 + tz).rem_euclid(86_400) / 3_600) as f32
                        });
                    }
                }
                // try_from_plan/split_plan guarantee only supported ops here.
                other => debug_assert!(Self::supports(other), "unsupported columnar op"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::TransformPlan;
    use dsi_types::{Batch, Sample, SparseList};

    fn batch() -> Batch {
        (0..64u64)
            .map(|i| {
                let mut s = Sample::new(0.0);
                s.set_dense(FeatureId(0), i as f32 / 64.0);
                s.set_dense(FeatureId(1), i as f32 * 3_600.0);
                s.set_sparse(
                    FeatureId(10),
                    SparseList::from_ids((0..(i % 6 + 1)).map(|k| i * 31 + k).collect()),
                );
                s
            })
            .collect()
    }

    fn norm_plan() -> TransformPlan {
        TransformPlan::new(vec![
            TransformOp::SigridHash {
                input: FeatureId(10),
                salt: 5,
                modulus: 997,
            },
            TransformOp::FirstX {
                input: FeatureId(10),
                x: 3,
            },
            TransformOp::Logit {
                input: FeatureId(0),
            },
            TransformOp::Clamp {
                input: FeatureId(1),
                min: 0.0,
                max: 10_000.0,
            },
        ])
    }

    #[test]
    fn columnar_matches_row_path_exactly() {
        let dense_ids = [FeatureId(0), FeatureId(1)];
        let sparse_ids = [FeatureId(10)];
        let plan = norm_plan();

        // Row path: transform samples, then materialize.
        let mut row_batch = batch();
        for s in row_batch.samples_mut() {
            plan.apply_sample(s);
        }
        let row_tensor = row_batch.materialize(&dense_ids, &sparse_ids);

        // Columnar path: materialize raw, then transform tensors.
        let columnar = ColumnarPlan::try_from_plan(&plan).expect("all ops qualify");
        let mut col_tensor = batch().materialize(&dense_ids, &sparse_ids);
        columnar.apply(&mut col_tensor, &dense_ids);

        assert_eq!(row_tensor, col_tensor);
    }

    #[test]
    fn generation_ops_disqualify_full_columnar() {
        let plan = TransformPlan::new(vec![
            TransformOp::NGram {
                input: FeatureId(10),
                n: 2,
                output: FeatureId(20),
            },
            TransformOp::SigridHash {
                input: FeatureId(20),
                salt: 0,
                modulus: 100,
            },
        ]);
        assert!(ColumnarPlan::try_from_plan(&plan).is_none());
        // But the hash suffix still splits off.
        let (row, col) = ColumnarPlan::split_plan(&plan);
        assert_eq!(row.len(), 1);
        assert_eq!(col.ops().len(), 1);
    }

    #[test]
    fn split_respects_order() {
        // A qualifying op *before* a generation op must stay on the row
        // path (it may feed the generator).
        let plan = TransformPlan::new(vec![
            TransformOp::FirstX {
                input: FeatureId(10),
                x: 4,
            },
            TransformOp::NGram {
                input: FeatureId(10),
                n: 2,
                output: FeatureId(20),
            },
            TransformOp::Clamp {
                input: FeatureId(0),
                min: 0.0,
                max: 1.0,
            },
        ]);
        let (row, col) = ColumnarPlan::split_plan(&plan);
        assert_eq!(row.len(), 2);
        assert_eq!(col.ops().len(), 1);
    }

    #[test]
    fn split_of_pure_normalization_is_all_columnar() {
        let (row, col) = ColumnarPlan::split_plan(&norm_plan());
        assert!(row.is_empty());
        assert_eq!(col.ops().len(), 4);
    }

    #[test]
    fn missing_features_are_ignored() {
        let columnar = ColumnarPlan::try_from_plan(&TransformPlan::new(vec![
            TransformOp::SigridHash {
                input: FeatureId(99),
                salt: 0,
                modulus: 10,
            },
            TransformOp::Clamp {
                input: FeatureId(98),
                min: 0.0,
                max: 1.0,
            },
        ]))
        .expect("qualifying ops");
        let mut tensor = batch().materialize(&[FeatureId(0)], &[FeatureId(10)]);
        let before = tensor.clone();
        columnar.apply(&mut tensor, &[FeatureId(0)]);
        assert_eq!(tensor, before);
    }
}
