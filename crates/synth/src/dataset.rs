//! Deterministic synthetic sample generation for any schema.

use dedup::DedupConfig;
use dsi_types::rng::SplitMix64;
use dsi_types::{FeatureId, FeatureKind, Sample, Schema, SparseList};

/// RecD-style session duplication state: while a session is open, members
/// reuse the canonical sparse payload; a dedicated RNG stream draws session
/// sizes so the base (dense/label) stream is independent of the config.
#[derive(Debug)]
struct DupState {
    cfg: DedupConfig,
    rng: SplitMix64,
    remaining: usize,
    canonical_sparse: Vec<(FeatureId, SparseList)>,
}

impl DupState {
    /// Session size: uniform in `[1, 2*ratio - 1]` (mean `ratio`), capped
    /// at the config's `max_set_size`.
    fn next_session_len(&mut self) -> usize {
        let span = (2.0 * self.cfg.duplication_ratio - 1.0).max(1.0).round() as u64;
        let len = 1 + self.rng.next_below(span) as usize;
        len.min(self.cfg.max_set_size.max(1))
    }
}

/// Generates samples whose per-feature presence, list lengths, and value
/// distributions follow the schema's [`dsi_types::FeatureDef`]s.
///
/// Categorical ids are drawn from a large space with reuse (the same ids
/// recur across samples), so downstream compression and hashing see
/// realistic repetition.
#[derive(Debug)]
pub struct SampleGenerator {
    schema: Schema,
    rng: SplitMix64,
    /// Click-through-style positive rate.
    positive_rate: f64,
    produced: u64,
    dup: Option<DupState>,
    hashed_ids: bool,
}

impl SampleGenerator {
    /// Creates a generator over `schema` with a deterministic seed.
    pub fn new(schema: &Schema, seed: u64) -> Self {
        Self {
            schema: schema.clone(),
            rng: SplitMix64::new(seed),
            positive_rate: 0.1,
            produced: 0,
            dup: None,
            hashed_ids: false,
        }
    }

    /// Sets the positive-label rate (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_positive_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate in [0, 1]");
        self.positive_rate = rate;
        self
    }

    /// Enables RecD-style session duplication (builder-style): consecutive
    /// samples form sessions whose members share one bit-identical sparse
    /// payload while dense features and labels stay fresh, with mean
    /// session length `config.duplication_ratio`. Session sizes are drawn
    /// from a dedicated RNG stream, so enabling duplication never perturbs
    /// the dense/label value sequence of the base generator.
    pub fn with_duplication(mut self, config: DedupConfig) -> Self {
        // Peek (without consuming) the base stream's state to derive an
        // independent session-size stream.
        let mut peek = self.rng;
        self.dup = Some(DupState {
            cfg: config,
            rng: SplitMix64::new(peek.next_u64() ^ 0x5e55_10ed_dedb_0b5eu64),
            remaining: 0,
            canonical_sparse: Vec::new(),
        });
        self
    }

    /// Logs categorical ids with production statistics (builder-style):
    /// ids are drawn from production-cardinality populations (a
    /// million-id hot set instead of the small-domain default) and passed
    /// through a 64-bit finalizer, modeling the logging tier where sparse
    /// ids are full-width hashes over huge entity spaces. RNG consumption
    /// per sample is unchanged, so dense values, labels, presence, and
    /// list lengths stay bit-identical to the default generator — only the
    /// id values differ. This is what gives sparse streams their dominant
    /// byte share on disk: per-stripe id cardinality exceeds any
    /// dictionary, as it does at production scale.
    pub fn with_hashed_ids(mut self) -> Self {
        self.hashed_ids = true;
        self
    }

    /// Number of samples produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Generates the next sample.
    pub fn next_sample(&mut self) -> Sample {
        self.produced += 1;
        let label = if self.rng.chance(self.positive_rate) {
            1.0
        } else {
            0.0
        };
        let mut s = Sample::new(label);
        // Iterate a snapshot of defs to avoid borrowing issues.
        let defs: Vec<_> = self.schema.iter().cloned().collect();
        for def in defs {
            if !def.status.is_logged() {
                continue;
            }
            if !self.rng.chance(def.coverage) {
                continue;
            }
            match def.kind {
                FeatureKind::Dense => {
                    // Mild log-normal-ish continuous values.
                    let v = self.rng.next_lognormal(1.0, 0.5) as f32;
                    s.set_dense(def.id, v);
                }
                FeatureKind::Sparse | FeatureKind::ScoredSparse => {
                    let len = self.sample_length(def.avg_len);
                    let mut list = SparseList::new();
                    let scored = def.kind == FeatureKind::ScoredSparse;
                    for _ in 0..len {
                        let id = self.sample_categorical(def.id.0);
                        if scored {
                            list.push_scored(id, self.rng.next_f64() as f32);
                        } else {
                            list.push(id);
                        }
                    }
                    s.set_sparse(def.id, list);
                }
            }
        }
        // Session duplication: members regenerate (keeping the base RNG
        // stream bit-identical to a duplication-free run) and then swap
        // their sparse map for the session's canonical payload.
        if let Some(dup) = &mut self.dup {
            if dup.remaining > 0 {
                dup.remaining -= 1;
                let own: Vec<FeatureId> = s.sparse_iter().map(|(f, _)| f).collect();
                for fid in own {
                    s.remove(fid);
                }
                for (fid, list) in &dup.canonical_sparse {
                    s.set_sparse(*fid, list.clone());
                }
            } else {
                dup.canonical_sparse = s.sparse_iter().map(|(f, l)| (f, l.clone())).collect();
                dup.remaining = dup.next_session_len() - 1;
            }
        }
        s
    }

    /// Generates `n` samples.
    pub fn take_samples(&mut self, n: usize) -> Vec<Sample> {
        (0..n).map(|_| self.next_sample()).collect()
    }

    fn sample_length(&mut self, mean: f64) -> usize {
        // Geometric-flavored length with the requested mean, at least 1.
        let len = self.rng.next_exp(mean.max(1.0)).round() as usize;
        len.clamp(1, (mean * 8.0).ceil() as usize)
    }

    fn sample_categorical(&mut self, feature_salt: u64) -> u64 {
        // 80/20 reuse: most draws come from a per-feature hot set. The
        // hot/cold populations scale with the id regime (small enumerated
        // domain by default, production-cardinality entity spaces under
        // `with_hashed_ids`); either way exactly one `chance` and one
        // `next_below` are consumed, keeping the two regimes' RNG streams
        // aligned draw for draw.
        let (hot, cold) = if self.hashed_ids {
            (1_000_000, 1_000_000_000)
        } else {
            (1_000, 1_000_000)
        };
        let id = if self.rng.chance(0.8) {
            feature_salt * 1_000_003 + self.rng.next_below(hot)
        } else {
            feature_salt * 1_000_003 + self.rng.next_below(cold)
        };
        if self.hashed_ids {
            // SplitMix64 finalizer: widens the id to the full 64-bit hash
            // domain without consuming RNG state.
            let mut z = id.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        } else {
            id
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::RmProfile;
    use dsi_types::{FeatureDef, FeatureId};

    fn small_schema() -> Schema {
        let mut s = Schema::new();
        s.add(FeatureDef::dense(FeatureId(0)));
        s.add(FeatureDef::sparse(FeatureId(1), 10.0));
        s.add(FeatureDef::sparse(FeatureId(2), 5.0).with_coverage(0.5));
        s
    }

    #[test]
    fn deterministic_for_seed() {
        let schema = small_schema();
        let a: Vec<_> = SampleGenerator::new(&schema, 42).take_samples(10);
        let b: Vec<_> = SampleGenerator::new(&schema, 42).take_samples(10);
        assert_eq!(a, b);
        let c: Vec<_> = SampleGenerator::new(&schema, 43).take_samples(10);
        assert_ne!(a, c);
    }

    #[test]
    fn coverage_respected() {
        let schema = small_schema();
        let mut g = SampleGenerator::new(&schema, 7);
        let n = 2000;
        let mut f2_present = 0;
        for _ in 0..n {
            let s = g.next_sample();
            assert!(s.dense(FeatureId(0)).is_some()); // full coverage
            if s.sparse(FeatureId(2)).is_some() {
                f2_present += 1;
            }
        }
        let frac = f2_present as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "coverage {frac}");
    }

    #[test]
    fn sparse_lengths_near_mean() {
        let schema = small_schema();
        let mut g = SampleGenerator::new(&schema, 9);
        let mut total = 0usize;
        let mut count = 0usize;
        for _ in 0..2000 {
            let s = g.next_sample();
            if let Some(l) = s.sparse(FeatureId(1)) {
                total += l.len();
                count += 1;
            }
        }
        let mean = total as f64 / count as f64;
        assert!((mean - 10.0).abs() < 1.5, "mean length {mean}");
    }

    #[test]
    fn positive_rate_controls_labels() {
        let schema = small_schema();
        let mut g = SampleGenerator::new(&schema, 1).with_positive_rate(0.3);
        let n = 3000;
        let pos = (0..n).filter(|_| g.next_sample().label() > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.05, "positive rate {frac}");
    }

    #[test]
    fn categorical_ids_repeat_across_samples() {
        let schema = small_schema();
        let mut g = SampleGenerator::new(&schema, 2);
        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0;
        for _ in 0..500 {
            let s = g.next_sample();
            if let Some(l) = s.sparse(FeatureId(1)) {
                for &id in l.ids() {
                    if !seen.insert(id) {
                        repeats += 1;
                    }
                }
            }
        }
        assert!(repeats > 100, "expected id reuse, saw {repeats} repeats");
    }

    #[test]
    fn hashed_ids_widen_values_without_perturbing_shape() {
        let schema = small_schema();
        let plain: Vec<_> = SampleGenerator::new(&schema, 42).take_samples(200);
        let hashed: Vec<_> = SampleGenerator::new(&schema, 42)
            .with_hashed_ids()
            .take_samples(200);
        let mut wide = 0usize;
        let mut total = 0usize;
        for (p, h) in plain.iter().zip(&hashed) {
            // Equal RNG consumption: dense/label streams and the sparse
            // shape (features present, list lengths) are bit-identical;
            // only the id values change regime.
            assert_eq!(p.label(), h.label());
            assert_eq!(
                p.dense_iter().collect::<Vec<_>>(),
                h.dense_iter().collect::<Vec<_>>()
            );
            for ((pf, pl), (hf, hl)) in p.sparse_iter().zip(h.sparse_iter()) {
                assert_eq!(pf, hf);
                assert_eq!(pl.len(), hl.len());
                total += hl.len();
                wide += hl
                    .ids()
                    .iter()
                    .filter(|&&b| b > u64::from(u32::MAX))
                    .count();
            }
        }
        assert!(
            wide * 2 > total,
            "hashed ids should span the 64-bit domain ({wide}/{total} wide)"
        );
    }

    #[test]
    fn hashed_ids_compose_with_duplication() {
        let schema = small_schema();
        let cfg = DedupConfig::with_ratio(4.0);
        let samples = SampleGenerator::new(&schema, 7)
            .with_duplication(cfg)
            .with_hashed_ids()
            .take_samples(2000);
        let (sets, stats) = dedup::cluster_sessions(&samples, &cfg);
        let ratio = stats.ratio();
        assert!((3.0..=5.0).contains(&ratio), "observed ratio {ratio}");
        assert_eq!(dedup::expand_sets(&sets), samples, "lossless round-trip");
    }

    #[test]
    fn duplication_preserves_dense_label_stream() {
        let schema = small_schema();
        let plain: Vec<_> = SampleGenerator::new(&schema, 42).take_samples(200);
        let duped: Vec<_> = SampleGenerator::new(&schema, 42)
            .with_duplication(DedupConfig::default())
            .take_samples(200);
        for (p, d) in plain.iter().zip(&duped) {
            assert_eq!(p.label(), d.label());
            assert_eq!(
                p.dense_iter().collect::<Vec<_>>(),
                d.dense_iter().collect::<Vec<_>>()
            );
        }
        assert_ne!(plain, duped, "sparse payloads should be sessionized");
    }

    #[test]
    fn duplication_hits_requested_ratio() {
        let schema = small_schema();
        let cfg = DedupConfig::with_ratio(4.0);
        let samples = SampleGenerator::new(&schema, 7)
            .with_duplication(cfg)
            .take_samples(4000);
        let (_, stats) = dedup::cluster_sessions(&samples, &cfg);
        let ratio = stats.ratio();
        assert!((3.0..=5.0).contains(&ratio), "observed ratio {ratio}");
    }

    #[test]
    fn unit_ratio_degenerates_to_singletons() {
        let schema = small_schema();
        let cfg = DedupConfig::with_ratio(1.0);
        let samples = SampleGenerator::new(&schema, 7)
            .with_duplication(cfg)
            .take_samples(500);
        let (sets, stats) = dedup::cluster_sessions(&samples, &cfg);
        assert_eq!(stats.rows, 500);
        assert!(
            sets.len() as f64 > 490.0,
            "near-singleton sets, got {}",
            sets.len()
        );
    }

    #[test]
    fn works_with_profile_schema() {
        let schema = RmProfile::rm3().build_schema(50);
        let mut g = SampleGenerator::new(&schema, 11);
        let s = g.next_sample();
        assert!(s.feature_count() > 10);
        assert_eq!(g.produced(), 1);
    }
}
