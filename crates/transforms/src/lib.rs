//! Online preprocessing transformations for DLRM training.
//!
//! Table XI of the paper lists the production transformation operations.
//! They fall into three classes with very different compute weight
//! (§VI-D): **feature generation** (≈75% of transform cycles), **sparse
//! normalization** (≈20%), and **dense normalization** (≈5%). All sixteen
//! ops are implemented here over real [`dsi_types::Sample`]s and composed
//! into a [`TransformPlan`] — the analogue of the serialized, compiled
//! module a DPP Worker pulls from its Master at startup.
//!
//! * [`op`] — the sixteen operations;
//! * [`plan`] — composable, serializable transform plans and RM presets;
//! * [`cost`] — the per-op cycle cost model and class shares;
//! * [`accel`] — the GPU-offload throughput model (§VII: SigridHash 11.9×,
//!   Bucketize 1.3× GPU/CPU);
//! * [`columnar`] — vectorized flatmap execution of normalization ops over
//!   materialized tensors (the TorchArrow/Velox direction).
//!
//! # Example
//!
//! ```
//! use transforms::{TransformOp, TransformPlan};
//! use dsi_types::{FeatureId, Sample, SparseList};
//!
//! let plan = TransformPlan::new(vec![
//!     TransformOp::SigridHash { input: FeatureId(1), salt: 7, modulus: 1000 },
//!     TransformOp::FirstX { input: FeatureId(1), x: 2 },
//! ]);
//! let mut s = Sample::new(0.0);
//! s.set_sparse(FeatureId(1), SparseList::from_ids(vec![10, 20, 30]));
//! plan.apply_sample(&mut s);
//! let list = s.sparse(FeatureId(1)).unwrap();
//! assert_eq!(list.len(), 2);
//! assert!(list.ids().iter().all(|&id| id < 1000));
//! ```

#![warn(missing_docs)]

pub mod accel;
pub mod columnar;
pub mod cost;
pub mod op;
pub mod plan;

pub use accel::{AccelModel, Placement};
pub use columnar::{ColumnarApply, ColumnarCtx, ColumnarPlan, COLUMNAR_KERNELS};
pub use cost::{OpClass, OpCost};
pub use op::TransformOp;
pub use plan::TransformPlan;
