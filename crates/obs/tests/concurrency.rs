//! Concurrency guarantees of the metric primitives: updates from many
//! threads must never be lost, and quantile estimates must stay ordered
//! no matter how the recording was interleaved.

use std::sync::Arc;
use std::thread;

use dsi_obs::{Registry, StageScope};

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 10_000;

#[test]
fn counter_sums_exactly_across_threads() {
    let reg = Registry::new();
    let counter = reg.counter("dsi_test_concurrent_total", &[]);
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = Arc::clone(&counter);
            thread::spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.get(), THREADS as u64 * OPS_PER_THREAD);
}

#[test]
fn gauge_adds_exactly_across_threads() {
    let reg = Registry::new();
    let gauge = reg.gauge("dsi_test_concurrent_gauge", &[]);
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let g = Arc::clone(&gauge);
            // Half the threads add, half subtract the same amount, plus
            // one extra unit per adding thread: exact expected total.
            let delta = if i % 2 == 0 { 1.5 } else { -0.5 };
            thread::spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    g.add(delta);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let expected = (THREADS / 2) as f64 * OPS_PER_THREAD as f64 * (1.5 - 0.5);
    assert!(
        (gauge.get() - expected).abs() < 1e-6,
        "gauge {} vs expected {expected}",
        gauge.get()
    );
}

#[test]
fn histogram_count_sum_and_quantiles_across_threads() {
    let reg = Registry::new();
    let hist = reg.histogram("dsi_test_concurrent_seconds", &[]);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&hist);
            thread::spawn(move || {
                // Each thread records the same deterministic value set in
                // a different order, so totals are exact and known.
                for i in 0..OPS_PER_THREAD {
                    let v = ((i + t as u64 * 7919) % OPS_PER_THREAD) as f64 + 1.0;
                    h.record(v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = hist.snapshot();
    let n = THREADS as u64 * OPS_PER_THREAD;
    assert_eq!(s.count, n);
    // Sum of 1..=OPS_PER_THREAD per thread; f64 adds of small integers
    // are exact far below 2^53.
    let per_thread: f64 = (OPS_PER_THREAD * (OPS_PER_THREAD + 1) / 2) as f64;
    assert_eq!(s.sum, per_thread * THREADS as f64);
    assert_eq!(s.max, OPS_PER_THREAD as f64);
    assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    // Quantiles stay within the log-linear error bound of the exact
    // order statistics.
    for (est, exact) in [(s.p50, 5000.0), (s.p95, 9500.0), (s.p99, 9900.0)] {
        let rel = (est - exact).abs() / exact;
        assert!(rel < 0.10, "estimate {est} vs {exact}: rel {rel:.3}");
    }
}

#[test]
fn registration_races_resolve_to_one_series() {
    let reg = Registry::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let r = reg.clone();
            thread::spawn(move || {
                for _ in 0..1_000 {
                    r.counter("dsi_test_race_total", &[("k", "v")]).inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        reg.counter_value("dsi_test_race_total", &[("k", "v")]),
        THREADS as u64 * 1_000
    );
    assert_eq!(reg.len(), 1);
}

#[test]
fn stage_scopes_are_thread_isolated() {
    let reg = Registry::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let r = reg.clone();
            thread::spawn(move || {
                for _ in 0..100 {
                    let _outer = StageScope::enter(&r, "extract");
                    let inner = StageScope::enter(&r, "decompress");
                    // Nesting must reflect this thread's stack only.
                    assert_eq!(inner.path(), "extract/decompress");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snapshot = reg.snapshot();
    let count_for = |path: &str| {
        snapshot
            .iter()
            .find_map(|(k, v)| match v {
                dsi_obs::MetricValue::Histogram(s)
                    if k.labels.iter().any(|(_, val)| val == path) =>
                {
                    Some(s.count)
                }
                _ => None,
            })
            .unwrap_or(0)
    };
    assert_eq!(count_for("extract"), THREADS as u64 * 100);
    assert_eq!(count_for("extract/decompress"), THREADS as u64 * 100);
}
