//! DPP — the Data PreProcessing Service.
//!
//! DPP is the paper's disaggregated online-preprocessing service: for every
//! training job it reads raw training data from warehouse storage,
//! preprocesses it into ready-to-load tensors, and serves them to trainers,
//! scaling from tens to hundreds of worker nodes so that expensive GPUs
//! never stall on data (§III-B).
//!
//! The service splits into a **control plane** and a **data plane**:
//!
//! * [`session`] — the session specification (the `DATASET` a training job
//!   submits): dataset selection, transforms, batching;
//! * [`master`] — the DPP Master: split distribution, progress tracking,
//!   checkpointing, worker health, and replicated-failover state;
//! * [`autoscale`] — the Master's auto-scaling controller, driven by worker
//!   utilization and the buffered-tensor signal;
//! * [`worker`] — stateless DPP Workers: the extract → transform → load
//!   executor over real DWRF bytes, with per-stage resource accounting;
//! * [`client`] — DPP Clients: the trainer-side hook that fetches tensor
//!   batches over partitioned round-robin connections;
//! * [`service`] — [`DppSession`]: wiring master, threaded workers, and
//!   clients together for an end-to-end run;
//! * [`fleet`] — a virtual-time analytic session for fleet-scale
//!   right-sizing experiments.
//!
//! # Example
//!
//! ```no_run
//! use dpp::{DppSession, SessionSpec};
//! use dsi_types::{FeatureId, PartitionId, Projection, SessionId, TableId};
//! # fn table() -> warehouse::Table {
//! #     let cluster = tectonic::TectonicCluster::new(tectonic::ClusterConfig::small());
//! #     warehouse::Table::create(cluster, warehouse::TableConfig::new(TableId(1), "clicks"))
//! #         .unwrap()
//! # }
//!
//! let spec = SessionSpec::builder(SessionId(1))
//!     .partitions(PartitionId::new(0)..PartitionId::new(7))
//!     .projection(Projection::new(vec![FeatureId(1), FeatureId(2)]))
//!     .batch_size(64)
//!     .build();
//! let session = DppSession::launch(table(), spec, 4).unwrap();
//! while let Some(batch) = session.client().next_batch() {
//!     let _ = batch; // feed the trainer
//! }
//! session.shutdown();
//! ```

#![warn(missing_docs)]

pub mod autoscale;
pub mod client;
pub mod fleet;
pub mod master;
mod pipeline;
pub mod service;
pub mod session;
pub mod tuning;
pub mod worker;

pub use autoscale::{AutoScaler, ScalerConfig, ScalingDecision, WorkerTelemetry};
pub use client::Client;
pub use fleet::{FleetPoint, FleetSim, FleetTrace};
pub use master::{Master, MasterCheckpoint, SplitState};
pub use service::{DppSession, SessionCheckpoint, WorkerObservation};
pub use session::{Injection, SessionSpec, SessionSpecBuilder, Transport};
pub use tuning::{KnobBounds, Knobs, TunerPolicy, TunerSignals};
pub use wire::WireConfig;
pub use worker::{ExtractCostModel, Worker, WorkerReport};
