//! `dsi` — an end-to-end data storage and ingestion (DSI) pipeline for
//! large-scale deep recommendation model training.
//!
//! This crate is the facade over the workspace that reproduces the system
//! described in *"Understanding Data Storage and Ingestion for Large-Scale
//! Deep Recommendation Model Training"* (ISCA 2022): offline data
//! generation ([`scribe`]), a partitioned warehouse of DWRF columnar files
//! ([`warehouse`], [`dwrf`]) on a Tectonic-style distributed filesystem
//! ([`tectonic`]), the disaggregated DPP online-preprocessing service
//! ([`dpp`], [`transforms`]) with its multi-tenant fleet control plane
//! ([`fleet`]), RecD-style end-to-end deduplication
//! ([`dedup`]), trainer-side models ([`trainer`]),
//! fleet-level coordination ([`cluster`]), a hardware simulation substrate
//! ([`hwsim`]), and calibrated synthetic workloads ([`synth`]).
//!
//! # Quickstart
//!
//! ```
//! use dsi::prelude::*;
//!
//! # fn main() -> dsi_types::Result<()> {
//! // 1. A storage cluster and a table.
//! let cluster = TectonicCluster::new(ClusterConfig::small());
//! let table = Table::create(cluster, TableConfig::new(TableId(1), "quick"))?;
//!
//! // 2. Write a day of samples.
//! let mut samples = Vec::new();
//! for i in 0..256u64 {
//!     let mut s = Sample::new((i % 2) as f32);
//!     s.set_dense(FeatureId(1), i as f32);
//!     s.set_sparse(FeatureId(2), SparseList::from_ids(vec![i % 10]));
//!     samples.push(s);
//! }
//! table.write_partition(PartitionId::new(0), samples)?;
//!
//! // 3. Launch a DPP session and train from it.
//! let spec = SessionSpec::builder(SessionId(1))
//!     .partitions(PartitionId::new(0)..PartitionId::new(1))
//!     .projection(Projection::new(vec![FeatureId(1), FeatureId(2)]))
//!     .batch_size(64)
//!     .dense_ids(vec![FeatureId(1)])
//!     .sparse_ids(vec![FeatureId(2)])
//!     .build();
//! let session = DppSession::launch(table, spec, 2)?;
//! let mut client = session.client();
//! let mut rows = 0;
//! while let Some(batch) = client.next_batch() {
//!     rows += batch.batch_size();
//! }
//! assert_eq!(rows, 256);
//! session.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use chaos;
pub use cluster;
pub use dedup;
pub use dpp;
pub use dsi_fleet as fleet;
pub use dsi_obs as obs;
pub use dsi_trace as trace;
pub use dsi_tune as tune;
pub use dsi_types as types;
pub use dwrf;
pub use hwsim;
pub use scribe;
pub use synth;
pub use tectonic;
pub use trainer;
pub use transforms;
pub use warehouse;
pub use wire;

/// Commonly-used items across the whole pipeline.
pub mod prelude {
    pub use chaos::{FaultInjector, FaultKind, FaultPlan, HookPoint};
    pub use dedup::{DedupConfig, DedupSet, DedupStats};
    pub use dpp::{
        AutoScaler, Client, DppSession, KnobBounds, Knobs, Master, SessionSpec, Transport,
        TunerPolicy,
    };
    pub use dsi_fleet::{
        FleetAction, FleetConfig, FleetDriver, JobPhase, JobRegistry, JobSpec, JobStatus, TenantId,
    };
    pub use dsi_obs::{json_snapshot, prometheus_text, PipelineReport, Registry};
    pub use dsi_trace::{CriticalPathReport, TraceConfig, Verdict};
    pub use dsi_tune::{LiveTuner, OnlineTuner, Scenario, TunerConfig};
    pub use dsi_types::{
        Batch, ByteSize, DsiError, FeatureId, MiniBatchTensor, PartitionId, Projection, Sample,
        Schema, SessionId, SparseList, TableId,
    };
    pub use dwrf::{CoalescePolicy, FileReader, FileWriter, WriterOptions};
    pub use hwsim::{DatacenterTax, NodeSpec, PowerModel, ResourceVector};
    pub use scribe::{BatchEtl, EventRecord, FeatureLogRecord, MessageBus};
    pub use synth::{RmProfile, SampleGenerator};
    pub use tectonic::{ClusterConfig, TectonicCluster};
    pub use trainer::{DedupIngest, GpuDemand, LiveTrainer, StallSim};
    pub use transforms::{TransformOp, TransformPlan};
    pub use warehouse::{Table, TableConfig, Warehouse};
    pub use wire::WireConfig;
}
