//! The shared error type for the DSI pipeline.

use std::error::Error as StdError;
use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, DsiError>;

/// Errors surfaced by DSI pipeline components.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DsiError {
    /// A referenced entity (table, partition, file, feature, ...) was not found.
    NotFound(String),
    /// Data failed to decode (corrupt stream, bad magic, truncated block).
    Corrupt(String),
    /// An operation was invalid in the current state.
    InvalidState(String),
    /// A configuration or specification error.
    InvalidSpec(String),
    /// A capacity or resource limit was exceeded.
    Exhausted(String),
    /// A component (worker, node) failed or was unreachable.
    Unavailable(String),
}

impl DsiError {
    /// Creates a [`DsiError::NotFound`] with a formatted message.
    pub fn not_found(what: impl fmt::Display) -> Self {
        DsiError::NotFound(what.to_string())
    }

    /// Creates a [`DsiError::Corrupt`] with a formatted message.
    pub fn corrupt(what: impl fmt::Display) -> Self {
        DsiError::Corrupt(what.to_string())
    }

    /// Creates a [`DsiError::InvalidSpec`] with a formatted message.
    pub fn invalid_spec(what: impl fmt::Display) -> Self {
        DsiError::InvalidSpec(what.to_string())
    }
}

impl fmt::Display for DsiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsiError::NotFound(s) => write!(f, "not found: {s}"),
            DsiError::Corrupt(s) => write!(f, "corrupt data: {s}"),
            DsiError::InvalidState(s) => write!(f, "invalid state: {s}"),
            DsiError::InvalidSpec(s) => write!(f, "invalid specification: {s}"),
            DsiError::Exhausted(s) => write!(f, "resource exhausted: {s}"),
            DsiError::Unavailable(s) => write!(f, "unavailable: {s}"),
        }
    }
}

impl StdError for DsiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DsiError::not_found("table tbl9");
        assert_eq!(e.to_string(), "not found: table tbl9");
        let e = DsiError::corrupt("bad stripe magic");
        assert!(e.to_string().contains("bad stripe magic"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: StdError + Send + Sync + 'static>() {}
        assert_bounds::<DsiError>();
    }
}
