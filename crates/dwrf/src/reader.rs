//! DWRF file reader: footer parsing, projection-driven IO planning, and
//! stripe decoding.
//!
//! The reader separates *planning* (which byte ranges a projection needs,
//! [`FileReader::plan_stripe`]) from *fetching* (any [`ChunkSource`] — an
//! in-memory slice here, a Tectonic client in the `tectonic` crate) from
//! *decoding* (decrypt → decompress → column decode). This mirrors the DPP
//! Worker extract path and lets storage simulations charge real IO.

use crate::cipher::StreamCipher;
use crate::compress;
use crate::plan::{CoalescePolicy, IoPlan};
use crate::stream::{
    checksum64, decode_dedup_sparse, decode_dense_column, decode_dense_map, decode_labels,
    decode_sparse_column, decode_sparse_map, StreamInfo, StreamKind, FILE_LEVEL,
};
use crate::writer::{decode_footer, FileFooter, MAGIC};
use bytes::Bytes;
use dsi_types::{DsiError, FeatureId, Projection, Result, Sample};
use fastpath::{global_pool, ByteView, SourceChunk};
use std::collections::HashMap;
use std::sync::Arc;

/// A source of raw file bytes addressed by `(offset, len)`.
///
/// Implementations may charge simulated IO (see the `tectonic` crate).
pub trait ChunkSource {
    /// Reads `len` bytes at `offset` as a shared view, reporting how many
    /// bytes the source had to memcpy to produce it (0 for a zero-copy
    /// slice of resident bytes).
    ///
    /// # Errors
    ///
    /// Implementations return [`DsiError`] on out-of-range or failed reads.
    fn read(&mut self, offset: u64, len: u64) -> Result<SourceChunk>;
}

/// How the reader materializes stream payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodeMode {
    /// Zero-copy: stripe buffers are sliced into stream payloads, decrypt
    /// writes into pooled scratch, stored compression blocks pass through.
    #[default]
    Fastpath,
    /// The legacy path, kept as an honest ablation baseline: every source
    /// read and every stream window is materialized into a fresh `Vec`
    /// (and counted in `IoPlan::copied_bytes`).
    Copying,
}

/// A [`ChunkSource`] over an in-memory buffer.
#[derive(Debug, Clone)]
pub struct SliceSource {
    bytes: Bytes,
}

impl SliceSource {
    /// Creates a source over `bytes`.
    pub fn new(bytes: Bytes) -> Self {
        Self { bytes }
    }
}

impl ChunkSource for SliceSource {
    fn read(&mut self, offset: u64, len: u64) -> Result<SourceChunk> {
        let start = offset as usize;
        let end = start
            .checked_add(len as usize)
            .ok_or_else(|| DsiError::corrupt("read range overflow"))?;
        if end > self.bytes.len() {
            return Err(DsiError::corrupt(format!(
                "read [{start}, {end}) beyond file of {} bytes",
                self.bytes.len()
            )));
        }
        Ok(SourceChunk::zero_copy(ByteView::from(
            self.bytes.slice(start..end),
        )))
    }
}

/// Where a traced read records its spans: the registry to push into, the
/// parent (extract) context, the split index for span metadata, and the
/// pre-allocated `StorageRead` span id (pre-allocated so the caller can
/// parent per-chunk storage-IO spans under it before it is recorded).
#[derive(Debug, Clone)]
struct TraceSink {
    registry: dsi_obs::Registry,
    ctx: dsi_obs::TraceContext,
    split: u64,
    storage_span: u64,
}

/// Reads DWRF files.
#[derive(Debug, Clone)]
pub struct FileReader {
    bytes: Option<Bytes>,
    footer: Arc<FileFooter>,
    registry: Option<dsi_obs::Registry>,
    mode: DecodeMode,
    trace: Option<TraceSink>,
    job: Option<Arc<str>>,
}

impl FileReader {
    /// Opens a complete in-memory file: verifies the magic and parses the
    /// footer.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::Corrupt`] if the magic or footer is malformed.
    pub fn open(bytes: Bytes) -> Result<Self> {
        let footer = Arc::new(parse_footer(&bytes)?);
        Ok(Self {
            bytes: Some(bytes),
            footer,
            registry: None,
            mode: DecodeMode::default(),
            trace: None,
            job: None,
        })
    }

    /// Creates a reader from a previously-parsed footer; all data must then
    /// be fetched through an external [`ChunkSource`]. Accepts the footer
    /// by value or as a shared `Arc` — table scans open one reader per
    /// split, so sharing the parsed footer avoids a per-split deep clone.
    pub fn from_footer(footer: impl Into<Arc<FileFooter>>) -> Self {
        Self {
            bytes: None,
            footer: footer.into(),
            registry: None,
            mode: DecodeMode::default(),
            trace: None,
            job: None,
        }
    }

    /// Selects how stream payloads are materialized (default
    /// [`DecodeMode::Fastpath`]).
    pub fn with_decode_mode(mut self, mode: DecodeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attaches a metrics registry: stripe reads then emit
    /// `dsi_dwrf_stripes_decoded_total`, read vs wanted byte counters, and
    /// extract/decompress/deserialize stage timings.
    pub fn with_registry(mut self, registry: &dsi_obs::Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Labels this reader's *pool* metric publications with the owning
    /// session (`{job="sessN"}`). Only the shared-buffer-pool series are
    /// labeled: the `dsi_dwrf_*` and bytes-copied counters stay unlabeled
    /// because they are per-stripe deltas (`add`) that the session's
    /// worker reports re-publish per job via `advance_to` — labeling both
    /// would double-count the same series. An empty `job` is ignored.
    pub fn with_job(mut self, job: &str) -> Self {
        if !job.is_empty() {
            self.job = Some(job.into());
        }
        self
    }

    /// Attaches a distributed-trace context: stripe reads then record a
    /// `StorageRead` span over the fetch phase (with id `storage_span`,
    /// pre-allocated by the caller so per-chunk storage-IO spans can
    /// parent under it) and a `DwrfDecode` span over the decode phase,
    /// both children of `ctx`. No-op when `ctx` is unsampled.
    pub fn with_trace(
        mut self,
        registry: &dsi_obs::Registry,
        ctx: dsi_obs::TraceContext,
        split: u64,
        storage_span: u64,
    ) -> Self {
        if ctx.is_sampled() {
            self.trace = Some(TraceSink {
                registry: registry.clone(),
                ctx,
                split,
                storage_span,
            });
        }
        self
    }

    /// The parsed footer.
    pub fn footer(&self) -> &FileFooter {
        self.footer.as_ref()
    }

    /// Number of stripes.
    pub fn num_stripes(&self) -> usize {
        self.footer.stripes.len()
    }

    /// Total rows across stripes.
    pub fn total_rows(&self) -> u64 {
        self.footer.total_rows()
    }

    /// The streams a selection needs from stripe `idx`.
    ///
    /// `selection = None` selects every feature. Flattened files narrow to
    /// the selected features' streams (plus labels); unflattened files must
    /// always fetch the whole row maps.
    fn wanted_streams(&self, idx: usize, selection: Option<&Projection>) -> Vec<StreamInfo> {
        let stripe = &self.footer.stripes[idx];
        stripe
            .streams
            .iter()
            .filter(|s| {
                if s.feature == FILE_LEVEL {
                    return true; // labels / row maps
                }
                match selection {
                    Some(p) if self.footer.flattened => p.contains(FeatureId(s.feature)),
                    _ => true,
                }
            })
            .copied()
            .collect()
    }

    /// Plans the IO for reading stripe `idx` under a selection and policy.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::NotFound`] if the stripe index is out of range.
    pub fn plan_stripe(
        &self,
        idx: usize,
        selection: Option<&Projection>,
        policy: CoalescePolicy,
    ) -> Result<IoPlan> {
        if idx >= self.footer.stripes.len() {
            return Err(DsiError::not_found(format!("stripe {idx}")));
        }
        let ranges = self
            .wanted_streams(idx, selection)
            .iter()
            .map(|s| (s.offset, s.len))
            .collect();
        Ok(IoPlan::build(ranges, policy))
    }

    /// Reads and decodes stripe `idx` through `source`, returning the rows
    /// and the executed IO plan.
    ///
    /// # Errors
    ///
    /// Returns an error if the stripe index is out of range, the source
    /// fails, or the data is corrupt.
    pub fn read_stripe_from(
        &self,
        idx: usize,
        selection: Option<&Projection>,
        policy: CoalescePolicy,
        source: &mut dyn ChunkSource,
    ) -> Result<(Vec<Sample>, IoPlan)> {
        let mut plan = self.plan_stripe(idx, selection, policy)?;
        let copied = std::cell::Cell::new(0u64);
        // Fetch each planned read once. The fast path keeps whatever view
        // the source produced (usually a zero-copy slice of resident
        // bytes); the copying baseline replays the legacy reader, which
        // always materialized every source read into a fresh `Vec`.
        let fetch_started = std::time::Instant::now();
        let fetch_start_ns = dsi_obs::now_ns();
        let mut buffers: Vec<(u64, ByteView)> = Vec::with_capacity(plan.reads.len());
        for r in &plan.reads {
            let chunk = source.read(r.offset, r.len)?;
            copied.set(copied.get() + chunk.copied_bytes);
            let view = if self.mode == DecodeMode::Copying && chunk.copied_bytes == 0 {
                copied.set(copied.get() + chunk.view.len() as u64);
                ByteView::copy_of(&chunk.view)
            } else {
                chunk.view
            };
            buffers.push((r.offset, view));
        }
        let fetch_secs = fetch_started.elapsed().as_secs_f64();
        if let Some(sink) = &self.trace {
            sink.registry.record_span(dsi_obs::TraceSpan {
                trace_id: sink.ctx.trace_id,
                span_id: sink.storage_span,
                parent_id: sink.ctx.span_id,
                kind: dsi_obs::SpanKind::StorageRead,
                start_ns: fetch_start_ns,
                end_ns: dsi_obs::now_ns(),
                split: sink.split,
                worker: 0,
                seq: 0,
                flags: 0,
            });
        }
        let fetch = |info: &StreamInfo| -> Result<ByteView> {
            for (off, buf) in &buffers {
                if info.offset >= *off && info.offset + info.len <= off + buf.len() as u64 {
                    let start = (info.offset - off) as usize;
                    return Ok(buf.slice(start..start + info.len as usize));
                }
            }
            Err(DsiError::corrupt("stream not covered by IO plan"))
        };
        let uncompressed = std::cell::Cell::new(0u64);
        let decompress_secs = std::cell::Cell::new(0f64);
        let decode_started = std::time::Instant::now();
        let decode_start_ns = dsi_obs::now_ns();
        let rows = self.decode_stripe(
            idx,
            selection,
            fetch,
            &uncompressed,
            &decompress_secs,
            &copied,
        )?;
        if let Some(sink) = &self.trace {
            sink.registry.record_span(dsi_obs::TraceSpan {
                trace_id: sink.ctx.trace_id,
                span_id: dsi_obs::next_span_id(),
                parent_id: sink.ctx.span_id,
                kind: dsi_obs::SpanKind::DwrfDecode,
                start_ns: decode_start_ns,
                end_ns: dsi_obs::now_ns(),
                split: sink.split,
                worker: 0,
                seq: 0,
                flags: 0,
            });
        }
        plan.uncompressed_bytes = uncompressed.get();
        plan.copied_bytes = copied.get();
        if let Some(reg) = &self.registry {
            use dsi_obs::{names, observe_stage_seconds, stage};
            reg.counter(names::DWRF_STRIPES_DECODED_TOTAL, &[]).inc();
            reg.counter(names::DWRF_READ_BYTES_TOTAL, &[])
                .add(plan.read_bytes);
            reg.counter(names::DWRF_WANTED_BYTES_TOTAL, &[])
                .add(plan.wanted_bytes);
            reg.counter(names::FASTPATH_BYTES_COPIED_TOTAL, &[])
                .add(plan.copied_bytes);
            global_pool().publish_metrics_labeled(reg, self.job.as_deref().unwrap_or(""));
            observe_stage_seconds(reg, stage::EXTRACT, fetch_secs);
            observe_stage_seconds(reg, stage::DECOMPRESS, decompress_secs.get());
            // Deserialize excludes decompression: it is the column/map
            // decode cost the paper attributes to wire-format handling.
            observe_stage_seconds(
                reg,
                stage::DESERIALIZE,
                (decode_started.elapsed().as_secs_f64() - decompress_secs.get()).max(0.0),
            );
        }
        Ok((rows, plan))
    }

    /// Decodes stripe `idx` given a function that produces each wanted
    /// stream's encoded bytes.
    fn decode_stripe(
        &self,
        idx: usize,
        selection: Option<&Projection>,
        mut fetch: impl FnMut(&StreamInfo) -> Result<ByteView>,
        uncompressed: &std::cell::Cell<u64>,
        decompress_secs: &std::cell::Cell<f64>,
        copied: &std::cell::Cell<u64>,
    ) -> Result<Vec<Sample>> {
        let stripe = &self.footer.stripes[idx];
        let row_count = stripe.row_count as usize;
        let cipher = StreamCipher::new(self.footer.file_key);
        let pool = global_pool();
        let mut decode_payload = |info: &StreamInfo| -> Result<ByteView> {
            let raw = fetch(info)?;
            // Integrity gate, identical in both decode modes: stored bytes
            // must match the checksum the writer recorded before anything
            // is decrypted, decompressed, or sliced. Without it, stored
            // compression blocks and encrypted f32 payloads decode silently
            // wrong under storage-layer corruption.
            let got = checksum64(&raw);
            if got != info.checksum {
                return Err(DsiError::corrupt(format!(
                    "stream checksum mismatch (feature {} kind {:?}): stored {:#018x}, read {got:#018x}",
                    info.feature, info.kind, info.checksum
                )));
            }
            match self.mode {
                DecodeMode::Copying => {
                    // Legacy behavior: materialize the stream window out of
                    // the stripe buffer, decrypt in place, decompress into
                    // a fresh allocation.
                    copied.set(copied.get() + raw.len() as u64);
                    let mut payload = raw.to_vec();
                    if self.footer.encrypted {
                        cipher.apply_in_place(info.nonce, &mut payload);
                    }
                    if self.footer.compressed {
                        let started = std::time::Instant::now();
                        payload = compress::decompress(&payload)?;
                        decompress_secs
                            .set(decompress_secs.get() + started.elapsed().as_secs_f64());
                    }
                    uncompressed.set(uncompressed.get() + payload.len() as u64);
                    Ok(ByteView::from(payload))
                }
                DecodeMode::Fastpath => {
                    // Decrypt and decompress are decode *work*, not copies:
                    // their outputs land in pooled scratch, and stored
                    // (incompressible) blocks pass through as sub-views.
                    let mut payload = raw;
                    if self.footer.encrypted {
                        let mut scratch = pool.take(payload.len());
                        cipher.apply_to(info.nonce, &payload, &mut scratch);
                        payload = scratch.freeze();
                    }
                    if self.footer.compressed {
                        let started = std::time::Instant::now();
                        payload = match compress::stored_payload_range(&payload) {
                            Some(range) => payload.slice(range),
                            None => {
                                let mut scratch = pool.take(payload.len().saturating_mul(2));
                                compress::decompress_into(&payload, &mut scratch)?;
                                scratch.freeze()
                            }
                        };
                        decompress_secs
                            .set(decompress_secs.get() + started.elapsed().as_secs_f64());
                    }
                    uncompressed.set(uncompressed.get() + payload.len() as u64);
                    Ok(payload)
                }
            }
        };

        let wanted = self.wanted_streams(idx, selection);
        let mut labels: Option<Vec<f32>> = None;
        let mut samples: Vec<Sample> = vec![Sample::new(0.0); row_count];
        let mut dedup_refs: Option<ByteView> = None;
        let mut dedup_data: Option<ByteView> = None;

        if self.footer.flattened {
            // Walk feature streams in directory order; each Present stream
            // begins a new column group for its feature.
            let mut group: Vec<(StreamInfo, ByteView)> = Vec::new();
            let flush_group = |group: &mut Vec<(StreamInfo, ByteView)>,
                               samples: &mut [Sample]|
             -> Result<()> {
                if group.is_empty() {
                    return Ok(());
                }
                let fid = FeatureId(group[0].0.feature);
                let by_kind: HashMap<StreamKind, &[u8]> = group
                    .iter()
                    .map(|(info, raw)| (info.kind, raw.as_slice()))
                    .collect();
                let present = by_kind
                    .get(&StreamKind::Present)
                    .ok_or_else(|| DsiError::corrupt("column group missing present"))?;
                if let Some(data) = by_kind.get(&StreamKind::DenseData) {
                    for (row, v) in decode_dense_column(present, data)?.into_iter().enumerate() {
                        if let Some(v) = v {
                            samples[row].set_dense(fid, v);
                        }
                    }
                } else {
                    let lengths = by_kind
                        .get(&StreamKind::Length)
                        .ok_or_else(|| DsiError::corrupt("sparse column missing lengths"))?;
                    let data = by_kind
                        .get(&StreamKind::Data)
                        .ok_or_else(|| DsiError::corrupt("sparse column missing data"))?;
                    let dict = by_kind.get(&StreamKind::Dict).copied();
                    let scores = by_kind.get(&StreamKind::Score).copied();
                    for (row, l) in decode_sparse_column(present, lengths, data, dict, scores)?
                        .into_iter()
                        .enumerate()
                    {
                        if let Some(l) = l {
                            samples[row].set_sparse(fid, l);
                        }
                    }
                }
                group.clear();
                Ok(())
            };
            for info in &wanted {
                if info.feature == FILE_LEVEL {
                    match info.kind {
                        StreamKind::Label => {
                            labels = Some(decode_labels(&decode_payload(info)?)?);
                        }
                        StreamKind::DedupRefs => dedup_refs = Some(decode_payload(info)?),
                        StreamKind::DedupData => dedup_data = Some(decode_payload(info)?),
                        _ => {}
                    }
                    continue;
                }
                if info.kind == StreamKind::Present {
                    flush_group(&mut group, &mut samples)?;
                }
                let raw = decode_payload(info)?;
                group.push((*info, raw));
            }
            flush_group(&mut group, &mut samples)?;
        } else {
            for info in &wanted {
                let raw = decode_payload(info)?;
                match info.kind {
                    StreamKind::DenseMap => {
                        for (row, pairs) in
                            decode_dense_map(&raw, row_count)?.into_iter().enumerate()
                        {
                            for (fid, v) in pairs {
                                if selection.is_none_or(|p| p.contains(fid)) {
                                    samples[row].set_dense(fid, v);
                                }
                            }
                        }
                    }
                    StreamKind::SparseMap => {
                        for (row, pairs) in
                            decode_sparse_map(&raw, row_count)?.into_iter().enumerate()
                        {
                            for (fid, l) in pairs {
                                if selection.is_none_or(|p| p.contains(fid)) {
                                    samples[row].set_sparse(fid, l);
                                }
                            }
                        }
                    }
                    StreamKind::Label => labels = Some(decode_labels(&raw)?),
                    StreamKind::DedupRefs => dedup_refs = Some(raw),
                    StreamKind::DedupData => dedup_data = Some(raw),
                    other => {
                        return Err(DsiError::corrupt(format!(
                            "unexpected stream {other:?} in unflattened file"
                        )))
                    }
                }
            }
        }

        if self.footer.dedup {
            // Reconstitute logical rows from the canonical table: decode
            // each referenced payload once, clone per referencing row.
            let refs = dedup_refs.ok_or_else(|| DsiError::corrupt("dedup file missing refs"))?;
            let data = dedup_data.ok_or_else(|| DsiError::corrupt("dedup file missing data"))?;
            for (row, pairs) in decode_dedup_sparse(&refs, &data, row_count)?
                .into_iter()
                .enumerate()
            {
                for (fid, l) in pairs {
                    if selection.is_none_or(|p| p.contains(fid)) {
                        samples[row].set_sparse(fid, l);
                    }
                }
            }
        }

        let labels = labels.ok_or_else(|| DsiError::corrupt("stripe missing label stream"))?;
        if labels.len() != row_count {
            return Err(DsiError::corrupt("label stream row count mismatch"));
        }
        for (s, l) in samples.iter_mut().zip(labels) {
            s.set_label(l);
        }
        Ok(samples)
    }

    fn own_source(&self) -> Result<SliceSource> {
        self.bytes
            .clone()
            .map(SliceSource::new)
            .ok_or_else(|| DsiError::InvalidState("reader has no in-memory bytes".into()))
    }

    /// Reads one stripe from the in-memory file with the given projection.
    ///
    /// # Errors
    ///
    /// Returns an error if the reader was created via
    /// [`FileReader::from_footer`], the index is out of range, or the data
    /// is corrupt.
    pub fn read_stripe(&self, idx: usize, projection: &Projection) -> Result<Vec<Sample>> {
        let mut src = self.own_source()?;
        let (rows, _) =
            self.read_stripe_from(idx, Some(projection), CoalescePolicy::None, &mut src)?;
        Ok(rows)
    }

    /// Reads every stripe with the given projection.
    ///
    /// # Errors
    ///
    /// See [`FileReader::read_stripe`].
    pub fn read_all(&self, projection: &Projection) -> Result<Vec<Sample>> {
        let mut out = Vec::with_capacity(self.total_rows() as usize);
        for i in 0..self.num_stripes() {
            out.extend(self.read_stripe(i, projection)?);
        }
        Ok(out)
    }

    /// Reads every stripe with every feature (no projection).
    ///
    /// # Errors
    ///
    /// See [`FileReader::read_stripe`].
    pub fn read_all_unprojected(&self) -> Result<Vec<Sample>> {
        let mut src = self.own_source()?;
        let mut out = Vec::with_capacity(self.total_rows() as usize);
        for i in 0..self.num_stripes() {
            let (rows, _) = self.read_stripe_from(i, None, CoalescePolicy::None, &mut src)?;
            out.extend(rows);
        }
        Ok(out)
    }
}

/// Parses the footer from a complete file buffer.
///
/// # Errors
///
/// Returns [`DsiError::Corrupt`] if the magic or structure is invalid.
pub fn parse_footer(bytes: &Bytes) -> Result<FileFooter> {
    // Tail layout: [streams][footer][checksum u64][len u64][MAGIC].
    if bytes.len() < 24 {
        return Err(DsiError::corrupt("file too short for footer"));
    }
    let magic_at = bytes.len() - 8;
    if &bytes[magic_at..] != MAGIC {
        return Err(DsiError::corrupt("bad DWRF magic"));
    }
    let len_at = magic_at - 8;
    let mut len_buf = [0u8; 8];
    len_buf.copy_from_slice(&bytes[len_at..magic_at]);
    let footer_len = u64::from_le_bytes(len_buf) as usize;
    let crc_at = len_at - 8;
    if footer_len > crc_at {
        return Err(DsiError::corrupt("footer length out of range"));
    }
    let mut crc_buf = [0u8; 8];
    crc_buf.copy_from_slice(&bytes[crc_at..len_at]);
    let stored = u64::from_le_bytes(crc_buf);
    let footer_bytes = &bytes[crc_at - footer_len..crc_at];
    let got = checksum64(footer_bytes);
    if got != stored {
        return Err(DsiError::corrupt(format!(
            "footer checksum mismatch: stored {stored:#018x}, read {got:#018x}"
        )));
    }
    decode_footer(footer_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{FileWriter, WriterOptions};
    use dsi_types::SparseList;

    fn build_file(opts: WriterOptions, rows: u64) -> crate::writer::DwrfFile {
        let mut w = FileWriter::new(opts);
        for i in 0..rows {
            let mut s = Sample::new(i as f32);
            s.set_dense(FeatureId(1), i as f32 * 0.5);
            s.set_dense(FeatureId(3), -(i as f32));
            s.set_sparse(FeatureId(2), SparseList::from_ids(vec![i, i + 1]));
            if i % 2 == 0 {
                s.set_sparse(
                    FeatureId(4),
                    SparseList::from_scored(vec![i * 7], vec![i as f32]),
                );
            }
            w.push(s);
        }
        w.finish().unwrap()
    }

    #[test]
    fn full_round_trip_flattened() {
        let file = build_file(WriterOptions::default(), 20);
        let reader = FileReader::open(file.bytes().clone()).unwrap();
        let rows = reader.read_all_unprojected().unwrap();
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[4].label(), 4.0);
        assert_eq!(rows[4].dense(FeatureId(1)), Some(2.0));
        assert_eq!(rows[4].sparse(FeatureId(2)).unwrap().ids(), &[4, 5]);
        assert_eq!(
            rows[4].sparse(FeatureId(4)).unwrap().scores().unwrap(),
            &[4.0]
        );
        assert!(rows[5].sparse(FeatureId(4)).is_none());
    }

    #[test]
    fn full_round_trip_unflattened() {
        let file = build_file(WriterOptions::unflattened_baseline(), 12);
        let reader = FileReader::open(file.bytes().clone()).unwrap();
        let rows = reader.read_all_unprojected().unwrap();
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[3].dense(FeatureId(3)), Some(-3.0));
        assert_eq!(rows[3].sparse(FeatureId(2)).unwrap().ids(), &[3, 4]);
    }

    #[test]
    fn projection_reads_fewer_bytes_when_flattened() {
        let file = build_file(WriterOptions::default(), 200);
        let reader = FileReader::open(file.bytes().clone()).unwrap();
        let proj = Projection::new(vec![FeatureId(1)]);
        let full = reader.plan_stripe(0, None, CoalescePolicy::None).unwrap();
        let narrow = reader
            .plan_stripe(0, Some(&proj), CoalescePolicy::None)
            .unwrap();
        assert!(narrow.wanted_bytes < full.wanted_bytes);
        let rows = reader.read_all(&proj).unwrap();
        assert!(rows[0].dense(FeatureId(1)).is_some());
        assert!(rows[0].sparse(FeatureId(2)).is_none());
        assert_eq!(rows[1].label(), 1.0); // labels always delivered
    }

    #[test]
    fn projection_cannot_reduce_io_when_unflattened() {
        let file = build_file(WriterOptions::unflattened_baseline(), 200);
        let reader = FileReader::open(file.bytes().clone()).unwrap();
        let proj = Projection::new(vec![FeatureId(1)]);
        let full = reader.plan_stripe(0, None, CoalescePolicy::None).unwrap();
        let narrow = reader
            .plan_stripe(0, Some(&proj), CoalescePolicy::None)
            .unwrap();
        // Map layout forces whole-row reads regardless of projection.
        assert_eq!(narrow.wanted_bytes, full.wanted_bytes);
        // But decoded rows are still filtered.
        let rows = reader.read_all(&proj).unwrap();
        assert!(rows[0].sparse(FeatureId(2)).is_none());
    }

    #[test]
    fn coalescing_reduces_io_count() {
        let file = build_file(WriterOptions::default(), 500);
        let reader = FileReader::open(file.bytes().clone()).unwrap();
        let proj = Projection::new(vec![FeatureId(1), FeatureId(4)]);
        let scattered = reader
            .plan_stripe(0, Some(&proj), CoalescePolicy::None)
            .unwrap();
        let merged = reader
            .plan_stripe(0, Some(&proj), CoalescePolicy::default_window())
            .unwrap();
        assert!(merged.io_count() <= scattered.io_count());
        assert!(merged.read_bytes >= merged.wanted_bytes);
        // Coalesced reads still decode correctly.
        let mut src = SliceSource::new(file.bytes().clone());
        let (rows, _) = reader
            .read_stripe_from(0, Some(&proj), CoalescePolicy::default_window(), &mut src)
            .unwrap();
        assert_eq!(rows.len(), 500);
    }

    #[test]
    fn plaintext_uncompressed_round_trip() {
        let opts = WriterOptions {
            compressed: false,
            encrypted: false,
            ..Default::default()
        };
        let file = build_file(opts, 8);
        let reader = FileReader::open(file.bytes().clone()).unwrap();
        let rows = reader.read_all_unprojected().unwrap();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[7].dense(FeatureId(1)), Some(3.5));
    }

    #[test]
    fn corrupt_magic_rejected() {
        let file = build_file(WriterOptions::default(), 4);
        // Magic validation only looks at the 16-byte tail: corrupt a small
        // sub-slice copy instead of duplicating the whole file.
        let n = file.bytes().len();
        let mut tail = file.bytes().slice(n - 16..).to_vec();
        let t = tail.len();
        tail[t - 1] ^= 0xff;
        assert!(FileReader::open(Bytes::from(tail)).is_err());
        // A shifted zero-copy view misaligns the magic the same way.
        assert!(parse_footer(&file.bytes().slice(..n - 1)).is_err());
    }

    /// A [`ChunkSource`] that XORs the bytes of one window, slicing the
    /// underlying file zero-copy everywhere else.
    struct CorruptingSource {
        inner: SliceSource,
        window: std::ops::Range<u64>,
    }

    impl ChunkSource for CorruptingSource {
        fn read(&mut self, offset: u64, len: u64) -> Result<SourceChunk> {
            let chunk = self.inner.read(offset, len)?;
            if offset < self.window.end && offset + len > self.window.start {
                let mut corrupted = chunk.view.to_vec();
                for (i, b) in corrupted.iter_mut().enumerate() {
                    if self.window.contains(&(offset + i as u64)) {
                        *b ^= 0xa5;
                    }
                }
                return Ok(SourceChunk::copied(ByteView::from(corrupted)));
            }
            Ok(chunk)
        }
    }

    #[test]
    fn corrupt_stream_detected() {
        let file = build_file(WriterOptions::default(), 50);
        // Flip bytes early in the stream area, overlaying the corruption
        // on zero-copy views of the original file.
        let reader = FileReader::from_footer(file.footer().clone());
        let mut src = CorruptingSource {
            inner: SliceSource::new(file.bytes().clone()),
            window: 0..64,
        };
        assert!(reader
            .read_stripe_from(0, None, CoalescePolicy::None, &mut src)
            .is_err());
    }

    /// Corruption in the header (footer/tail), in a plain payload stream,
    /// and inside a compression block must each surface as a typed
    /// [`DsiError::Corrupt`] — in both decode modes. No silent wrong data.
    #[test]
    fn corruption_location_matrix_yields_typed_errors_in_both_modes() {
        // Header: flip a byte inside the encoded footer region.
        let file = build_file(WriterOptions::default(), 30);
        let mut bytes = file.bytes().to_vec();
        let n = bytes.len();
        bytes[n - 20] ^= 0x5a; // inside [footer][crc] tail area
        match FileReader::open(Bytes::from(bytes)) {
            Err(DsiError::Corrupt(_)) => {}
            other => panic!("header corruption: expected Corrupt, got {other:?}"),
        }

        // Payload (uncompressed, unencrypted streams) and compression
        // block (LZ-compressed streams): corrupt bytes inside the first
        // data stream's window and decode under both modes.
        let cases = [
            WriterOptions {
                compressed: false,
                encrypted: false,
                ..Default::default()
            },
            WriterOptions {
                encrypted: false,
                ..Default::default()
            },
        ];
        for opts in cases {
            let file = build_file(opts, 60);
            let stripe = &file.footer().stripes[0];
            // Pick a stream comfortably wider than one byte to corrupt
            // mid-payload (past any mode byte or varint header).
            let target = stripe
                .streams
                .iter()
                .find(|s| s.len >= 8)
                .expect("a wide stream");
            let mid = target.offset + target.len / 2;
            for mode in [DecodeMode::Fastpath, DecodeMode::Copying] {
                let reader = FileReader::from_footer(file.footer().clone()).with_decode_mode(mode);
                let mut src = CorruptingSource {
                    inner: SliceSource::new(file.bytes().clone()),
                    window: mid..mid + 2,
                };
                match reader.read_stripe_from(0, None, CoalescePolicy::None, &mut src) {
                    Err(DsiError::Corrupt(msg)) => {
                        assert!(msg.contains("checksum mismatch"), "{msg}")
                    }
                    other => panic!(
                        "stream corruption (compressed={}, {mode:?}): expected Corrupt, got {other:?}",
                        file.footer().compressed
                    ),
                }
            }
        }
    }

    #[test]
    fn out_of_range_stripe_errors() {
        let file = build_file(WriterOptions::default(), 4);
        let reader = FileReader::open(file.bytes().clone()).unwrap();
        assert!(reader.plan_stripe(9, None, CoalescePolicy::None).is_err());
    }

    #[test]
    fn from_footer_requires_external_source() {
        let file = build_file(WriterOptions::default(), 4);
        let reader = FileReader::from_footer(file.footer().clone());
        assert!(reader.read_all_unprojected().is_err());
        let mut src = SliceSource::new(file.bytes().clone());
        let (rows, _) = reader
            .read_stripe_from(0, None, CoalescePolicy::None, &mut src)
            .unwrap();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn attached_registry_tracks_stripes_and_overread() {
        let file = build_file(WriterOptions::default(), 300);
        let reg = dsi_obs::Registry::new();
        let reader = FileReader::open(file.bytes().clone())
            .unwrap()
            .with_registry(&reg);
        let proj = Projection::new(vec![FeatureId(1), FeatureId(4)]);
        let mut src = SliceSource::new(file.bytes().clone());
        let (_, plan) = reader
            .read_stripe_from(0, Some(&proj), CoalescePolicy::default_window(), &mut src)
            .unwrap();
        use dsi_obs::names;
        assert_eq!(reg.counter_value(names::DWRF_STRIPES_DECODED_TOTAL, &[]), 1);
        assert_eq!(
            reg.counter_value(names::DWRF_READ_BYTES_TOTAL, &[]),
            plan.read_bytes
        );
        assert_eq!(
            reg.counter_value(names::DWRF_WANTED_BYTES_TOTAL, &[]),
            plan.wanted_bytes
        );
        // Coalescing never reads less than wanted.
        assert!(plan.read_bytes >= plan.wanted_bytes);
        // The zero-copy path over an in-memory source never memcpys.
        assert_eq!(plan.copied_bytes, 0);
        assert_eq!(
            reg.counter_value(names::FASTPATH_BYTES_COPIED_TOTAL, &[]),
            0
        );
        // Stage timings landed (extract + decompress + deserialize).
        for st in ["extract", "decompress", "deserialize"] {
            match reg.value(dsi_obs::STAGE_SECONDS, &[("stage", st)]) {
                Some(dsi_obs::MetricValue::Histogram(s)) => {
                    assert!(s.count >= 1, "stage {st} has no spans")
                }
                other => panic!("stage {st}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn copying_mode_matches_fastpath_and_counts_legacy_copies() {
        for opts in [
            WriterOptions::default(),
            WriterOptions {
                compressed: false,
                encrypted: false,
                ..Default::default()
            },
            WriterOptions::unflattened_baseline(),
            WriterOptions::deduped(),
        ] {
            let file = build_file(opts, 120);
            let fast = FileReader::open(file.bytes().clone()).unwrap();
            let slow = FileReader::open(file.bytes().clone())
                .unwrap()
                .with_decode_mode(DecodeMode::Copying);
            let mut fast_src = SliceSource::new(file.bytes().clone());
            let mut slow_src = SliceSource::new(file.bytes().clone());
            let (fast_rows, fast_plan) = fast
                .read_stripe_from(0, None, CoalescePolicy::default_window(), &mut fast_src)
                .unwrap();
            let (slow_rows, slow_plan) = slow
                .read_stripe_from(0, None, CoalescePolicy::default_window(), &mut slow_src)
                .unwrap();
            assert_eq!(fast_rows, slow_rows, "modes must decode identically");
            assert_eq!(fast_plan.copied_bytes, 0, "fastpath slices, never copies");
            // The legacy path copied every source read plus every stream
            // window it materialized.
            assert_eq!(
                slow_plan.copied_bytes,
                slow_plan.read_bytes + slow_plan.wanted_bytes
            );
        }
    }

    fn build_duplicated_file(
        opts: WriterOptions,
        sessions: u64,
        members: u64,
    ) -> crate::writer::DwrfFile {
        let mut w = FileWriter::new(opts);
        for s in 0..sessions {
            for m in 0..members {
                let mut row = Sample::new(m as f32);
                row.set_dense(FeatureId(1), s as f32 + m as f32 * 0.5);
                row.set_sparse(
                    FeatureId(2),
                    SparseList::from_ids((0..20).map(|k| s * 1000 + k).collect()),
                );
                row.set_sparse(
                    FeatureId(4),
                    SparseList::from_scored(vec![s * 7, s * 7 + 1], vec![0.5, 1.5]),
                );
                w.push(row);
            }
        }
        w.finish().unwrap()
    }

    #[test]
    fn dedup_file_round_trips_and_shrinks() {
        let plain = build_duplicated_file(WriterOptions::default(), 16, 8);
        let deduped = build_duplicated_file(WriterOptions::deduped(), 16, 8);
        assert!(deduped.footer().dedup);
        assert_eq!(deduped.dedup_stats().rows, 128);
        assert_eq!(deduped.dedup_stats().canonicals, 16);
        assert!(deduped.dedup_stats().bytes_saved > 0);
        // Same logical rows back out.
        let expect = FileReader::open(plain.bytes().clone())
            .unwrap()
            .read_all_unprojected()
            .unwrap();
        let got = FileReader::open(deduped.bytes().clone())
            .unwrap()
            .read_all_unprojected()
            .unwrap();
        assert_eq!(got, expect);
        // Duplicated sparse payloads stored once: the file shrinks even
        // though LZ compression already squeezes repeats in the plain file.
        assert!(
            (deduped.len() as f64) < plain.len() as f64 * 0.75,
            "deduped {} vs plain {}",
            deduped.len(),
            plain.len()
        );
        // On the uncompressed byte path (what extraction pays) the win is
        // the full duplication factor: 8 members per canonical.
        let raw_plain = build_duplicated_file(
            WriterOptions {
                compressed: false,
                encrypted: false,
                ..Default::default()
            },
            16,
            8,
        );
        let raw_deduped = build_duplicated_file(
            WriterOptions {
                compressed: false,
                encrypted: false,
                ..WriterOptions::deduped()
            },
            16,
            8,
        );
        assert!(
            (raw_deduped.len() as f64) < raw_plain.len() as f64 / 2.0,
            "raw deduped {} vs raw plain {}",
            raw_deduped.len(),
            raw_plain.len()
        );
    }

    #[test]
    fn dedup_file_respects_projection_and_unflattened_layout() {
        let opts = WriterOptions {
            flattened: false,
            ..WriterOptions::deduped()
        };
        let file = build_duplicated_file(opts, 4, 4);
        let reader = FileReader::open(file.bytes().clone()).unwrap();
        let proj = Projection::new(vec![FeatureId(1), FeatureId(2)]);
        let rows = reader.read_all(&proj).unwrap();
        assert_eq!(rows.len(), 16);
        assert!(rows[0].sparse(FeatureId(2)).is_some());
        assert!(
            rows[0].sparse(FeatureId(4)).is_none(),
            "projection filters dedup payloads"
        );
        assert!(rows[0].dense(FeatureId(1)).is_some());
    }

    #[test]
    fn dedup_file_without_duplication_round_trips() {
        let file = build_file(WriterOptions::deduped(), 20);
        let reader = FileReader::open(file.bytes().clone()).unwrap();
        let rows = reader.read_all_unprojected().unwrap();
        let expect = FileReader::open(build_file(WriterOptions::default(), 20).bytes().clone())
            .unwrap()
            .read_all_unprojected()
            .unwrap();
        assert_eq!(rows, expect);
        assert_eq!(file.dedup_stats().bytes_saved, 0);
    }

    #[test]
    fn multi_stripe_read_preserves_order() {
        let file = build_file(
            WriterOptions {
                rows_per_stripe: 7,
                ..Default::default()
            },
            23,
        );
        let reader = FileReader::open(file.bytes().clone()).unwrap();
        let rows = reader.read_all_unprojected().unwrap();
        assert_eq!(rows.len(), 23);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.label(), i as f32);
        }
    }
}
