//! DPP Worker split-processing throughput per RM class.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpp::Worker;
use dsi_bench::{LabConfig, RmLab};
use dsi_types::WorkerId;
use std::hint::black_box;
use std::sync::Arc;
use synth::RmClass;

fn bench_worker(c: &mut Criterion) {
    let mut group = c.benchmark_group("dpp_worker");
    group.sample_size(10);
    for class in [RmClass::Rm1, RmClass::Rm2, RmClass::Rm3] {
        let lab = RmLab::build(class, LabConfig::tiny());
        let spec = Arc::new(lab.session_spec(lab.rc_projection(), 64));
        let scan = lab
            .table
            .scan(spec.partitions(), spec.projection.clone())
            .with_policy(spec.policy);
        let splits = scan.plan_splits();
        let rows: u64 = splits.iter().map(|s| s.rows).sum();
        group.throughput(Throughput::Elements(rows));
        group.bench_function(format!("{class}_session"), |b| {
            b.iter(|| {
                let mut worker = Worker::new(WorkerId(0), Arc::clone(&spec), scan.clone());
                for split in &splits {
                    black_box(worker.process_split(split).expect("lab read"));
                }
                black_box(worker.flush());
                black_box(worker.report())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_worker);
criterion_main!(benches);
