//! Offline shim of `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` for documentation and
//! future wire formats but never serializes through serde at runtime (it
//! has its own byte formats), so these derives expand to nothing: the
//! annotation compiles, no trait impl is generated, and no code can bound
//! on the marker traits (none does).

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
