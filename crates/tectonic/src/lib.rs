//! A simulation of Tectonic, the exabyte-scale distributed append-only
//! filesystem that stores warehouse tables.
//!
//! Files are split into fixed-size **blocks**, each replicated across three
//! storage nodes for durability (§VII notes the 8× throughput-to-storage gap
//! holds *even after* accounting for triplicate replication). Every storage
//! node owns a simulated disk ([`hwsim::DiskModel`]), so reads charge real
//! seek/transfer time and the cluster reports IOPS, throughput, and
//! busy-time telemetry per node.
//!
//! * [`block`] — block sizing, rendezvous-hash replica placement, and the
//!   whole-chunk checksum;
//! * [`node`] — a storage node: device + block store (with per-page
//!   checksums verified on read) + telemetry;
//! * [`cluster`] — the name node and client API ([`TectonicCluster`]);
//! * [`directory`] — the chunk directory mapping every block to its
//!   replica set and checksum;
//! * [`heal`] — heartbeat failure detection and the priority rebuild
//!   queue behind self-healing;
//! * [`source`] — a [`dwrf::ChunkSource`] adapter so DWRF readers fetch
//!   through the cluster and are charged for IO;
//! * [`provision`] — node-level HDD/SSD efficiency specs and the
//!   throughput-to-storage gap arithmetic of §VII.
//!
//! # Example
//!
//! ```
//! use tectonic::{ClusterConfig, TectonicCluster};
//! use bytes::Bytes;
//!
//! # fn main() -> dsi_types::Result<()> {
//! let cluster = TectonicCluster::new(ClusterConfig::small());
//! cluster.append("warehouse/rm1/part-0", Bytes::from(vec![7u8; 100_000]))?;
//! let data = cluster.read("warehouse/rm1/part-0", 50_000, 16)?;
//! assert_eq!(data, vec![7u8; 16]);
//! assert!(cluster.total_stats().bytes >= 16);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod cache;
pub mod cluster;
pub mod directory;
pub mod heal;
pub mod node;
pub mod provision;
pub mod source;

pub use block::{
    chunk_checksum, place_replicas, place_replicas_among, BlockId, DEFAULT_BLOCK_SIZE,
    REPLICATION_FACTOR,
};
pub use cache::{CacheStats, CachedSource, SsdCache};
pub use cluster::{ClusterConfig, DurabilityCounters, FileMeta, TectonicCluster};
pub use directory::{ChunkDirectory, ChunkInfo};
pub use heal::{HeartbeatDetector, RebuildProgress, RebuildQueue, DEFAULT_HEARTBEAT_K};
pub use node::{NodeStats, StorageNode, CHECKSUM_PAGE};
pub use provision::{ProvisionPlan, StorageNodeClass, TieredPlacement};
pub use source::TectonicSource;
