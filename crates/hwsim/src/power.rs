//! Fleet power accounting for storage, preprocessing, and training.
//!
//! Datacenter power budgets are fixed; every watt spent on the DSI pipeline
//! is a watt unavailable to trainers (§I, Fig. 1). The [`PowerModel`] rolls
//! node counts into a [`PowerBreakdown`] whose shares reproduce the paper's
//! headline observation that storage + preprocessing can exceed the power of
//! the GPU trainers themselves.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Power draw of one leg of the training fleet for a model, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Storage-node power (capacity + IOPS provisioning).
    pub storage_w: f64,
    /// Preprocessing (DPP worker) power.
    pub preproc_w: f64,
    /// Trainer-node power (GPUs + host).
    pub training_w: f64,
}

impl PowerBreakdown {
    /// Total power across the three legs.
    pub fn total(&self) -> f64 {
        self.storage_w + self.preproc_w + self.training_w
    }

    /// Share of total power spent on DSI (storage + preprocessing).
    pub fn dsi_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            return 0.0;
        }
        (self.storage_w + self.preproc_w) / self.total()
    }

    /// Percentage shares `(storage, preproc, training)` summing to 100.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.storage_w / t,
            100.0 * self.preproc_w / t,
            100.0 * self.training_w / t,
        )
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (s, p, t) = self.percentages();
        write!(
            f,
            "storage {:.1}% | preproc {:.1}% | training {:.1}% (total {:.1} kW)",
            s,
            p,
            t,
            self.total() / 1e3
        )
    }
}

/// Converts provisioned node counts into power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Watts per storage node (host + disks).
    pub storage_node_w: f64,
    /// Watts per preprocessing (DPP worker) node.
    pub preproc_node_w: f64,
    /// Watts per trainer node (host + all GPUs).
    pub trainer_node_w: f64,
}

impl PowerModel {
    /// Production-flavored defaults: storage host (250 W) + 36 HDDs (8 W
    /// each); C-v1 worker (300 W); 8-GPU trainer (800 W host + 8×300 W).
    pub fn production() -> Self {
        Self {
            storage_node_w: 250.0 + 36.0 * 8.0,
            preproc_node_w: 300.0,
            trainer_node_w: 800.0 + 8.0 * 300.0,
        }
    }

    /// Rolls node counts into a breakdown.
    pub fn breakdown(
        &self,
        storage_nodes: f64,
        preproc_nodes: f64,
        trainer_nodes: f64,
    ) -> PowerBreakdown {
        PowerBreakdown {
            storage_w: storage_nodes * self.storage_node_w,
            preproc_w: preproc_nodes * self.preproc_node_w,
            training_w: trainer_nodes * self.trainer_node_w,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::production()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_to_100() {
        let b = PowerModel::production().breakdown(10.0, 50.0, 4.0);
        let (s, p, t) = b.percentages();
        assert!((s + p + t - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dsi_can_exceed_training_power() {
        // Fig. 1: with tens of preprocessing nodes per trainer (Table IX
        // shows up to 55 workers per trainer node), DSI power exceeds 50%.
        let m = PowerModel::production();
        let b = m.breakdown(8.0, 55.0, 1.0);
        assert!(
            b.dsi_fraction() > 0.5,
            "dsi fraction {:.2} should exceed 0.5",
            b.dsi_fraction()
        );
    }

    #[test]
    fn zero_total_is_safe() {
        let b = PowerBreakdown::default();
        assert_eq!(b.dsi_fraction(), 0.0);
        assert_eq!(b.percentages(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn display_mentions_all_legs() {
        let b = PowerModel::production().breakdown(1.0, 1.0, 1.0);
        let s = b.to_string();
        assert!(s.contains("storage") && s.contains("preproc") && s.contains("training"));
    }
}
