//! dsi-fleet — the multi-tenant DPP-as-a-service control plane.
//!
//! The paper's preprocessing tier is not one pipeline per training job:
//! it is a *service*. Many concurrent jobs draw stateless workers from
//! one shared, disaggregated fleet, and capacity is arbitrated across
//! tenants (Zhao et al., ISCA'22 §3, §6). This crate supplies the control
//! plane that makes `dpp` behave that way:
//!
//! * [`JobRegistry`] — declarative desired state: each tenant submits a
//!   [`JobSpec`] (session + priority + min/max worker demand) and watches
//!   a [`JobStatus`] the reconciler publishes back;
//! * [`fair_share`] — weighted max-min allocation with guaranteed floors,
//!   deciding how many workers each job *should* hold when aggregate
//!   demand exceeds the fleet;
//! * [`plan`] — the pure desired-vs-observed diff, emitting typed
//!   [`FleetAction`]s (spawn / drain / preempt / reassign);
//! * [`PlacementScorer`] — which node hosts the next worker (load
//!   headroom, locality to the storage tier, warm buffer pools);
//! * [`FleetDriver`] — the loop that ties it together over real
//!   `DppSession`s. Sessions are launched *managed* (zero workers) and
//!   consume assignments; preemption rides the existing graceful-drain
//!   protocol, so exactly-once delivery is preserved by construction.
//!
//! # Example
//!
//! ```no_run
//! use dsi_fleet::{FleetConfig, FleetDriver, JobSpec, TenantId};
//! use dpp::SessionSpec;
//! use dsi_types::SessionId;
//! # fn table() -> warehouse::Table { unimplemented!() }
//!
//! let driver = FleetDriver::new(FleetConfig { nodes: 2, slots_per_node: 3 });
//! let spec = SessionSpec::builder(SessionId(1)).build();
//! driver
//!     .submit(JobSpec::new(spec, TenantId(7), 2, 1, 4), table())
//!     .unwrap();
//! let mut client = driver.client(SessionId(1)).unwrap();
//! while !driver.is_complete(SessionId(1)) {
//!     driver.tick(); // normally a dedicated thread
//!     if let Some(batch) = client.try_next_batch() {
//!         drop(batch); // feed the trainer
//!     }
//! }
//! driver.remove(SessionId(1)).unwrap().shutdown();
//! ```

#![warn(missing_docs)]

pub mod driver;
pub mod fairshare;
pub mod job;
pub mod placement;
pub mod reconcile;

pub use driver::{FleetConfig, FleetDriver};
pub use fairshare::{deficit, fair_share, Demand};
pub use job::{JobPhase, JobRegistry, JobSpec, JobStatus, TenantId};
pub use placement::{NodeState, PlacementScorer};
pub use reconcile::{plan, FleetAction, ObservedJob};
