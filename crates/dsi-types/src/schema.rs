//! Table schemas, feature definitions, lifecycle status, and projections.
//!
//! Industrial datasets log tens of thousands of features whose set changes
//! constantly: hundreds of features are proposed, promoted, and deprecated
//! each month. The schema tracks every feature's kind and lifecycle status;
//! a [`Projection`] is the per-job column filter selecting the ~10% of
//! features a training job actually reads.

use crate::feature::FeatureKind;
use crate::id::FeatureId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Lifecycle status of a feature in a production dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureStatus {
    /// Proposed but not actively logged; may be back-filled or injected for
    /// exploratory jobs.
    Beta,
    /// Actively logged and used by combo or release-candidate jobs.
    Experimental,
    /// Used by the current production model; actively logged.
    Active,
    /// Superseded; still logged pending review/reaping.
    Deprecated,
}

impl FeatureStatus {
    /// Whether features with this status are actively written to storage.
    pub fn is_logged(self) -> bool {
        !matches!(self, FeatureStatus::Beta)
    }
}

impl fmt::Display for FeatureStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FeatureStatus::Beta => "beta",
            FeatureStatus::Experimental => "experimental",
            FeatureStatus::Active => "active",
            FeatureStatus::Deprecated => "deprecated",
        };
        f.write_str(s)
    }
}

/// Definition of one feature column in a table schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureDef {
    /// The feature's stable identifier.
    pub id: FeatureId,
    /// Dense, sparse, or scored-sparse.
    pub kind: FeatureKind,
    /// Lifecycle status.
    pub status: FeatureStatus,
    /// Fraction of samples in which the feature is present (coverage).
    pub coverage: f64,
    /// Mean list length for sparse features (1.0 for dense).
    pub avg_len: f64,
}

impl FeatureDef {
    /// Creates a dense feature definition with full coverage.
    pub fn dense(id: FeatureId) -> Self {
        Self {
            id,
            kind: FeatureKind::Dense,
            status: FeatureStatus::Active,
            coverage: 1.0,
            avg_len: 1.0,
        }
    }

    /// Creates a sparse feature definition.
    pub fn sparse(id: FeatureId, avg_len: f64) -> Self {
        Self {
            id,
            kind: FeatureKind::Sparse,
            status: FeatureStatus::Active,
            coverage: 1.0,
            avg_len,
        }
    }

    /// Sets the lifecycle status (builder-style).
    pub fn with_status(mut self, status: FeatureStatus) -> Self {
        self.status = status;
        self
    }

    /// Sets the coverage fraction (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is not within `[0, 1]`.
    pub fn with_coverage(mut self, coverage: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage must be in [0, 1]"
        );
        self.coverage = coverage;
        self
    }

    /// Expected stored payload bytes per sample for this feature,
    /// given its kind, coverage, and average length.
    pub fn expected_bytes_per_row(&self) -> f64 {
        let per_present = match self.kind {
            FeatureKind::Dense => 4.0,
            FeatureKind::Sparse => 8.0 * self.avg_len,
            FeatureKind::ScoredSparse => 12.0 * self.avg_len,
        };
        self.coverage * per_present
    }
}

/// A table schema: the full set of logged feature definitions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schema {
    features: BTreeMap<FeatureId, FeatureDef>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a feature definition.
    pub fn add(&mut self, def: FeatureDef) {
        self.features.insert(def.id, def);
    }

    /// Looks up a feature definition.
    pub fn feature(&self, id: FeatureId) -> Option<&FeatureDef> {
        self.features.get(&id)
    }

    /// Removes a feature (reaping), returning its definition.
    pub fn remove(&mut self, id: FeatureId) -> Option<FeatureDef> {
        self.features.remove(&id)
    }

    /// Iterates over all feature definitions in id order.
    pub fn iter(&self) -> impl Iterator<Item = &FeatureDef> {
        self.features.values()
    }

    /// Total number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the schema has no features.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of dense feature definitions.
    pub fn dense_count(&self) -> usize {
        self.features
            .values()
            .filter(|d| d.kind == FeatureKind::Dense)
            .count()
    }

    /// Number of sparse (incl. scored) feature definitions.
    pub fn sparse_count(&self) -> usize {
        self.features
            .values()
            .filter(|d| d.kind.is_sparse())
            .count()
    }

    /// Ids of all features of the given kind, in id order.
    pub fn ids_of_kind(&self, kind: FeatureKind) -> Vec<FeatureId> {
        self.features
            .values()
            .filter(|d| d.kind == kind)
            .map(|d| d.id)
            .collect()
    }

    /// Ids of features that are actively logged (everything but beta).
    pub fn logged_ids(&self) -> Vec<FeatureId> {
        self.features
            .values()
            .filter(|d| d.status.is_logged())
            .map(|d| d.id)
            .collect()
    }

    /// Count of features in each lifecycle status, keyed by status.
    pub fn status_counts(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for def in self.features.values() {
            *counts.entry(def.status.to_string()).or_insert(0) += 1;
        }
        counts
    }

    /// Expected stored payload bytes per row over all logged features.
    pub fn expected_bytes_per_row(&self) -> f64 {
        self.features
            .values()
            .filter(|d| d.status.is_logged())
            .map(FeatureDef::expected_bytes_per_row)
            .sum()
    }
}

impl FromIterator<FeatureDef> for Schema {
    fn from_iter<T: IntoIterator<Item = FeatureDef>>(iter: T) -> Self {
        let mut s = Schema::new();
        for def in iter {
            s.add(def);
        }
        s
    }
}

/// A per-job feature projection: the set of columns a training job reads.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Projection {
    ids: Vec<FeatureId>,
}

impl Projection {
    /// Creates a projection over the given feature ids (deduplicated,
    /// sorted).
    pub fn new(mut ids: Vec<FeatureId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    /// A projection selecting every feature in `schema`.
    pub fn all(schema: &Schema) -> Self {
        Self::new(schema.iter().map(|d| d.id).collect())
    }

    /// The selected feature ids, sorted.
    pub fn ids(&self) -> &[FeatureId] {
        &self.ids
    }

    /// Number of selected features.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no features are selected.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether the projection selects `id`.
    pub fn contains(&self, id: FeatureId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Fraction of `schema`'s features this projection selects.
    pub fn feature_fraction(&self, schema: &Schema) -> f64 {
        if schema.is_empty() {
            return 0.0;
        }
        let hits = self
            .ids
            .iter()
            .filter(|id| schema.feature(**id).is_some())
            .count();
        hits as f64 / schema.len() as f64
    }

    /// Fraction of `schema`'s expected stored bytes this projection selects.
    pub fn byte_fraction(&self, schema: &Schema) -> f64 {
        let total = schema.expected_bytes_per_row();
        if total == 0.0 {
            return 0.0;
        }
        let selected: f64 = self
            .ids
            .iter()
            .filter_map(|id| schema.feature(*id))
            .map(FeatureDef::expected_bytes_per_row)
            .sum();
        selected / total
    }
}

impl FromIterator<FeatureId> for Projection {
    fn from_iter<T: IntoIterator<Item = FeatureId>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add(FeatureDef::dense(FeatureId(1)));
        s.add(FeatureDef::dense(FeatureId(2)).with_status(FeatureStatus::Beta));
        s.add(FeatureDef::sparse(FeatureId(10), 20.0));
        s.add(
            FeatureDef::sparse(FeatureId(11), 10.0)
                .with_coverage(0.5)
                .with_status(FeatureStatus::Deprecated),
        );
        s
    }

    #[test]
    fn counts_by_kind() {
        let s = schema();
        assert_eq!(s.len(), 4);
        assert_eq!(s.dense_count(), 2);
        assert_eq!(s.sparse_count(), 2);
    }

    #[test]
    fn beta_features_are_not_logged() {
        let s = schema();
        let logged = s.logged_ids();
        assert!(!logged.contains(&FeatureId(2)));
        assert_eq!(logged.len(), 3);
    }

    #[test]
    fn expected_bytes_accounts_for_coverage_and_length() {
        let s = schema();
        // dense f1: 4, sparse f10: 8*20=160, deprecated f11: 0.5*8*10=40
        let expected = 4.0 + 160.0 + 40.0;
        assert!((s.expected_bytes_per_row() - expected).abs() < 1e-9);
    }

    #[test]
    fn projection_fractions() {
        let s = schema();
        let p = Projection::new(vec![FeatureId(1), FeatureId(10)]);
        assert!((p.feature_fraction(&s) - 0.5).abs() < 1e-9);
        let bf = p.byte_fraction(&s);
        assert!((bf - 164.0 / 204.0).abs() < 1e-9);
    }

    #[test]
    fn projection_dedups_and_sorts() {
        let p = Projection::new(vec![FeatureId(5), FeatureId(1), FeatureId(5)]);
        assert_eq!(p.ids(), &[FeatureId(1), FeatureId(5)]);
        assert!(p.contains(FeatureId(5)));
        assert!(!p.contains(FeatureId(2)));
    }

    #[test]
    fn status_counts_tally() {
        let s = schema();
        let counts = s.status_counts();
        assert_eq!(counts["active"], 2);
        assert_eq!(counts["beta"], 1);
        assert_eq!(counts["deprecated"], 1);
    }

    #[test]
    #[should_panic(expected = "coverage must be in")]
    fn coverage_is_validated() {
        let _ = FeatureDef::dense(FeatureId(1)).with_coverage(1.5);
    }
}
