//! Columnar (flatmap) transform execution over materialized tensors.
//!
//! §VII: DWRF and tensor formats both represent feature values contiguously
//! across rows, so DPP Workers adopted in-memory flatmaps to avoid format
//! conversions; the TorchArrow/Velox efforts push further toward vectorized
//! columnar execution. This module is that execution path: normalization
//! ops applied directly to [`MiniBatchTensor`] columns in single flat-buffer
//! passes, with results identical to the per-sample row path.
//!
//! Only ops that are per-element over one feature qualify; feature
//! *generation* (Cartesian, NGram, ...) materializes new columns and stays
//! on the row path. [`ColumnarPlan::try_from_plan`] splits a plan
//! accordingly.

use crate::cost::{OpClass, OpCost};
use crate::op::TransformOp;
use crate::plan::PlanCost;
use dsi_types::rng::mix2;
use dsi_types::{FeatureId, MiniBatchTensor, Sample};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Kernel names for per-op timing attribution, indexed by
/// [`ColumnarPlan::kernel_slot`].
pub const COLUMNAR_KERNELS: [&str; 8] = [
    "sigrid_hash",
    "positive_modulus",
    "first_x",
    "compute_score",
    "clamp",
    "logit",
    "box_cox",
    "get_local_hour",
];

/// Per-batch execution context captured from the (post-row-path) samples
/// before materialization: the row path skips samples missing a feature,
/// so exact columnar replay needs per-row presence/scored masks — and
/// per-row lengths for sparse inputs the session does not materialize, so
/// cycle accounting stays identical to the row path.
#[derive(Debug, Clone, Default)]
pub struct ColumnarCtx {
    /// Per dense input feature: `(present mask, present count)`.
    dense_present: BTreeMap<FeatureId, (Vec<bool>, u64)>,
    /// Per `ComputeScore` input feature: rows whose list carries scores
    /// (the row path no-ops on unscored lists; their materialized unit
    /// backfills must stay untouched).
    scored_rows: BTreeMap<FeatureId, Vec<bool>>,
    /// Per sparse input feature *not* in the session's `sparse_ids`:
    /// per-row lengths, tracked so cost accounting matches the row path
    /// even for features the tensor never materializes.
    shadow_lens: BTreeMap<FeatureId, Vec<u32>>,
}

/// Result of a costed columnar application.
#[derive(Debug, Clone, Default)]
pub struct ColumnarApply {
    /// Cycle accounting, identical in shape to the row path's.
    pub cost: PlanCost,
    /// Wall nanoseconds per kernel, indexed like [`COLUMNAR_KERNELS`].
    pub kernel_nanos: [u64; COLUMNAR_KERNELS.len()],
}

/// A transform plan restricted to columnar-executable ops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnarPlan {
    ops: Vec<TransformOp>,
}

impl ColumnarPlan {
    /// An empty plan (sessions that route everything through the row path).
    pub fn empty() -> Self {
        ColumnarPlan { ops: Vec::new() }
    }
    /// Whether an op can run columnar (per-element over one feature).
    pub fn supports(op: &TransformOp) -> bool {
        matches!(
            op,
            TransformOp::SigridHash { .. }
                | TransformOp::PositiveModulus { .. }
                | TransformOp::FirstX { .. }
                | TransformOp::ComputeScore { .. }
                | TransformOp::Clamp { .. }
                | TransformOp::Logit { .. }
                | TransformOp::BoxCox { .. }
                | TransformOp::GetLocalHour { .. }
        )
    }

    /// Builds a columnar plan when *every* op qualifies; `None` otherwise.
    pub fn try_from_plan(plan: &crate::plan::TransformPlan) -> Option<ColumnarPlan> {
        if plan.ops().iter().all(Self::supports) {
            Some(ColumnarPlan {
                ops: plan.ops().to_vec(),
            })
        } else {
            None
        }
    }

    /// Every feature an op reads or writes — the commutation footprint.
    fn footprint(op: &TransformOp) -> Vec<FeatureId> {
        let mut f = op.sparse_inputs();
        // Generation ops whose dense input differs from their output.
        if let TransformOp::Bucketize { input, .. } | TransformOp::Onehot { input, .. } = op {
            f.push(*input);
        }
        if let Some(out) = op.output_feature() {
            f.push(out);
        }
        f
    }

    /// The single feature a qualifying (in-place, single-feature) op
    /// touches.
    fn input_of(op: &TransformOp) -> FeatureId {
        op.output_feature().expect("columnar ops are in-place")
    }

    /// Splits a plan into a row-path residue and a columnar plan such that
    /// applying the residue (per sample) and then the columnar plan (per
    /// tensor) is exactly equivalent to the original plan.
    ///
    /// Not just a suffix split: scanning from the end, a qualifying op
    /// hoists into the columnar plan whenever its feature is untouched by
    /// every *later* residue op — ops on disjoint features commute, so a
    /// sparse normalization early in a production plan still vectorizes
    /// even when feature-generation ops follow it. Only ops feeding (or
    /// fed by) the residue stay on the row path.
    pub fn split_plan(
        plan: &crate::plan::TransformPlan,
    ) -> (crate::plan::TransformPlan, ColumnarPlan) {
        let mut row = Vec::new();
        let mut col = Vec::new();
        let mut blocked: BTreeSet<FeatureId> = BTreeSet::new();
        for op in plan.ops().iter().rev() {
            if Self::supports(op) && !blocked.contains(&Self::input_of(op)) {
                col.push(op.clone());
            } else {
                blocked.extend(Self::footprint(op));
                row.push(op.clone());
            }
        }
        row.reverse();
        col.reverse();
        (
            crate::plan::TransformPlan::new(row),
            ColumnarPlan { ops: col },
        )
    }

    /// Per-feature materialization caps implied by this plan's `FirstX`
    /// ops: the minimum `x` across every `FirstX` on the feature.
    ///
    /// Prefix truncation commutes with every columnar kernel (they are all
    /// per-element or per-row over one feature, and truncation keeps a
    /// prefix), so materialization may drop the capped-away tail up front —
    /// the downstream flat-buffer passes then touch only surviving bytes.
    /// Cost accounting stays row-path-exact via the virtual lengths
    /// captured in [`ColumnarCtx`].
    pub fn prefix_caps(&self) -> BTreeMap<FeatureId, usize> {
        let mut caps: BTreeMap<FeatureId, usize> = BTreeMap::new();
        for op in &self.ops {
            if let TransformOp::FirstX { input, x } = op {
                caps.entry(*input)
                    .and_modify(|c| *c = (*c).min(*x))
                    .or_insert(*x);
            }
        }
        caps
    }

    /// [`ColumnarPlan::prefix_caps`] aligned to a session's `sparse_ids`
    /// materialization order (`usize::MAX` = uncapped), ready to hand to
    /// `Batch::materialize_capped`. Returns an empty vec when nothing is
    /// capped so the uncapped path stays allocation-free.
    pub fn sparse_caps(&self, sparse_ids: &[FeatureId]) -> Vec<usize> {
        let caps = self.prefix_caps();
        if sparse_ids.iter().any(|f| caps.contains_key(f)) {
            sparse_ids
                .iter()
                .map(|f| caps.get(f).copied().unwrap_or(usize::MAX))
                .collect()
        } else {
            Vec::new()
        }
    }

    /// The plan's ops.
    pub fn ops(&self) -> &[TransformOp] {
        &self.ops
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the plan to a materialized mini-batch. `dense_ids` gives the
    /// dense matrix's column order (as passed to `Batch::materialize`).
    pub fn apply(&self, tensor: &mut MiniBatchTensor, dense_ids: &[FeatureId]) {
        let dense_col = |f: FeatureId| dense_ids.iter().position(|&d| d == f);
        for op in &self.ops {
            match op {
                TransformOp::SigridHash {
                    input,
                    salt,
                    modulus,
                } => {
                    if let Some(t) = tensor.sparse.iter_mut().find(|t| t.feature() == *input) {
                        t.map_values_in_place(|v| mix2(*salt, v) % modulus);
                    }
                }
                TransformOp::PositiveModulus { input, modulus } => {
                    if let Some(t) = tensor.sparse.iter_mut().find(|t| t.feature() == *input) {
                        t.map_values_in_place(|v| v % modulus);
                    }
                }
                TransformOp::FirstX { input, x } => {
                    if let Some(t) = tensor.sparse.iter_mut().find(|t| t.feature() == *input) {
                        t.truncate_rows(*x);
                    }
                }
                TransformOp::ComputeScore {
                    input,
                    scale,
                    offset,
                } => {
                    if let Some(t) = tensor.sparse.iter_mut().find(|t| t.feature() == *input) {
                        t.map_scores_in_place(|s| s * scale + offset);
                    }
                }
                TransformOp::Clamp { input, min, max } => {
                    if let Some(c) = dense_col(*input) {
                        tensor.dense.map_col_in_place(c, |v| v.clamp(*min, *max));
                    }
                }
                TransformOp::Logit { input } => {
                    if let Some(c) = dense_col(*input) {
                        tensor.dense.map_col_in_place(c, |v| {
                            let p = (v as f64).clamp(1e-6, 1.0 - 1e-6);
                            (p / (1.0 - p)).ln() as f32
                        });
                    }
                }
                TransformOp::BoxCox { input, lambda } => {
                    if let Some(c) = dense_col(*input) {
                        tensor.dense.map_col_in_place(c, |v| {
                            let x = (v as f64).max(1e-9);
                            if lambda.abs() < 1e-12 {
                                x.ln() as f32
                            } else {
                                ((x.powf(*lambda) - 1.0) / lambda) as f32
                            }
                        });
                    }
                }
                TransformOp::GetLocalHour {
                    input,
                    tz_offset_secs,
                } => {
                    if let Some(c) = dense_col(*input) {
                        let tz = *tz_offset_secs as i64;
                        tensor.dense.map_col_in_place(c, |v| {
                            ((v as i64 + tz).rem_euclid(86_400) / 3_600) as f32
                        });
                    }
                }
                // try_from_plan/split_plan guarantee only supported ops here.
                other => debug_assert!(Self::supports(other), "unsupported columnar op"),
            }
        }
    }

    /// Timing slot of a qualifying op in [`COLUMNAR_KERNELS`].
    pub fn kernel_slot(op: &TransformOp) -> usize {
        match op {
            TransformOp::SigridHash { .. } => 0,
            TransformOp::PositiveModulus { .. } => 1,
            TransformOp::FirstX { .. } => 2,
            TransformOp::ComputeScore { .. } => 3,
            TransformOp::Clamp { .. } => 4,
            TransformOp::Logit { .. } => 5,
            TransformOp::BoxCox { .. } => 6,
            TransformOp::GetLocalHour { .. } => 7,
            _ => unreachable!("unsupported columnar op"),
        }
    }

    /// Captures the per-row masks this plan needs from the batch that is
    /// about to materialize. `samples` must be the post-row-path samples
    /// (the exact rows `Batch::materialize` will see); `dense_ids` /
    /// `sparse_ids` are the session's materialization lists.
    pub fn capture_ctx(
        &self,
        samples: &[Sample],
        _dense_ids: &[FeatureId],
        sparse_ids: &[FeatureId],
    ) -> ColumnarCtx {
        let mut ctx = ColumnarCtx::default();
        // Features whose materialization is capped keep virtual lengths
        // too: the tensor is born pre-truncated, but the row path charges
        // pre-truncation lengths, so cost accounting must replay them.
        let capped = self.prefix_caps();
        // First decide which features need which captures, then fill every
        // mask in ONE id-ordered merge-join pass over the samples (their
        // feature maps iterate in id order); per-feature `s.dense(f)` /
        // `s.sparse(f)` probes would pay one tree descent per sample per
        // feature, which dominated the split path's fixed cost.
        let mut dense_feats: Vec<FeatureId> = Vec::new();
        let mut shadow_feats: Vec<FeatureId> = Vec::new();
        let mut scored_feats: Vec<FeatureId> = Vec::new();
        for op in &self.ops {
            let f = Self::input_of(op);
            match op {
                TransformOp::Clamp { .. }
                | TransformOp::Logit { .. }
                | TransformOp::BoxCox { .. }
                | TransformOp::GetLocalHour { .. } => dense_feats.push(f),
                TransformOp::SigridHash { .. }
                | TransformOp::PositiveModulus { .. }
                | TransformOp::FirstX { .. }
                | TransformOp::ComputeScore { .. } => {
                    if matches!(op, TransformOp::ComputeScore { .. }) {
                        scored_feats.push(f);
                    }
                    if !sparse_ids.contains(&f) || capped.contains_key(&f) {
                        shadow_feats.push(f);
                    }
                }
                _ => {}
            }
        }
        dense_feats.sort_unstable();
        dense_feats.dedup();
        shadow_feats.sort_unstable();
        shadow_feats.dedup();
        scored_feats.sort_unstable();
        scored_feats.dedup();
        // Sorted union of the sparse-side features, each tagged with its
        // slot in the shadow / scored output tables.
        let mut sparse_want: Vec<(FeatureId, Option<usize>, Option<usize>)> = shadow_feats
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, Some(i), None))
            .collect();
        for (j, &f) in scored_feats.iter().enumerate() {
            match sparse_want.binary_search_by_key(&f, |e| e.0) {
                Ok(k) => sparse_want[k].2 = Some(j),
                Err(k) => sparse_want.insert(k, (f, None, Some(j))),
            }
        }

        let rows = samples.len();
        let mut dense_masks: Vec<(Vec<bool>, u64)> =
            dense_feats.iter().map(|_| (vec![false; rows], 0)).collect();
        let mut shadow: Vec<Vec<u32>> = shadow_feats.iter().map(|_| vec![0; rows]).collect();
        let mut scored: Vec<Vec<bool>> = scored_feats.iter().map(|_| vec![false; rows]).collect();
        for (r, s) in samples.iter().enumerate() {
            let mut cols = dense_feats.iter().enumerate().peekable();
            for (id, _) in s.dense_iter() {
                while cols.next_if(|&(_, &f)| f < id).is_some() {}
                if let Some((i, _)) = cols.next_if(|&(_, &f)| f == id) {
                    dense_masks[i].0[r] = true;
                    dense_masks[i].1 += 1;
                }
            }
            let mut want = sparse_want.iter().peekable();
            for (id, list) in s.sparse_iter() {
                while want.next_if(|&&(f, _, _)| f < id).is_some() {}
                if let Some(&(_, sh, sc)) = want.next_if(|&&(f, _, _)| f == id) {
                    if let Some(i) = sh {
                        shadow[i][r] = list.len() as u32;
                    }
                    if let Some(j) = sc {
                        scored[j][r] = list.scores().is_some();
                    }
                }
            }
        }
        for (f, m) in dense_feats.into_iter().zip(dense_masks) {
            ctx.dense_present.insert(f, m);
        }
        for (f, lens) in shadow_feats.into_iter().zip(shadow) {
            ctx.shadow_lens.insert(f, lens);
        }
        for (f, rows) in scored_feats.into_iter().zip(scored) {
            ctx.scored_rows.insert(f, rows);
        }
        ctx
    }

    /// Applies the plan to a materialized mini-batch with row-path-exact
    /// masking and cycle accounting. Sparse ops run as single passes over
    /// the flat CSR buffers; dense ops run over contiguous column slices
    /// (whole-column when every row carries the feature, masked
    /// otherwise). Returns the accumulated [`PlanCost`] — elements counted
    /// exactly as the row path counts them — plus wall time per kernel.
    pub fn apply_with_cost(
        &self,
        tensor: &mut MiniBatchTensor,
        dense_ids: &[FeatureId],
        ctx: &ColumnarCtx,
        cost_model: &OpCost,
    ) -> ColumnarApply {
        let dense_col = |f: FeatureId| dense_ids.iter().position(|&d| d == f);
        let mut out = ColumnarApply::default();
        // Shadow lengths evolve as ops apply (FirstX truncates), exactly as
        // the row path's sample lists would. They exist for features the
        // session never materializes AND for capped features, whose tensors
        // were born pre-truncated — either way the row path's charge is the
        // virtual length, not the tensor's.
        let mut shadow = ctx.shadow_lens.clone();
        for op in &self.ops {
            let f = Self::input_of(op);
            let start = std::time::Instant::now();
            // Elements touched *before* the op applies, as the row path
            // counts them (FirstX charges pre-truncation lengths).
            let elements;
            // Charge virtual lengths when tracked, tensor nnz otherwise.
            let charge =
                |shadow: &BTreeMap<FeatureId, Vec<u32>>, tensor: &MiniBatchTensor| match shadow
                    .get(&f)
                {
                    Some(lens) => lens.iter().map(|&v| v as u64).sum(),
                    None => tensor
                        .sparse
                        .iter()
                        .find(|t| t.feature() == f)
                        .map_or(0, |t| t.values().len() as u64),
                };
            match op {
                TransformOp::SigridHash { salt, modulus, .. } => {
                    elements = charge(&shadow, tensor);
                    if let Some(t) = tensor.sparse.iter_mut().find(|t| t.feature() == f) {
                        t.map_values_in_place(|v| mix2(*salt, v) % modulus);
                    }
                }
                TransformOp::PositiveModulus { modulus, .. } => {
                    elements = charge(&shadow, tensor);
                    if let Some(t) = tensor.sparse.iter_mut().find(|t| t.feature() == f) {
                        t.map_values_in_place(|v| v % modulus);
                    }
                }
                TransformOp::FirstX { x, .. } => {
                    elements = charge(&shadow, tensor);
                    if let Some(t) = tensor.sparse.iter_mut().find(|t| t.feature() == f) {
                        // No-op when materialization already capped at or
                        // below x; still truncates when a later, smaller
                        // FirstX follows a larger cap.
                        t.truncate_rows(*x);
                    }
                    if let Some(lens) = shadow.get_mut(&f) {
                        let cap = (*x).min(u32::MAX as usize) as u32;
                        for l in lens.iter_mut() {
                            *l = (*l).min(cap);
                        }
                    }
                }
                TransformOp::ComputeScore { scale, offset, .. } => {
                    elements = charge(&shadow, tensor);
                    if let Some(t) = tensor.sparse.iter_mut().find(|t| t.feature() == f) {
                        if let Some(mask) = ctx.scored_rows.get(&f) {
                            t.map_scores_rows_in_place(mask, |s| s * scale + offset);
                        }
                    }
                }
                TransformOp::Clamp { min, max, .. } => {
                    elements =
                        self.dense_apply(tensor, ctx, f, dense_col(f), |v| v.clamp(*min, *max));
                }
                TransformOp::Logit { .. } => {
                    elements = self.dense_apply(tensor, ctx, f, dense_col(f), |v| {
                        let p = (v as f64).clamp(1e-6, 1.0 - 1e-6);
                        (p / (1.0 - p)).ln() as f32
                    });
                }
                TransformOp::BoxCox { lambda, .. } => {
                    elements = self.dense_apply(tensor, ctx, f, dense_col(f), |v| {
                        let x = (v as f64).max(1e-9);
                        if lambda.abs() < 1e-12 {
                            x.ln() as f32
                        } else {
                            ((x.powf(*lambda) - 1.0) / lambda) as f32
                        }
                    });
                }
                TransformOp::GetLocalHour { tz_offset_secs, .. } => {
                    let tz = *tz_offset_secs as i64;
                    elements = self.dense_apply(tensor, ctx, f, dense_col(f), |v| {
                        ((v as i64 + tz).rem_euclid(86_400) / 3_600) as f32
                    });
                }
                other => {
                    debug_assert!(Self::supports(other), "unsupported columnar op");
                    elements = 0;
                }
            }
            out.kernel_nanos[Self::kernel_slot(op)] += start.elapsed().as_nanos() as u64;
            let cycles = cost_model.cycles(op, elements);
            out.cost.cycles += cycles;
            out.cost.elements += elements;
            out.cost.membw_bytes += elements as f64 * cost_model.membw_bytes_per_element;
            match OpCost::class_of(op) {
                OpClass::FeatureGeneration => out.cost.feature_generation_cycles += cycles,
                OpClass::SparseNormalization => out.cost.sparse_normalization_cycles += cycles,
                OpClass::DenseNormalization => out.cost.dense_normalization_cycles += cycles,
                OpClass::Filter => {}
            }
        }
        out
    }

    /// Masked dense-column application: whole-column pass when every row
    /// carries the feature, per-row mask otherwise, skipped (cost still
    /// charged) when the session does not materialize the column. Returns
    /// elements touched (present-row count, exactly the row path's sum).
    fn dense_apply<F: FnMut(f32) -> f32>(
        &self,
        tensor: &mut MiniBatchTensor,
        ctx: &ColumnarCtx,
        f: FeatureId,
        col: Option<usize>,
        kernel: F,
    ) -> u64 {
        let Some((mask, count)) = ctx.dense_present.get(&f) else {
            return 0;
        };
        if let Some(c) = col {
            if *count as usize == mask.len() {
                tensor.dense.map_col_in_place(c, kernel);
            } else {
                tensor.dense.map_col_rows_in_place(c, mask, kernel);
            }
        }
        *count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::TransformPlan;
    use dsi_types::{Batch, Sample, SparseList};

    fn batch() -> Batch {
        (0..64u64)
            .map(|i| {
                let mut s = Sample::new(0.0);
                s.set_dense(FeatureId(0), i as f32 / 64.0);
                s.set_dense(FeatureId(1), i as f32 * 3_600.0);
                s.set_sparse(
                    FeatureId(10),
                    SparseList::from_ids((0..(i % 6 + 1)).map(|k| i * 31 + k).collect()),
                );
                s
            })
            .collect()
    }

    fn norm_plan() -> TransformPlan {
        TransformPlan::new(vec![
            TransformOp::SigridHash {
                input: FeatureId(10),
                salt: 5,
                modulus: 997,
            },
            TransformOp::FirstX {
                input: FeatureId(10),
                x: 3,
            },
            TransformOp::Logit {
                input: FeatureId(0),
            },
            TransformOp::Clamp {
                input: FeatureId(1),
                min: 0.0,
                max: 10_000.0,
            },
        ])
    }

    #[test]
    fn columnar_matches_row_path_exactly() {
        let dense_ids = [FeatureId(0), FeatureId(1)];
        let sparse_ids = [FeatureId(10)];
        let plan = norm_plan();

        // Row path: transform samples, then materialize.
        let mut row_batch = batch();
        for s in row_batch.samples_mut() {
            plan.apply_sample(s);
        }
        let row_tensor = row_batch.materialize(&dense_ids, &sparse_ids);

        // Columnar path: materialize raw, then transform tensors.
        let columnar = ColumnarPlan::try_from_plan(&plan).expect("all ops qualify");
        let mut col_tensor = batch().materialize(&dense_ids, &sparse_ids);
        columnar.apply(&mut col_tensor, &dense_ids);

        assert_eq!(row_tensor, col_tensor);
    }

    #[test]
    fn generation_ops_disqualify_full_columnar() {
        let plan = TransformPlan::new(vec![
            TransformOp::NGram {
                input: FeatureId(10),
                n: 2,
                output: FeatureId(20),
            },
            TransformOp::SigridHash {
                input: FeatureId(20),
                salt: 0,
                modulus: 100,
            },
        ]);
        assert!(ColumnarPlan::try_from_plan(&plan).is_none());
        // But the hash suffix still splits off.
        let (row, col) = ColumnarPlan::split_plan(&plan);
        assert_eq!(row.len(), 1);
        assert_eq!(col.ops().len(), 1);
    }

    #[test]
    fn split_respects_order() {
        // A qualifying op *before* a generation op must stay on the row
        // path (it may feed the generator).
        let plan = TransformPlan::new(vec![
            TransformOp::FirstX {
                input: FeatureId(10),
                x: 4,
            },
            TransformOp::NGram {
                input: FeatureId(10),
                n: 2,
                output: FeatureId(20),
            },
            TransformOp::Clamp {
                input: FeatureId(0),
                min: 0.0,
                max: 1.0,
            },
        ]);
        let (row, col) = ColumnarPlan::split_plan(&plan);
        assert_eq!(row.len(), 2);
        assert_eq!(col.ops().len(), 1);
    }

    #[test]
    fn split_of_pure_normalization_is_all_columnar() {
        let (row, col) = ColumnarPlan::split_plan(&norm_plan());
        assert!(row.is_empty());
        assert_eq!(col.ops().len(), 4);
    }

    #[test]
    fn missing_features_are_ignored() {
        let columnar = ColumnarPlan::try_from_plan(&TransformPlan::new(vec![
            TransformOp::SigridHash {
                input: FeatureId(99),
                salt: 0,
                modulus: 10,
            },
            TransformOp::Clamp {
                input: FeatureId(98),
                min: 0.0,
                max: 1.0,
            },
        ]))
        .expect("qualifying ops");
        let mut tensor = batch().materialize(&[FeatureId(0)], &[FeatureId(10)]);
        let before = tensor.clone();
        columnar.apply(&mut tensor, &[FeatureId(0)]);
        assert_eq!(tensor, before);
    }
}
