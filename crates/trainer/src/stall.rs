//! A virtual-time data-stall simulator.
//!
//! Models the trainer's ingest loop as a bounded buffer between a tensor
//! producer (the preprocessing pipeline, possibly bursty) and the GPU
//! consumer: the GPU stalls whenever the buffer is empty at iteration
//! start. This is the mechanism DPP's buffered tensors are sized against
//! (§III-B1: "maintaining a non-zero number of buffered tensors").

use dsi_types::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// Result of a stall simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StallReport {
    /// Batches consumed.
    pub batches: u64,
    /// Batches produced by the pipeline (consumed plus any still
    /// buffered at exit).
    pub produced: u64,
    /// Total simulated seconds.
    pub elapsed_secs: f64,
    /// Seconds the GPU spent waiting for data.
    pub stalled_secs: f64,
    /// `stalled_secs / elapsed_secs`.
    pub stall_fraction: f64,
}

impl StallReport {
    /// Publishes this report into `registry`: the data-stall fraction,
    /// stalled/elapsed wall-time gauges, the consumed-batch counter, and
    /// one `stall` stage observation carrying the total stalled time (so
    /// the pipeline report's stage table shows where the GPU waited).
    pub fn publish_metrics(&self, registry: &dsi_obs::Registry) {
        self.publish_with(registry, None);
    }

    /// Like [`StallReport::publish_metrics`], but stamps every metric with
    /// a `job` label so two concurrent training sessions publishing into
    /// one registry never collide.
    pub fn publish_metrics_labeled(&self, registry: &dsi_obs::Registry, job: &str) {
        self.publish_with(registry, Some(job));
    }

    fn publish_with(&self, registry: &dsi_obs::Registry, job: Option<&str>) {
        use dsi_obs::names;
        let labels: Vec<(&str, &str)> = job.map(|j| vec![("job", j)]).unwrap_or_default();
        registry
            .gauge(names::TRAINER_STALL_FRACTION, &labels)
            .set(self.stall_fraction);
        registry
            .gauge(names::TRAINER_STALLED_SECONDS, &labels)
            .set(self.stalled_secs);
        registry
            .gauge(names::TRAINER_ELAPSED_SECONDS, &labels)
            .set(self.elapsed_secs);
        registry
            .counter(names::TRAINER_BATCHES_TOTAL, &labels)
            .add(self.batches);
        dsi_obs::observe_stage_seconds(registry, dsi_obs::stage::STALL, self.stalled_secs);
    }
}

/// A bounded-buffer producer/consumer stall simulator in virtual time.
#[derive(Debug, Clone)]
pub struct StallSim {
    /// Mean seconds between produced batches.
    pub produce_interval: f64,
    /// Seconds of GPU work per batch.
    pub consume_interval: f64,
    /// Buffer capacity in batches.
    pub buffer_capacity: usize,
    /// Log-normal sigma of producer jitter (0 = deterministic).
    pub producer_jitter: f64,
}

impl StallSim {
    /// Creates a simulator from supply and demand rates (batches/s).
    ///
    /// # Panics
    ///
    /// Panics if either rate or the buffer capacity is not positive.
    pub fn from_rates(supply_bps: f64, demand_bps: f64, buffer_capacity: usize) -> Self {
        assert!(
            supply_bps > 0.0 && demand_bps > 0.0,
            "rates must be positive"
        );
        assert!(buffer_capacity > 0, "buffer must hold at least one batch");
        Self {
            produce_interval: 1.0 / supply_bps,
            consume_interval: 1.0 / demand_bps,
            buffer_capacity,
            producer_jitter: 0.0,
        }
    }

    /// Sets producer jitter (builder-style).
    pub fn with_jitter(mut self, sigma: f64) -> Self {
        self.producer_jitter = sigma;
        self
    }

    /// Runs `batches` iterations of the consumer and reports stalls.
    pub fn run(&self, batches: u64, seed: u64) -> StallReport {
        let mut rng = SplitMix64::new(seed);
        let mut now = 0.0f64;
        // Times at which produced batches become available.
        let mut next_produce = 0.0f64;
        let mut available: std::collections::VecDeque<f64> = std::collections::VecDeque::new();
        let mut produced = 0u64;
        let mut stalled = 0.0f64;

        let produce_until = |t: f64,
                             available: &mut std::collections::VecDeque<f64>,
                             next_produce: &mut f64,
                             produced: &mut u64,
                             rng: &mut SplitMix64| {
            while *next_produce <= t && available.len() < self.buffer_capacity {
                available.push_back(*next_produce);
                *produced += 1;
                let interval = if self.producer_jitter > 0.0 {
                    rng.next_lognormal(self.produce_interval, self.producer_jitter)
                } else {
                    self.produce_interval
                };
                *next_produce += interval;
            }
            // A full buffer back-pressures the producer: it resumes when
            // space frees (modeled by pushing its clock forward).
            if available.len() >= self.buffer_capacity && *next_produce < t {
                *next_produce = t;
            }
        };

        for _ in 0..batches {
            produce_until(
                now,
                &mut available,
                &mut next_produce,
                &mut produced,
                &mut rng,
            );
            let batch_ready = match available.pop_front() {
                Some(_) => now,
                None => {
                    // Stall until the producer delivers, then route the
                    // delivery through the single production path so the
                    // batch is counted in `produced` and the producer
                    // clock advances exactly as it does for buffered
                    // batches (an inline copy here used to bypass the
                    // buffer-capacity backpressure bump and drift the
                    // produced count from the buffered path on one seed).
                    let ready = next_produce.max(now);
                    stalled += ready - now;
                    produce_until(
                        ready,
                        &mut available,
                        &mut next_produce,
                        &mut produced,
                        &mut rng,
                    );
                    available
                        .pop_front()
                        .expect("producer delivered a batch at its own ready time");
                    ready
                }
            };
            now = batch_ready + self.consume_interval;
        }
        assert_eq!(
            produced,
            batches + available.len() as u64,
            "every produced batch is either consumed or still buffered"
        );
        StallReport {
            batches,
            produced,
            elapsed_secs: now,
            stalled_secs: stalled,
            stall_fraction: if now > 0.0 { stalled / now } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversupplied_trainer_never_stalls() {
        let sim = StallSim::from_rates(1000.0, 100.0, 8);
        let r = sim.run(10_000, 1);
        assert_eq!(r.stalled_secs, 0.0);
        assert_eq!(r.stall_fraction, 0.0);
    }

    #[test]
    fn undersupplied_trainer_stalls_by_the_deficit() {
        // Supply half of demand: the GPU should stall ~50% of time.
        let sim = StallSim::from_rates(50.0, 100.0, 8);
        let r = sim.run(20_000, 2);
        assert!(
            (0.45..=0.55).contains(&r.stall_fraction),
            "stall {:.3}",
            r.stall_fraction
        );
    }

    #[test]
    fn table_vii_operating_point() {
        // RM1 on-host: supply ≈ 0.44× demand -> 56% stall.
        let sim = StallSim::from_rates(44.0, 100.0, 8);
        let r = sim.run(20_000, 3);
        assert!(
            (0.52..=0.60).contains(&r.stall_fraction),
            "stall {:.3}",
            r.stall_fraction
        );
    }

    #[test]
    fn buffering_absorbs_jitter() {
        // With supply == demand and jitter, a tiny buffer stalls more than
        // a deep one.
        let shallow = StallSim::from_rates(100.0, 100.0, 1)
            .with_jitter(0.5)
            .run(20_000, 4);
        let deep = StallSim::from_rates(100.0, 100.0, 32)
            .with_jitter(0.5)
            .run(20_000, 4);
        assert!(
            deep.stall_fraction < shallow.stall_fraction,
            "deep {:.3} vs shallow {:.3}",
            deep.stall_fraction,
            shallow.stall_fraction
        );
    }

    #[test]
    fn elapsed_accounts_for_consume_time() {
        let sim = StallSim::from_rates(1000.0, 100.0, 8);
        let r = sim.run(100, 5);
        assert!(
            (r.elapsed_secs - 1.0).abs() < 0.05,
            "elapsed {}",
            r.elapsed_secs
        );
        assert_eq!(r.batches, 100);
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn invalid_rates_rejected() {
        StallSim::from_rates(0.0, 1.0, 1);
    }

    #[test]
    fn stall_path_batches_are_counted_as_produced() {
        // Regression: the stall branch used to sample the producer
        // interval inline instead of routing through `produce_until`, so
        // every directly-consumed batch was missing from `produced` — an
        // undersupplied trainer reported almost nothing produced while
        // consuming thousands of batches.
        let sim = StallSim::from_rates(50.0, 100.0, 8).with_jitter(0.3);
        let r = sim.run(5_000, 7);
        assert!(
            r.produced >= r.batches,
            "produced {} must cover the {} consumed batches",
            r.produced,
            r.batches
        );
        assert!(
            r.produced <= r.batches + 8,
            "at most buffer_capacity batches may remain buffered, produced {}",
            r.produced
        );

        // Deterministic oversupplied run: the buffer is the only slack.
        let sim = StallSim::from_rates(1000.0, 100.0, 4);
        let r = sim.run(1_000, 9);
        assert!((r.batches..=r.batches + 4).contains(&r.produced));
    }

    #[test]
    fn report_publishes_stall_metrics() {
        use dsi_obs::names;
        let sim = StallSim::from_rates(50.0, 100.0, 8);
        let r = sim.run(1_000, 2);
        let reg = dsi_obs::Registry::new();
        r.publish_metrics(&reg);
        assert!(
            (reg.gauge_value(names::TRAINER_STALL_FRACTION, &[]) - r.stall_fraction).abs() < 1e-12
        );
        assert!(
            (reg.gauge_value(names::TRAINER_STALLED_SECONDS, &[]) - r.stalled_secs).abs() < 1e-12
        );
        assert_eq!(reg.counter_value(names::TRAINER_BATCHES_TOTAL, &[]), 1_000);
        // The stall stage carries the GPU's waiting time.
        let stall = reg
            .histogram(
                dsi_obs::span::STAGE_SECONDS,
                &[("stage", dsi_obs::stage::STALL)],
            )
            .snapshot();
        assert_eq!(stall.count, 1);
        assert!((stall.sum - r.stalled_secs).abs() < 1e-12);
    }
}
