//! Offline shim of `proptest`.
//!
//! Implements the strategy surface the workspace's property tests use —
//! range and `any` strategies, tuples, `prop_map`, `Just`, `prop_oneof!`,
//! the `collection` module, and the `proptest!` macro — as a deterministic
//! random tester seeded from the test name. Differences from the real
//! crate: no shrinking (a failing case reports its seed and case index
//! instead), and `prop_assert*` panics directly.

use std::ops::Range;

pub mod test_runner {
    /// Run configuration for a `proptest!` block.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// Deterministic splitmix64 generator driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name (stable across runs).
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            (self.next_f64() * bound as f64) as u64
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| {
            self.generate(rng)
        }))
    }
}

/// A type-erased strategy (used by `prop_oneof!`).
#[derive(Clone)]
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// The `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, well-spread values; property tests here never rely on
        // NaN/infinity generation.
        (rng.next_f64() as f32 - 0.5) * 2e9
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_f64() - 0.5) * 2e18
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Default, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (via [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies: `vec`, `btree_map`, `btree_set`.

    use super::{Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap` (sizes may come up short on key collisions,
    /// as with the real crate).
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: Range<usize>,
    }

    /// Generates maps with up to `len` entries.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        len: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, len }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// Strategy for `BTreeSet` (sizes may come up short on collisions).
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates sets with up to `len` elements.
    pub fn btree_set<S: Strategy>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Arbitrary, BoxedStrategy, Just, Strategy, Union};
}

/// Asserts a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// Declares property tests: each `fn` runs `cases` times with fresh
/// random inputs. Parameters are either `pattern in strategy` or
/// `name: Type` (drawing from [`Arbitrary`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..cfg.cases {
                $crate::proptest!(@bind rng; $($params)*);
                $body
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@bind $rng:ident; ) => {};
    (@bind $rng:ident; $i:ident : $t:ty, $($rest:tt)*) => {
        let $i: $t = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $i:ident : $t:ty) => {
        let $i: $t = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    (@bind $rng:ident; $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $p:pat in $s:expr) => {
        let $p = $crate::Strategy::generate(&($s), &mut $rng);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-2.0f32..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn collections_and_maps_generate() {
        let mut rng = crate::test_runner::TestRng::deterministic("coll");
        let s = crate::collection::vec(any::<u8>(), 3..7).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = s.generate(&mut rng);
            assert!((3..7).contains(&n));
        }
        let m = crate::collection::btree_map(0u64..4, 0u64..100, 0..10);
        let map = m.generate(&mut rng);
        assert!(map.len() <= 4, "at most 4 distinct keys");
    }

    #[test]
    fn oneof_union_draws_all_arms() {
        let mut rng = crate::test_runner::TestRng::deterministic("oneof");
        let s = prop_oneof![Just(0u64), (1u64..100).prop_map(|v| v)];
        let mut zeros = 0;
        let mut others = 0;
        for _ in 0..200 {
            if s.generate(&mut rng) == 0 {
                zeros += 1;
            } else {
                others += 1;
            }
        }
        assert!(zeros > 0 && others > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_mixed_params(
            v in crate::collection::vec(any::<u64>(), 0..5),
            flag: bool,
            (a, b) in (0u64..10, 10u64..20),
        ) {
            prop_assert!(v.len() < 5);
            prop_assert!(a < 10 && (10..20).contains(&b));
            prop_assert_eq!(flag as u64 * 2 % 2, 0);
        }
    }
}
