//! The §VII co-design ablation as a criterion benchmark: end-to-end worker
//! wall time per configuration (baseline map files vs fully optimized).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dpp::{ExtractCostModel, Worker};
use dsi_bench::{LabConfig, RmLab};
use dsi_types::WorkerId;
use dwrf::{CoalescePolicy, WriterOptions};
use std::hint::black_box;
use std::sync::Arc;
use synth::RmClass;

fn run_config(lab: &RmLab, policy: CoalescePolicy, cost: ExtractCostModel) -> impl Fn() + use<'_> {
    let spec = Arc::new(lab.session_spec(lab.rc_projection(), 64));
    let scan = lab
        .table
        .scan(spec.partitions(), spec.projection.clone())
        .with_policy(policy);
    let splits = scan.plan_splits();
    move || {
        let mut worker =
            Worker::new(WorkerId(0), Arc::clone(&spec), scan.clone()).with_cost_model(cost);
        for split in &splits {
            black_box(worker.process_split(split).expect("lab read"));
        }
        black_box(worker.flush());
    }
}

fn bench_codesign(c: &mut Criterion) {
    let cfg = LabConfig::tiny();
    let rowmajor = ExtractCostModel {
        decode_cycles_per_byte: 6.0,
        decode_membw_per_byte: 12.0,
        batch_membw_per_byte: 6.0,
        ..Default::default()
    };
    let baseline_lab = RmLab::build_with_writer(
        RmClass::Rm1,
        cfg,
        Some(WriterOptions {
            flattened: false,
            rows_per_stripe: cfg.rows_per_stripe,
            ..Default::default()
        }),
    );
    let optimized_lab = {
        let seed_lab = RmLab::build(RmClass::Rm1, cfg);
        let writer = seed_lab.popularity_writer_options();
        RmLab::build_with_writer(RmClass::Rm1, cfg, Some(writer))
    };
    let rows = cfg.days as u64 * cfg.rows_per_day;

    let mut group = c.benchmark_group("codesign");
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows));
    let baseline = run_config(&baseline_lab, CoalescePolicy::None, rowmajor);
    group.bench_function("baseline_map_scattered_rowmajor", |b| b.iter(&baseline));
    let optimized = run_config(
        &optimized_lab,
        CoalescePolicy::default_window(),
        ExtractCostModel::default(),
    );
    group.bench_function("flattened_coalesced_reordered_flatmap", |b| {
        b.iter(&optimized)
    });
    group.finish();
}

criterion_group!(benches, bench_codesign);
criterion_main!(benches);
