//! A storage node: one simulated disk plus its resident blocks and
//! telemetry.

use crate::block::BlockId;
use bytes::Bytes;
use dsi_types::{DsiError, Result};
use hwsim::{DeviceStats, DiskModel, IoRequest};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cumulative node telemetry (device stats plus IO size distribution).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeStats {
    /// Underlying device statistics.
    pub device: DeviceStats,
    /// Every served IO size in bytes (for distribution analysis, Table VI).
    pub io_sizes: Vec<u64>,
}

impl NodeStats {
    /// Total bytes served.
    pub fn bytes(&self) -> u64 {
        self.device.bytes
    }
}

/// One storage node holding replicated blocks on a simulated disk.
#[derive(Debug)]
pub struct StorageNode {
    disk: DiskModel,
    blocks: HashMap<BlockId, (u64, Bytes)>,
    next_offset: u64,
    io_sizes: Vec<u64>,
    record_io_sizes: bool,
}

impl StorageNode {
    /// Creates a node over the given disk model.
    pub fn new(disk: DiskModel) -> Self {
        Self {
            disk,
            blocks: HashMap::new(),
            next_offset: 0,
            io_sizes: Vec::new(),
            record_io_sizes: false,
        }
    }

    /// Enables per-IO size recording (used by the Table VI experiment).
    pub fn set_record_io_sizes(&mut self, on: bool) {
        self.record_io_sizes = on;
    }

    /// Stores a block replica (append-only: sequential placement on disk).
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::Exhausted`] if the disk is out of capacity.
    pub fn store(&mut self, id: BlockId, data: Bytes) -> Result<()> {
        if self.next_offset + data.len() as u64 > self.disk.capacity().bytes() {
            return Err(DsiError::Exhausted(format!(
                "storage node disk full at {} bytes",
                self.next_offset
            )));
        }
        let offset = self.next_offset;
        self.next_offset += data.len() as u64;
        self.blocks.insert(id, (offset, data));
        Ok(())
    }

    /// Whether this node holds a replica of `id`.
    pub fn holds(&self, id: BlockId) -> bool {
        self.blocks.contains_key(&id)
    }

    /// Number of resident block replicas.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Bytes of resident block data.
    pub fn stored_bytes(&self) -> u64 {
        self.next_offset
    }

    /// Reads `len` bytes at `offset` within block `id`, charging disk time.
    /// Returns the data and the simulated service time in nanoseconds.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::NotFound`] if the block is absent, or
    /// [`DsiError::Corrupt`] if the range exceeds the block.
    pub fn read(&mut self, id: BlockId, offset: u64, len: u64) -> Result<(Bytes, u64)> {
        let (disk_offset, data) = self
            .blocks
            .get(&id)
            .ok_or_else(|| DsiError::not_found(format!("block {id:?}")))?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= data.len() as u64)
            .ok_or_else(|| DsiError::corrupt("read beyond block"))?;
        let slice = data.slice(offset as usize..end as usize);
        let ns = self.disk.serve(IoRequest::new(disk_offset + offset, len));
        if self.record_io_sizes {
            self.io_sizes.push(len);
        }
        Ok((slice, ns))
    }

    /// Reads block bytes without charging the device (cache-served data
    /// whose IO was accounted elsewhere).
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::NotFound`] / [`DsiError::Corrupt`] like
    /// [`StorageNode::read`].
    pub fn peek(&self, id: BlockId, offset: u64, len: u64) -> Result<Bytes> {
        let (_, data) = self
            .blocks
            .get(&id)
            .ok_or_else(|| DsiError::not_found(format!("block {id:?}")))?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= data.len() as u64)
            .ok_or_else(|| DsiError::corrupt("read beyond block"))?;
        Ok(data.slice(offset as usize..end as usize))
    }

    /// Removes a block replica (retention/reaping). The disk space is
    /// reclaimed logically; the append-only offset is not compacted.
    pub fn remove(&mut self, id: BlockId) -> bool {
        self.blocks.remove(&id).is_some()
    }

    /// Length of a resident block.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::NotFound`] if the block is absent.
    pub fn peek_len(&self, id: BlockId) -> Result<u64> {
        self.blocks
            .get(&id)
            .map(|(_, data)| data.len() as u64)
            .ok_or_else(|| DsiError::not_found(format!("block {id:?}")))
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            device: self.disk.stats(),
            io_sizes: self.io_sizes.clone(),
        }
    }

    /// Clears telemetry.
    pub fn reset_stats(&mut self) {
        self.disk.reset_stats();
        self.io_sizes.clear();
    }

    /// The node's disk model (for capacity/power queries).
    pub fn disk(&self) -> &DiskModel {
        &self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_types::ByteSize;
    use hwsim::DeviceKind;

    fn node() -> StorageNode {
        StorageNode::new(DiskModel::hdd())
    }

    #[test]
    fn store_and_read_round_trip() {
        let mut n = node();
        let id = BlockId::new("f", 0);
        n.store(id, Bytes::from(vec![9u8; 1000])).unwrap();
        let (data, ns) = n.read(id, 100, 50).unwrap();
        assert_eq!(data.as_ref(), &[9u8; 50][..]);
        assert!(ns > 0);
        assert!(n.holds(id));
        assert_eq!(n.block_count(), 1);
        assert_eq!(n.stored_bytes(), 1000);
    }

    #[test]
    fn missing_block_is_not_found() {
        let mut n = node();
        assert!(matches!(
            n.read(BlockId::new("f", 0), 0, 1),
            Err(DsiError::NotFound(_))
        ));
    }

    #[test]
    fn read_beyond_block_is_corrupt() {
        let mut n = node();
        let id = BlockId::new("f", 0);
        n.store(id, Bytes::from(vec![0u8; 10])).unwrap();
        assert!(n.read(id, 5, 10).is_err());
        assert!(n.read(id, u64::MAX, 1).is_err());
    }

    #[test]
    fn capacity_enforced() {
        let small = DiskModel::custom(
            DeviceKind::Hdd,
            ByteSize(100),
            1000,
            0,
            1_000_000,
            5.0,
            100.0,
        );
        let mut n = StorageNode::new(small);
        assert!(n
            .store(BlockId::new("f", 0), Bytes::from(vec![0u8; 60]))
            .is_ok());
        assert!(n
            .store(BlockId::new("f", 1), Bytes::from(vec![0u8; 60]))
            .is_err());
    }

    #[test]
    fn io_sizes_recorded_when_enabled() {
        let mut n = node();
        let id = BlockId::new("f", 0);
        n.store(id, Bytes::from(vec![0u8; 1000])).unwrap();
        n.read(id, 0, 10).unwrap();
        assert!(n.stats().io_sizes.is_empty());
        n.set_record_io_sizes(true);
        n.read(id, 0, 10).unwrap();
        n.read(id, 20, 30).unwrap();
        assert_eq!(n.stats().io_sizes, vec![10, 30]);
        n.reset_stats();
        assert!(n.stats().io_sizes.is_empty());
        assert_eq!(n.stats().device.ios, 0);
    }
}
