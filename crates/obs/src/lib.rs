//! # dsi-obs — unified observability for the DSI pipeline
//!
//! One registry, three primitives, zero locks on the hot path. Every
//! component of the pipeline — Scribe bus and streaming ETL, the DWRF
//! reader, the Tectonic storage nodes and SSD cache, the DPP
//! master/workers/clients, and the trainer — emits into a shared
//! [`Registry`], which can then be scraped as Prometheus text
//! ([`prometheus_text`]), dumped as JSON ([`json_snapshot`]), or folded
//! into the paper-style characterization tables of [`PipelineReport`].
//!
//! ```
//! use dsi_obs::{Registry, StageScope, stage, PipelineReport};
//!
//! let reg = Registry::new();
//! {
//!     let scope = StageScope::enter(&reg, stage::EXTRACT);
//!     scope.add_cycles(1_000);
//! }
//! reg.counter("dsi_cache_hits_total", &[]).add(42);
//! println!("{}", dsi_obs::prometheus_text(&reg));
//! println!("{}", PipelineReport::collect(&reg));
//! ```
//!
//! Components accept a `Registry` handle (cheap `Arc` clone) so tests
//! can isolate their metrics; processes that want one shared sink use
//! [`global()`].

pub mod expo;
pub mod metrics;
pub mod names;
pub mod registry;
pub mod report;
pub mod signal;
pub mod span;
pub mod trace;

pub use expo::{json_snapshot, prometheus_text};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{Metric, MetricKey, MetricValue, Registry};
pub use report::{NodeRow, PipelineReport, StageRow};
pub use signal::{finite_or_zero, SignalSnapshot};
pub use span::{
    add_stage_cycles, observe_stage_seconds, stage, SpanTimer, StageScope, STAGE_CYCLES_TOTAL,
    STAGE_SECONDS,
};
pub use trace::{next_span_id, now_ns, SpanKind, SpanRing, TraceContext, TraceSpan, FLAG_REPLAY};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. First call creates it; clones share state.
pub fn global() -> Registry {
    GLOBAL.get_or_init(Registry::new).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        let a = global();
        let b = global();
        a.counter("dsi_test_global_total", &[]).add(3);
        assert_eq!(b.counter_value("dsi_test_global_total", &[]), 3);
    }
}
