//! Calibrated profiles for the three production recommendation models.
//!
//! Every number here is taken from the paper's tables:
//!
//! * Table III — compressed partition sizes (all / each / used, PB);
//! * Table IV — features required by a release-candidate model version;
//! * Table V — features logged in the dataset, sparse coverage and length,
//!   and the fraction of features/bytes an individual job reads;
//! * Table VIII — per-trainer-node GPU ingestion demand (GB/s);
//! * Table IX — DPP Worker saturation throughput on a C-v1 node.

use dsi_types::{ByteSize, FeatureDef, FeatureId, Schema, PIB};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which production model a profile describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RmClass {
    /// RM1: largest feature demand, memory-bandwidth/CPU-bound preprocessing.
    Rm1,
    /// RM2: network-bound preprocessing.
    Rm2,
    /// RM3: high QPS, memory-capacity-bound preprocessing.
    Rm3,
}

impl fmt::Display for RmClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmClass::Rm1 => f.write_str("RM1"),
            RmClass::Rm2 => f.write_str("RM2"),
            RmClass::Rm3 => f.write_str("RM3"),
        }
    }
}

/// Calibrated characteristics of one production model and its dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmProfile {
    /// Model class.
    pub class: RmClass,
    // ----- Table V: dataset (logged) characteristics -----
    /// Float (dense) features logged in the table.
    pub dataset_float_features: u32,
    /// Sparse features logged in the table.
    pub dataset_sparse_features: u32,
    /// Mean coverage of sparse features (fraction of samples present).
    pub sparse_coverage: f64,
    /// Mean sparse list length.
    pub sparse_avg_len: f64,
    /// Fraction of stored features an individual job reads.
    pub feats_used_fraction: f64,
    /// Fraction of stored bytes an individual job reads.
    pub bytes_used_fraction: f64,
    // ----- Table IV: model feature demand -----
    /// Dense features required by a release-candidate model.
    pub model_dense_features: u32,
    /// Sparse features required by a release-candidate model.
    pub model_sparse_features: u32,
    /// Derived features computed by online preprocessing.
    pub model_derived_features: u32,
    // ----- Table III: partition sizes (compressed) -----
    /// All table partitions.
    pub all_partitions: ByteSize,
    /// One partition (per day).
    pub each_partition: ByteSize,
    /// Partitions used by a representative release-candidate job.
    pub used_partitions: ByteSize,
    // ----- Table VIII -----
    /// Per-trainer-node GPU ingestion demand in bytes/second.
    pub trainer_node_demand: f64,
    // ----- Table IX: DPP Worker saturation on C-v1 -----
    /// Worker throughput in samples (queries) per second.
    pub worker_kqps: f64,
    /// Compressed bytes/second read from storage at saturation.
    pub worker_storage_rx: f64,
    /// Uncompressed bytes/second entering transform at saturation.
    pub worker_transform_rx: f64,
    /// Tensor bytes/second leaving the worker at saturation.
    pub worker_transform_tx: f64,
    /// Workers required per trainer node (Table IX, derived).
    pub workers_per_trainer: f64,
    // ----- Fig. 7 calibration -----
    /// Fraction of dataset bytes every job reads (the shared core).
    pub core_byte_fraction: f64,
    /// Additional byte fraction each job samples from the popularity tail.
    pub tail_byte_fraction: f64,
    /// Fraction of bytes that absorb 80% of traffic (Fig. 7 report point).
    pub popular_bytes_for_80pct_traffic: f64,
}

impl RmProfile {
    /// The RM1 profile.
    pub fn rm1() -> Self {
        Self {
            class: RmClass::Rm1,
            dataset_float_features: 12_115,
            dataset_sparse_features: 1_763,
            sparse_coverage: 0.45,
            sparse_avg_len: 25.97,
            feats_used_fraction: 0.11,
            bytes_used_fraction: 0.37,
            model_dense_features: 1_221,
            model_sparse_features: 298,
            model_derived_features: 304,
            all_partitions: ByteSize((13.45 * PIB as f64) as u64),
            each_partition: ByteSize((0.15 * PIB as f64) as u64),
            used_partitions: ByteSize((11.95 * PIB as f64) as u64),
            trainer_node_demand: 16.50e9,
            worker_kqps: 11.623,
            worker_storage_rx: 0.8e9,
            worker_transform_rx: 1.37e9,
            worker_transform_tx: 0.68e9,
            workers_per_trainer: 24.16,
            core_byte_fraction: 0.25,
            tail_byte_fraction: 0.12,
            popular_bytes_for_80pct_traffic: 0.39,
        }
    }

    /// The RM2 profile.
    pub fn rm2() -> Self {
        Self {
            class: RmClass::Rm2,
            dataset_float_features: 12_596,
            dataset_sparse_features: 1_817,
            sparse_coverage: 0.41,
            sparse_avg_len: 25.57,
            feats_used_fraction: 0.10,
            bytes_used_fraction: 0.34,
            model_dense_features: 1_113,
            model_sparse_features: 306,
            model_derived_features: 317,
            all_partitions: ByteSize((29.18 * PIB as f64) as u64),
            each_partition: ByteSize((0.32 * PIB as f64) as u64),
            used_partitions: ByteSize((25.94 * PIB as f64) as u64),
            trainer_node_demand: 4.69e9,
            worker_kqps: 7.995,
            worker_storage_rx: 1.2e9,
            worker_transform_rx: 0.96e9,
            worker_transform_tx: 0.50e9,
            workers_per_trainer: 9.44,
            core_byte_fraction: 0.22,
            tail_byte_fraction: 0.12,
            popular_bytes_for_80pct_traffic: 0.37,
        }
    }

    /// The RM3 profile.
    pub fn rm3() -> Self {
        Self {
            class: RmClass::Rm3,
            dataset_float_features: 5_707,
            dataset_sparse_features: 188,
            sparse_coverage: 0.29,
            sparse_avg_len: 19.64,
            feats_used_fraction: 0.09,
            bytes_used_fraction: 0.21,
            model_dense_features: 504,
            model_sparse_features: 42,
            model_derived_features: 1,
            all_partitions: ByteSize((2.93 * PIB as f64) as u64),
            each_partition: ByteSize((0.07 * PIB as f64) as u64),
            used_partitions: ByteSize((1.95 * PIB as f64) as u64),
            trainer_node_demand: 12.00e9,
            worker_kqps: 36.921,
            worker_storage_rx: 0.8e9,
            worker_transform_rx: 1.01e9,
            worker_transform_tx: 0.22e9,
            workers_per_trainer: 55.22,
            core_byte_fraction: 0.20,
            tail_byte_fraction: 0.015,
            popular_bytes_for_80pct_traffic: 0.18,
        }
    }

    /// All three profiles.
    pub fn all() -> Vec<RmProfile> {
        vec![Self::rm1(), Self::rm2(), Self::rm3()]
    }

    /// The profile for a class.
    pub fn of(class: RmClass) -> Self {
        match class {
            RmClass::Rm1 => Self::rm1(),
            RmClass::Rm2 => Self::rm2(),
            RmClass::Rm3 => Self::rm3(),
        }
    }

    /// Total features logged in the dataset.
    pub fn dataset_total_features(&self) -> u32 {
        self.dataset_float_features + self.dataset_sparse_features
    }

    /// Fraction of logged features that are sparse.
    pub fn sparse_feature_fraction(&self) -> f64 {
        self.dataset_sparse_features as f64 / self.dataset_total_features() as f64
    }

    /// Number of partitions in the table (all / each).
    pub fn partition_count(&self) -> u32 {
        (self.all_partitions.bytes() as f64 / self.each_partition.bytes() as f64).round() as u32
    }

    /// Number of partitions a representative job reads.
    pub fn used_partition_count(&self) -> u32 {
        (self.used_partitions.bytes() as f64 / self.each_partition.bytes() as f64).round() as u32
    }

    /// Builds a scaled-down schema with `total_features` features whose
    /// sparse fraction, coverage, and lengths follow this profile.
    ///
    /// Feature ids are assigned `0..total_features`; sparse features get
    /// ids interleaved deterministically so projections exercise both kinds.
    ///
    /// # Panics
    ///
    /// Panics if `total_features == 0`.
    pub fn build_schema(&self, total_features: u32) -> Schema {
        assert!(total_features > 0, "schema needs at least one feature");
        let sparse_every = (1.0 / self.sparse_feature_fraction()).round().max(1.0) as u32;
        let mut schema = Schema::new();
        let mut rng = dsi_types::rng::SplitMix64::new(0x5ca1e ^ self.dataset_float_features as u64);
        for i in 0..total_features {
            let id = FeatureId(i as u64);
            if i % sparse_every == sparse_every - 1 {
                // Sparse: lengths disperse log-normally around the profile
                // mean (the fleet holds both single-id flags and very long
                // engagement histories), coverage around the profile mean.
                let len = rng
                    .next_lognormal(self.sparse_avg_len * 0.75, 0.9)
                    .clamp(1.0, self.sparse_avg_len * 12.0);
                let cov = (self.sparse_coverage * (0.6 + 0.8 * rng.next_f64())).clamp(0.05, 1.0);
                schema.add(FeatureDef::sparse(id, len).with_coverage(cov));
            } else {
                // Most dense features are always present; a minority are
                // sparsely logged (small stored streams).
                let cov = if rng.chance(0.6) {
                    1.0
                } else {
                    0.1 + 0.9 * rng.next_f64()
                };
                schema.add(FeatureDef::dense(id).with_coverage(cov));
            }
        }
        schema
    }

    /// Fraction of logged dense features a model version reads
    /// (Table IV over Table V).
    pub fn dense_use_fraction(&self) -> f64 {
        self.model_dense_features as f64 / self.dataset_float_features as f64
    }

    /// Network amplification: bytes read from storage per tensor byte
    /// shipped (Table IX discussion: 1.18–3.64× more bandwidth to extract
    /// than to load).
    pub fn extract_to_load_ratio(&self) -> f64 {
        self.worker_storage_rx.max(self.worker_transform_rx) / self.worker_transform_tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_partition_counts_are_consistent() {
        for p in RmProfile::all() {
            let n = p.partition_count();
            assert!((40..=100).contains(&n), "{}: {n} partitions", p.class);
            assert!(p.used_partition_count() <= n);
        }
    }

    #[test]
    fn table_v_fractions_bound_table_iv_counts() {
        for p in RmProfile::all() {
            let used = (p.model_dense_features + p.model_sparse_features) as f64;
            let logged = p.dataset_total_features() as f64;
            let frac = used / logged;
            // Tables IV/V: jobs read ~9-11% of logged features.
            assert!(
                (0.05..=0.15).contains(&frac),
                "{}: used fraction {frac:.3}",
                p.class
            );
        }
    }

    #[test]
    fn trainer_demand_spans_over_3x() {
        let demands: Vec<f64> = RmProfile::all()
            .iter()
            .map(|p| p.trainer_node_demand)
            .collect();
        let max = demands.iter().cloned().fold(f64::MIN, f64::max);
        let min = demands.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 3.0);
    }

    #[test]
    fn extract_to_load_ratio_in_paper_band() {
        for p in RmProfile::all() {
            let r = p.extract_to_load_ratio();
            assert!(
                (1.18..=4.7).contains(&r),
                "{}: extract/load {r:.2}",
                p.class
            );
        }
    }

    #[test]
    fn schema_matches_profile_shape() {
        let p = RmProfile::rm1();
        let schema = p.build_schema(1000);
        assert_eq!(schema.len(), 1000);
        let sparse_frac = schema.sparse_count() as f64 / schema.len() as f64;
        assert!(
            (sparse_frac - p.sparse_feature_fraction()).abs() < 0.05,
            "sparse fraction {sparse_frac:.3}"
        );
        // Mean sparse length near the profile mean (log-normal dispersion
        // allows a wider band), with real spread across features.
        let lens: Vec<f64> = schema
            .iter()
            .filter(|d| d.kind.is_sparse())
            .map(|d| d.avg_len)
            .collect();
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        assert!(
            (mean - p.sparse_avg_len).abs() / p.sparse_avg_len < 0.5,
            "mean sparse length {mean:.1} vs profile {:.1}",
            p.sparse_avg_len
        );
        let max = lens.iter().cloned().fold(0.0, f64::max);
        let min = lens.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min > 5.0,
            "lengths should disperse: {min:.1}..{max:.1}"
        );
    }

    #[test]
    fn sparse_features_dominate_bytes() {
        // >99% of stored bytes are features, and sparse features carry most
        // of them despite being a minority by count.
        let schema = RmProfile::rm1().build_schema(2000);
        let sparse_bytes: f64 = schema
            .iter()
            .filter(|d| d.kind.is_sparse())
            .map(|d| d.expected_bytes_per_row())
            .sum();
        let total = schema.expected_bytes_per_row();
        assert!(
            sparse_bytes / total > 0.7,
            "sparse byte share {:.2}",
            sparse_bytes / total
        );
    }

    #[test]
    fn profiles_differ() {
        assert_ne!(RmProfile::rm1(), RmProfile::rm2());
        assert_eq!(RmProfile::of(RmClass::Rm3).class, RmClass::Rm3);
    }
}
