//! Mini-batches and materialized tensors.
//!
//! The load phase of online preprocessing batches transformed samples into
//! tensors laid out the way the trainer consumes them: a dense matrix
//! (`batch × features`) and, per sparse feature, a CSR-style
//! (offsets, values) pair — the *flatmap* layout the paper's co-design work
//! adopted to cut format conversions and memory-bandwidth demand.

use crate::feature::SparseList;
use crate::id::FeatureId;
use crate::sample::Sample;
use serde::{Deserialize, Serialize};

/// An ordered collection of samples awaiting batching.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Batch {
    samples: Vec<Sample>,
}

impl Batch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch from samples.
    pub fn from_samples(samples: Vec<Sample>) -> Self {
        Self { samples }
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// The samples in insertion order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Mutable access to the samples (transform phase operates in place).
    pub fn samples_mut(&mut self) -> &mut [Sample] {
        &mut self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Consumes the batch, returning its samples.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }

    /// Total payload bytes across all samples.
    pub fn payload_bytes(&self) -> usize {
        self.samples.iter().map(Sample::payload_bytes).sum()
    }

    /// Materializes the batch into trainer-ready tensors.
    ///
    /// `dense_ids` and `sparse_ids` fix the column order; a sample missing a
    /// dense feature contributes `0.0`, and a missing sparse feature
    /// contributes an empty list (standard DLRM semantics for absent
    /// features).
    pub fn materialize(
        &self,
        dense_ids: &[FeatureId],
        sparse_ids: &[FeatureId],
    ) -> MiniBatchTensor {
        self.materialize_capped(dense_ids, sparse_ids, &[])
    }

    /// [`Batch::materialize`] with per-feature row caps: sparse feature
    /// `sparse_ids[i]` copies at most `caps[i]` values per row into the
    /// tensor (`usize::MAX` = uncapped; an empty `caps` slice means no
    /// caps at all). Equivalent to materializing uncapped and then
    /// truncating every row — without ever copying the truncated-away
    /// tail. Columnar execution uses this to hoist `FirstX` ops all the
    /// way into materialization: prefix truncation commutes with the
    /// per-element columnar kernels, so the downstream passes see only
    /// the bytes that survive.
    pub fn materialize_capped(
        &self,
        dense_ids: &[FeatureId],
        sparse_ids: &[FeatureId],
        caps: &[usize],
    ) -> MiniBatchTensor {
        assert!(
            caps.is_empty() || caps.len() == sparse_ids.len(),
            "caps must align with sparse_ids"
        );
        let rows = self.samples.len();
        // Sorted (feature, slot) indexes: the samples' feature maps iterate
        // in id order, so each row is one sequential merge-join instead of
        // one tree descent per column.
        let mut dense_cols: Vec<(FeatureId, usize)> =
            dense_ids.iter().enumerate().map(|(c, &f)| (f, c)).collect();
        dense_cols.sort_unstable();
        let mut sparse_slots: Vec<(FeatureId, usize)> = sparse_ids
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i))
            .collect();
        sparse_slots.sort_unstable();

        let mut dense = DenseMatrix::zeros(rows, dense_ids.len());
        let mut sparse: Vec<SparseTensor> =
            sparse_ids.iter().map(|&id| SparseTensor::new(id)).collect();
        let empty = SparseList::new();
        for (r, s) in self.samples.iter().enumerate() {
            let row = dense.row_mut(r);
            let mut cols = dense_cols.iter().peekable();
            for (id, v) in s.dense_iter() {
                while cols.next_if(|&&(f, _)| f < id).is_some() {}
                while let Some(&(_, c)) = cols.next_if(|&&(f, _)| f == id) {
                    row[c] = v;
                }
            }
            let mut slots = sparse_slots.iter().peekable();
            for (id, list) in s.sparse_iter() {
                while let Some(&(_, slot)) = slots.next_if(|&&(f, _)| f < id) {
                    sparse[slot].push_row(&empty);
                }
                while let Some(&(_, slot)) = slots.next_if(|&&(f, _)| f == id) {
                    let cap = caps.get(slot).copied().unwrap_or(usize::MAX);
                    sparse[slot].push_row_capped(list, cap);
                }
            }
            for &(_, slot) in slots {
                sparse[slot].push_row(&empty);
            }
        }
        let labels = self.samples.iter().map(Sample::label).collect();
        MiniBatchTensor {
            dense,
            sparse,
            labels,
        }
    }
}

impl FromIterator<Sample> for Batch {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        Self::from_samples(iter.into_iter().collect())
    }
}

impl Extend<Sample> for Batch {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

/// A row-major `rows × cols` matrix of `f32` dense features.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Writes element `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Reassembles a matrix from a row-major buffer (wire deserialization).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_parts(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major buffer shape mismatch");
        Self { rows, cols, data }
    }

    /// The backing row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of row `r` (materialization fills a whole row per
    /// sample, so one slice borrow replaces per-element index math).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Applies `f` to every element of column `c` in place (columnar
    /// normalization path).
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn map_col_in_place<F: FnMut(f32) -> f32>(&mut self, c: usize, mut f: F) {
        assert!(c < self.cols, "column out of bounds");
        for r in 0..self.rows {
            let i = r * self.cols + c;
            self.data[i] = f(self.data[i]);
        }
    }

    /// Applies `f` to column `c` only in rows where `rows[r]` is true
    /// (masked columnar path: the row path skips samples missing a dense
    /// feature, whose materialized zeros must stay untouched). Rows beyond
    /// `rows.len()` are left unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn map_col_rows_in_place<F: FnMut(f32) -> f32>(
        &mut self,
        c: usize,
        rows: &[bool],
        mut f: F,
    ) {
        assert!(c < self.cols, "column out of bounds");
        for (r, &wanted) in rows.iter().enumerate().take(self.rows) {
            if wanted {
                let i = r * self.cols + c;
                self.data[i] = f(self.data[i]);
            }
        }
    }
}

/// CSR-style tensor for one sparse feature across a mini-batch.
///
/// `offsets` has `rows + 1` entries; row `r`'s values occupy
/// `values[offsets[r]..offsets[r + 1]]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseTensor {
    feature: FeatureId,
    offsets: Vec<u32>,
    values: Vec<u64>,
    scores: Vec<f32>,
    scored: bool,
}

impl SparseTensor {
    /// Creates an empty tensor for the given feature.
    pub fn new(feature: FeatureId) -> Self {
        Self {
            feature,
            offsets: vec![0],
            values: Vec::new(),
            scores: Vec::new(),
            scored: false,
        }
    }

    /// The feature this tensor holds.
    pub fn feature(&self) -> FeatureId {
        self.feature
    }

    /// Reassembles a tensor from its CSR parts (wire deserialization).
    /// `scores` of `None` rebuilds an unscored tensor; `Some(scores)` must
    /// be value-aligned. The round trip through
    /// [`SparseTensor::offsets`]/[`SparseTensor::values`]/[`SparseTensor::scores`]
    /// is bitwise exact.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty, does not start at 0, is not monotone,
    /// does not end at `values.len()`, or if scores are misaligned.
    pub fn from_parts(
        feature: FeatureId,
        offsets: Vec<u32>,
        values: Vec<u64>,
        scores: Option<Vec<f32>>,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must have rows + 1 entries");
        assert_eq!(offsets[0], 0, "offsets must start at zero");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert_eq!(
            *offsets.last().unwrap() as usize,
            values.len(),
            "offsets must end at nnz"
        );
        let (scores, scored) = match scores {
            Some(s) => {
                assert_eq!(s.len(), values.len(), "scores must align with values");
                (s, true)
            }
            None => (Vec::new(), false),
        };
        Self {
            feature,
            offsets,
            values,
            scores,
            scored,
        }
    }

    /// Appends one sample's list as the next row.
    pub fn push_row(&mut self, list: &SparseList) {
        self.push_row_capped(list, usize::MAX);
    }

    /// [`SparseTensor::push_row`] keeping at most `cap` values — exactly
    /// equivalent to pushing `list.truncate(cap)` (including the canonical
    /// form: a row truncated to empty carries no scores) without cloning
    /// the list.
    pub fn push_row_capped(&mut self, list: &SparseList, cap: usize) {
        let keep = list.len().min(cap);
        if keep > 0 && list.scores().is_some() && !self.scored {
            // First scored row after unscored ones: backfill unit scores
            // for every value already pushed so scores stay value-aligned.
            self.scored = true;
            self.scores.resize(self.values.len(), 1.0);
        }
        self.values.extend_from_slice(&list.ids()[..keep]);
        match list.scores() {
            Some(scores) if keep > 0 => self.scores.extend_from_slice(&scores[..keep]),
            _ => {
                if self.scored {
                    // Keep scores aligned when a mix of scored/unscored
                    // rows appears.
                    self.scores.resize(self.values.len(), 1.0);
                }
            }
        }
        self.offsets.push(self.values.len() as u32);
    }

    /// Number of rows (samples).
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of categorical values across all rows.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row offsets (length `rows + 1`).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The concatenated categorical values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The concatenated scores, if any row carried scores.
    pub fn scores(&self) -> Option<&[f32]> {
        if self.scored {
            Some(&self.scores)
        } else {
            None
        }
    }

    /// Values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[u64] {
        let start = self.offsets[r] as usize;
        let end = self.offsets[r + 1] as usize;
        &self.values[start..end]
    }

    /// Payload size in bytes (offsets + values + scores).
    pub fn payload_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.values.len() * 8 + self.scores.len() * 4
    }

    /// Applies `f` to every categorical value in place (columnar
    /// normalization path — one pass over the flat buffer).
    pub fn map_values_in_place<F: FnMut(u64) -> u64>(&mut self, mut f: F) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Truncates every row to at most `x` values (columnar `FirstX`),
    /// rebuilding offsets and compacting values/scores in one pass.
    pub fn truncate_rows(&mut self, x: usize) {
        if self.values.is_empty() {
            // Canonical form: an empty tensor carries no scores.
            self.scored = false;
            self.scores.clear();
            return;
        }
        // Already within the cap everywhere (common when materialization
        // pre-capped the column): skip the rebuild entirely.
        if self.offsets.windows(2).all(|w| (w[1] - w[0]) as usize <= x) {
            return;
        }
        let rows = self.rows();
        let mut new_values = Vec::with_capacity(self.values.len().min(rows * x));
        let mut new_scores = Vec::new();
        let mut new_offsets = Vec::with_capacity(rows + 1);
        new_offsets.push(0u32);
        for r in 0..rows {
            let start = self.offsets[r] as usize;
            let end = self.offsets[r + 1] as usize;
            let keep = (end - start).min(x);
            new_values.extend_from_slice(&self.values[start..start + keep]);
            if self.scored {
                new_scores.extend_from_slice(&self.scores[start..start + keep]);
            }
            new_offsets.push(new_values.len() as u32);
        }
        self.values = new_values;
        self.scores = new_scores;
        self.offsets = new_offsets;
        // Canonical form: an empty list carries no scores, so a column whose
        // every row truncated away must come out unscored — exactly what the
        // row path produces via `SparseList::truncate`.
        if self.values.is_empty() {
            self.scored = false;
            self.scores.clear();
        }
    }

    /// Applies `f` to every score in place (columnar `ComputeScore`); no-op
    /// for unscored tensors.
    pub fn map_scores_in_place<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.scores {
            *v = f(*v);
        }
    }

    /// Applies `f` to the scores of rows where `rows[r]` is true (masked
    /// columnar `ComputeScore`: the row path skips unscored samples, whose
    /// materialized scores are unit backfills that must stay untouched).
    /// Rows beyond `rows.len()` are left unchanged; no-op for unscored
    /// tensors.
    pub fn map_scores_rows_in_place<F: FnMut(f32) -> f32>(&mut self, rows: &[bool], mut f: F) {
        if !self.scored {
            return;
        }
        let n = self.rows();
        for (r, &wanted) in rows.iter().enumerate().take(n) {
            if !wanted {
                continue;
            }
            let start = self.offsets[r] as usize;
            let end = self.offsets[r + 1] as usize;
            for v in &mut self.scores[start..end] {
                *v = f(*v);
            }
        }
    }
}

/// A fully-materialized mini-batch ready to be loaded into trainer memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiniBatchTensor {
    /// Dense features, `batch × dense_features`.
    pub dense: DenseMatrix,
    /// One CSR tensor per sparse feature.
    pub sparse: Vec<SparseTensor>,
    /// Per-sample labels.
    pub labels: Vec<f32>,
}

impl MiniBatchTensor {
    /// Batch size (number of samples).
    pub fn batch_size(&self) -> usize {
        self.labels.len()
    }

    /// Total payload bytes across dense, sparse, and label tensors — the
    /// volume the DPP Worker ships to the trainer.
    pub fn payload_bytes(&self) -> usize {
        self.dense.payload_bytes()
            + self
                .sparse
                .iter()
                .map(SparseTensor::payload_bytes)
                .sum::<usize>()
            + self.labels.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_batch() -> Batch {
        let mut b = Batch::new();
        for i in 0..3 {
            let mut s = Sample::new(i as f32);
            s.set_dense(FeatureId(1), i as f32 * 0.1);
            if i != 1 {
                s.set_sparse(FeatureId(5), SparseList::from_ids(vec![i, i + 10]));
            }
            b.push(s);
        }
        b
    }

    #[test]
    fn materialize_shapes_and_defaults() {
        let b = make_batch();
        let t = b.materialize(&[FeatureId(1), FeatureId(2)], &[FeatureId(5)]);
        assert_eq!(t.batch_size(), 3);
        assert_eq!(t.dense.rows(), 3);
        assert_eq!(t.dense.cols(), 2);
        // Missing dense feature defaults to 0.
        assert_eq!(t.dense.get(0, 1), 0.0);
        assert!((t.dense.get(2, 0) - 0.2).abs() < 1e-6);
        // Missing sparse row is empty.
        let st = &t.sparse[0];
        assert_eq!(st.rows(), 3);
        assert_eq!(st.row(0), &[0, 10]);
        assert_eq!(st.row(1), &[] as &[u64]);
        assert_eq!(st.row(2), &[2, 12]);
        assert_eq!(st.nnz(), 4);
    }

    #[test]
    fn sparse_tensor_offsets_are_monotone() {
        let b = make_batch();
        let t = b.materialize(&[], &[FeatureId(5)]);
        let offs = t.sparse[0].offsets();
        assert_eq!(offs.len(), 4);
        assert!(offs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*offs.last().unwrap() as usize, t.sparse[0].nnz());
    }

    #[test]
    fn mixed_scored_rows_backfill_unit_scores() {
        let mut t = SparseTensor::new(FeatureId(9));
        t.push_row(&SparseList::from_scored(vec![1], vec![2.0]));
        t.push_row(&SparseList::from_ids(vec![3, 4]));
        assert_eq!(t.scores().unwrap(), &[2.0, 1.0, 1.0]);
    }

    #[test]
    fn payload_bytes_nonzero_for_materialized_batch() {
        let b = make_batch();
        let t = b.materialize(&[FeatureId(1)], &[FeatureId(5)]);
        // dense 3*1*4 + sparse (4*4 + 4*8) + labels 3*4
        assert_eq!(t.payload_bytes(), 12 + 16 + 32 + 12);
    }

    #[test]
    fn batch_collects_and_extends() {
        let samples = vec![Sample::new(0.0), Sample::new(1.0)];
        let mut b: Batch = samples.into_iter().collect();
        assert_eq!(b.len(), 2);
        b.extend(vec![Sample::new(2.0)]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn columnar_mutators() {
        let mut t = SparseTensor::new(FeatureId(1));
        t.push_row(&SparseList::from_ids(vec![1, 2, 3, 4]));
        t.push_row(&SparseList::from_ids(vec![5]));
        t.push_row(&SparseList::from_ids(vec![6, 7, 8]));
        t.map_values_in_place(|v| v * 10);
        assert_eq!(t.row(0), &[10, 20, 30, 40]);
        t.truncate_rows(2);
        assert_eq!(t.row(0), &[10, 20]);
        assert_eq!(t.row(1), &[50]);
        assert_eq!(t.row(2), &[60, 70]);
        assert_eq!(t.nnz(), 5);

        let mut m = DenseMatrix::zeros(2, 3);
        m.set(0, 1, 2.0);
        m.set(1, 1, 4.0);
        m.map_col_in_place(1, |v| v + 1.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.get(0, 0), 0.0); // other columns untouched
    }

    #[test]
    fn truncate_rows_keeps_scores_aligned() {
        let mut t = SparseTensor::new(FeatureId(1));
        t.push_row(&SparseList::from_scored(vec![1, 2, 3], vec![0.1, 0.2, 0.3]));
        t.push_row(&SparseList::from_scored(vec![4], vec![0.4]));
        t.truncate_rows(2);
        assert_eq!(t.values(), &[1, 2, 4]);
        assert_eq!(t.scores().unwrap(), &[0.1, 0.2, 0.4]);
        t.map_scores_in_place(|s| s * 10.0);
        assert!((t.scores().unwrap()[2] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn truncate_rows_to_empty_drops_scored_flag() {
        // Mirrors `SparseList`'s canonical form: once every row truncates
        // away, the column must look exactly like an unscored empty tensor
        // (what the row path produces via per-list `truncate`).
        let mut t = SparseTensor::new(FeatureId(1));
        t.push_row(&SparseList::from_scored(vec![1, 2], vec![0.1, 0.2]));
        t.push_row(&SparseList::from_scored(vec![3], vec![0.3]));
        t.truncate_rows(0);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.nnz(), 0);
        assert!(t.scores().is_none());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn dense_matrix_bounds_checked() {
        let m = DenseMatrix::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    fn from_parts_round_trips_bitwise() {
        let b = make_batch();
        let t = b.materialize(&[FeatureId(1)], &[FeatureId(5)]);
        let dense =
            DenseMatrix::from_parts(t.dense.rows(), t.dense.cols(), t.dense.as_slice().to_vec());
        assert_eq!(dense, t.dense);
        let st = &t.sparse[0];
        let rebuilt = SparseTensor::from_parts(
            st.feature(),
            st.offsets().to_vec(),
            st.values().to_vec(),
            st.scores().map(|s| s.to_vec()),
        );
        assert_eq!(&rebuilt, st);

        // Scored tensors round-trip with the scored flag preserved.
        let mut scored = SparseTensor::new(FeatureId(9));
        scored.push_row(&SparseList::from_scored(vec![1], vec![2.0]));
        scored.push_row(&SparseList::from_ids(vec![3, 4]));
        let rebuilt = SparseTensor::from_parts(
            scored.feature(),
            scored.offsets().to_vec(),
            scored.values().to_vec(),
            scored.scores().map(|s| s.to_vec()),
        );
        assert_eq!(rebuilt, scored);
    }

    #[test]
    #[should_panic(expected = "offsets must end at nnz")]
    fn from_parts_rejects_truncated_values() {
        let _ = SparseTensor::from_parts(FeatureId(1), vec![0, 2], vec![7], None);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn dense_from_parts_rejects_bad_shape() {
        let _ = DenseMatrix::from_parts(2, 2, vec![0.0; 3]);
    }
}
