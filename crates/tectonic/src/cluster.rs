//! The Tectonic name node and client API.
//!
//! [`TectonicCluster`] is a cheaply-cloneable handle (shared state behind
//! locks) so DPP Workers on many threads can read concurrently. Appends
//! split data into blocks, fan R replicas out by rendezvous hashing over
//! the live nodes, and record each chunk in the [`ChunkDirectory`] with its
//! whole-chunk checksum. Reads pick a replica round-robin, verify per-page
//! checksums on the serving node, and transparently fail over to a
//! surviving replica on corruption — repairing the bad copy in place.
//! Node loss is detected by the heartbeat detector after K missed beats
//! and healed by draining the priority rebuild queue under an IOPS budget
//! ([`TectonicCluster::pump_rebuild`]), so rebuild traffic contends with
//! foreground reads on the same simulated disks and clock.

use crate::block::{
    chunk_checksum, place_replicas_among, BlockId, DEFAULT_BLOCK_SIZE, REPLICATION_FACTOR,
};
use crate::directory::{ChunkDirectory, ChunkInfo};
use crate::heal::{HeartbeatDetector, RebuildProgress, RebuildQueue};
use crate::node::{NodeStats, StorageNode};
use bytes::Bytes;
use chaos::{FaultInjector, FaultKind, HookPoint};
use dsi_types::{DsiError, NodeId, Result};
use fastpath::{ByteView, SourceChunk};
use hwsim::{DeviceStats, DiskModel, SimClock};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cluster construction parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of storage nodes.
    pub nodes: usize,
    /// Block size in bytes.
    pub block_size: u64,
    /// Replicas per block.
    pub replication: usize,
    /// Whether nodes use HDDs (`true`) or SSDs (`false`).
    pub hdd: bool,
}

impl ClusterConfig {
    /// A small test cluster: 8 HDD nodes, 1 MiB blocks, R3.
    pub fn small() -> Self {
        Self {
            nodes: 8,
            block_size: 1024 * 1024,
            replication: REPLICATION_FACTOR,
            hdd: true,
        }
    }

    /// A production-flavored cluster: `nodes` HDD nodes, 8 MiB blocks, R3.
    pub fn production(nodes: usize) -> Self {
        Self {
            nodes,
            block_size: DEFAULT_BLOCK_SIZE,
            replication: REPLICATION_FACTOR,
            hdd: true,
        }
    }

    /// Same shape but SSD-backed.
    pub fn ssd(mut self) -> Self {
        self.hdd = false;
        self
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// Name-node metadata for one file (reconstructed from the chunk
/// directory, which is the authoritative replica map).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Total file length in bytes.
    pub len: u64,
    /// Replica locations per block (block `i` lives on `blocks[i]`).
    pub blocks: Vec<Vec<NodeId>>,
}

/// Snapshot of the cluster's durability machinery: monotonic counters for
/// the verified-read/failover/repair path plus the current degradation
/// state (dead nodes, under-replicated chunks, rebuild backlog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityCounters {
    /// Per-page checksum verification failures detected on reads.
    pub checksum_failures: u64,
    /// Replicas repaired in place after a verified read found a bad copy.
    pub read_repairs: u64,
    /// Reads served by a non-first-choice replica (node failed or corrupt).
    pub failovers: u64,
    /// Chunks re-replicated by the rebuild worker.
    pub rebuilt_chunks: u64,
    /// Disk IOs charged to rebuild traffic (source reads + target writes).
    pub rebuild_ios: u64,
    /// Nodes currently declared dead by the heartbeat detector.
    pub dead_nodes: u64,
    /// Chunks currently below their target live replica count.
    pub under_replicated: u64,
    /// Chunks currently queued for rebuild.
    pub rebuild_queue_depth: u64,
}

/// Faults drawn for one logical read: an in-flight XOR applied to the
/// served bytes, and/or at-rest corruption planted on the replica the
/// read is about to consult (exercising detect → failover → repair).
#[derive(Debug, Clone, Copy, Default)]
struct ReadChaos {
    xor: Option<u8>,
    at_rest: Option<u8>,
}

struct ClusterInner {
    config: ClusterConfig,
    nodes: Vec<Mutex<StorageNode>>,
    failed: RwLock<HashSet<NodeId>>,
    /// Path → logical file length; replica maps live in `directory`.
    files: RwLock<HashMap<String, u64>>,
    directory: RwLock<ChunkDirectory>,
    detector: Mutex<HeartbeatDetector>,
    rebuild: Mutex<RebuildQueue>,
    replica_cursor: AtomicU64,
    clock: SimClock,
    chaos: RwLock<Option<Arc<FaultInjector>>>,
    checksum_failures: AtomicU64,
    read_repairs: AtomicU64,
    failovers: AtomicU64,
    rebuilt_chunks: AtomicU64,
    rebuild_ios: AtomicU64,
}

/// A handle to a simulated Tectonic cluster.
#[derive(Clone)]
pub struct TectonicCluster {
    inner: Arc<ClusterInner>,
}

impl std::fmt::Debug for TectonicCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TectonicCluster")
            .field("nodes", &self.inner.nodes.len())
            .field("files", &self.inner.files.read().len())
            .finish()
    }
}

impl TectonicCluster {
    /// Builds a cluster per the config.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero nodes, zero block size, or more
    /// replicas than nodes.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.nodes > 0, "cluster needs at least one node");
        assert!(config.block_size > 0, "block size must be positive");
        assert!(
            config.replication >= 1 && config.replication <= config.nodes,
            "replication must be within [1, nodes]"
        );
        let nodes: Vec<Mutex<StorageNode>> = (0..config.nodes)
            .map(|_| {
                Mutex::new(StorageNode::new(if config.hdd {
                    DiskModel::hdd()
                } else {
                    DiskModel::ssd()
                }))
            })
            .collect();
        let node_count = config.nodes;
        Self {
            inner: Arc::new(ClusterInner {
                config,
                nodes,
                failed: RwLock::new(HashSet::new()),
                files: RwLock::new(HashMap::new()),
                directory: RwLock::new(ChunkDirectory::new()),
                detector: Mutex::new(HeartbeatDetector::new(node_count)),
                rebuild: Mutex::new(RebuildQueue::new()),
                replica_cursor: AtomicU64::new(0),
                clock: SimClock::new(),
                chaos: RwLock::new(None),
                checksum_failures: AtomicU64::new(0),
                read_repairs: AtomicU64::new(0),
                failovers: AtomicU64::new(0),
                rebuilt_chunks: AtomicU64::new(0),
                rebuild_ios: AtomicU64::new(0),
            }),
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.inner.config
    }

    /// The shared simulated clock (advanced by IO service time).
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// Number of storage nodes.
    pub fn node_count(&self) -> usize {
        self.inner.nodes.len()
    }

    /// Nodes currently live (not failed).
    fn live_nodes(&self, failed: &HashSet<NodeId>) -> Vec<NodeId> {
        (0..self.inner.nodes.len() as u64)
            .map(NodeId)
            .filter(|n| !failed.contains(n))
            .collect()
    }

    /// Appends a new file (or appends more bytes to an existing one),
    /// splitting it into blocks whose replicas fan out R ways over the
    /// live nodes by rendezvous hashing. With fewer than R live nodes the
    /// write degrades gracefully (all live nodes hold a copy) and the
    /// chunk is queued for rebuild once capacity returns.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::Exhausted`] if a target node is out of space,
    /// or [`DsiError::Unavailable`] if no live node can accept the write.
    pub fn append(&self, path: &str, data: Bytes) -> Result<()> {
        let mut files = self.inner.files.write();
        let mut dir = self.inner.directory.write();
        let len = files.entry(path.to_string()).or_insert(0);
        let bs = self.inner.config.block_size;
        let r = self.inner.config.replication;
        let failed = self.inner.failed.read().clone();
        let live = self.live_nodes(&failed);
        if live.is_empty() {
            return Err(DsiError::Unavailable(
                "no live storage node can accept the write".into(),
            ));
        }
        let mut written = 0u64;
        // Fill the tail block first if the file doesn't end on a boundary.
        // Append-only semantics: we only ever add new blocks; a partial tail
        // block is replaced by a longer one on its replicas.
        while written < data.len() as u64 {
            let block_index = *len / bs;
            let within = *len % bs;
            let take = ((bs - within).min(data.len() as u64 - written)) as usize;
            let chunk = data.slice(written as usize..written as usize + take);
            let id = BlockId::new(path, block_index);
            if within == 0 {
                let replicas = place_replicas_among(id, &live, r);
                for &node in &replicas {
                    self.inner.nodes[node.0 as usize]
                        .lock()
                        .store(id, chunk.clone())?;
                }
                let degraded = replicas.len() < r;
                dir.insert(
                    id,
                    ChunkInfo {
                        replicas: replicas.clone(),
                        checksum: chunk_checksum(&chunk),
                        len: take as u64,
                    },
                );
                if degraded {
                    self.inner.rebuild.lock().push(id, replicas.len());
                }
            } else {
                // Extend the partial tail block in place. Failed holders are
                // dropped from the replica set (their copy is now stale) and
                // the write tops back up to R on live non-holders.
                let info = dir
                    .get(id)
                    .cloned()
                    .ok_or_else(|| DsiError::corrupt(format!("missing chunk {id:?}")))?;
                let mut holders: Vec<NodeId> = info
                    .replicas
                    .iter()
                    .filter(|n| !failed.contains(n))
                    .copied()
                    .collect();
                if holders.is_empty() {
                    return Err(DsiError::Unavailable(format!(
                        "every replica of {path} block {block_index} is on a failed node"
                    )));
                }
                let (existing, _) = self.inner.nodes[holders[0].0 as usize]
                    .lock()
                    .read(id, 0, within)?;
                let mut combined = existing.to_vec();
                combined.extend_from_slice(&chunk);
                let combined = Bytes::from(combined);
                if holders.len() < r {
                    let spare: Vec<NodeId> = live
                        .iter()
                        .filter(|n| !holders.contains(n))
                        .copied()
                        .collect();
                    if !spare.is_empty() {
                        holders.extend(place_replicas_among(id, &spare, r - holders.len()));
                    }
                }
                for &node in &holders {
                    self.inner.nodes[node.0 as usize]
                        .lock()
                        .store(id, combined.clone())?;
                }
                let degraded = holders.len() < r;
                dir.insert(
                    id,
                    ChunkInfo {
                        replicas: holders.clone(),
                        checksum: chunk_checksum(&combined),
                        len: combined.len() as u64,
                    },
                );
                if degraded {
                    self.inner.rebuild.lock().push(id, holders.len());
                }
            }
            *len += take as u64;
            written += take as u64;
        }
        Ok(())
    }

    /// File metadata, if the file exists. The per-block replica lists are
    /// reconstructed from the chunk directory, so they reflect failovers
    /// and rebuilds.
    pub fn stat(&self, path: &str) -> Option<FileMeta> {
        let len = *self.inner.files.read().get(path)?;
        let dir = self.inner.directory.read();
        let bs = self.inner.config.block_size;
        let nblocks = len.div_ceil(bs);
        let blocks = (0..nblocks)
            .map(|i| {
                dir.get(BlockId::new(path, i))
                    .map(|info| info.replicas.clone())
                    .unwrap_or_default()
            })
            .collect();
        Some(FileMeta { len, blocks })
    }

    /// Lists all file paths.
    pub fn list_files(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.files.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Total logical bytes across files (before replication).
    pub fn total_file_bytes(&self) -> u64 {
        self.inner.files.read().values().sum()
    }

    /// Attaches a chaos fault injector: every subsequent logical read
    /// (a [`TectonicCluster::read`] or [`TectonicCluster::read_view`]
    /// call) fires the injector's `TectonicRead` hook exactly once.
    pub fn attach_chaos(&self, injector: Arc<FaultInjector>) {
        *self.inner.chaos.write() = Some(injector);
    }

    /// Fires the `TectonicRead` chaos hook once per logical read.
    ///
    /// Applies latency faults to the cluster clock immediately, surfaces
    /// injected IO errors, and returns the corruption faults the caller
    /// must apply: an in-flight XOR ([`FaultKind::CorruptChunk`]) and/or
    /// at-rest replica corruption ([`FaultKind::CorruptReplica`]).
    fn fire_read_chaos(&self, path: &str, offset: u64) -> Result<ReadChaos> {
        let guard = self.inner.chaos.read();
        let Some(injector) = guard.as_ref() else {
            return Ok(ReadChaos::default());
        };
        let mut chaos = ReadChaos::default();
        for kind in injector.fire(HookPoint::TectonicRead) {
            match kind {
                FaultKind::IoError => {
                    return Err(DsiError::Unavailable(format!(
                        "chaos: injected IO error reading {path} at offset {offset}"
                    )))
                }
                FaultKind::SlowIo { micros } => {
                    self.inner.clock.advance_ns(micros * 1_000);
                }
                FaultKind::CorruptChunk { xor: mask } => chaos.xor = Some(mask),
                FaultKind::CorruptReplica { xor: mask } => chaos.at_rest = Some(mask),
                _ => {}
            }
        }
        Ok(chaos)
    }

    /// Reads `len` bytes of `path` at `offset`, charging simulated disk
    /// time on the chosen replicas and advancing the cluster clock.
    /// Checksums are verified on the serving node; a corrupt replica is
    /// transparently failed over and repaired in place.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::NotFound`] for missing files and
    /// [`DsiError::Corrupt`] for out-of-range reads.
    pub fn read(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let chaos = self.fire_read_chaos(path, offset)?;
        let mut out = self.read_charged(path, offset, len, chaos.at_rest)?;
        if let (Some(mask), Some(first)) = (chaos.xor, out.first_mut()) {
            *first ^= mask;
        }
        Ok(out)
    }

    /// Validates a read range against the file length.
    fn check_range(&self, path: &str, offset: u64, len: u64) -> Result<u64> {
        let flen = *self
            .inner
            .files
            .read()
            .get(path)
            .ok_or_else(|| DsiError::not_found(format!("file {path}")))?;
        let end = offset
            .checked_add(len)
            .ok_or_else(|| DsiError::corrupt("read range overflow"))?;
        if end > flen {
            return Err(DsiError::corrupt(format!(
                "read [{offset}, {end}) beyond file of {flen} bytes"
            )));
        }
        Ok(end)
    }

    /// The chaos-free body of [`TectonicCluster::read`], shared with the
    /// multi-block fallback of [`TectonicCluster::read_view`] so one
    /// logical read never fires the chaos hook twice. `corrupt_first`
    /// plants at-rest corruption on the first replica the first block's
    /// read will consult.
    fn read_charged(
        &self,
        path: &str,
        offset: u64,
        len: u64,
        corrupt_first: Option<u8>,
    ) -> Result<Vec<u8>> {
        let end = self.check_range(path, offset, len)?;
        let bs = self.inner.config.block_size;
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = offset;
        let mut total_ns = 0u64;
        let mut corrupt_once = corrupt_first;
        while pos < end {
            let block_index = pos / bs;
            let within = pos % bs;
            let take = (bs - within).min(end - pos);
            let (bytes, ns) = self.read_block_verified(
                path,
                block_index,
                within,
                take,
                true,
                corrupt_once.take(),
            )?;
            out.extend_from_slice(&bytes);
            total_ns += ns;
            pos += take;
        }
        self.inner.clock.advance_ns(total_ns);
        Ok(out)
    }

    /// Like [`TectonicCluster::read`], but returns a shared view with an
    /// honest copy ledger: a range resident in a single block is served as
    /// a zero-copy slice of the replica's stored bytes (`copied_bytes` 0);
    /// a range spanning blocks must be assembled and reports the copy.
    /// Disk time is charged identically to [`TectonicCluster::read`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`TectonicCluster::read`].
    pub fn read_view(&self, path: &str, offset: u64, len: u64) -> Result<SourceChunk> {
        let chaos = self.fire_read_chaos(path, offset)?;
        let end = self.check_range(path, offset, len)?;
        let bs = self.inner.config.block_size;
        if len > 0 && offset / bs == (end - 1) / bs {
            let block_index = offset / bs;
            let (bytes, ns) =
                self.read_block_verified(path, block_index, offset % bs, len, true, chaos.at_rest)?;
            self.inner.clock.advance_ns(ns);
            if let Some(mask) = chaos.xor {
                // Corruption forces a private copy: the replica's stored
                // bytes must stay pristine for other readers.
                let mut owned = bytes.to_vec();
                if let Some(first) = owned.first_mut() {
                    *first ^= mask;
                }
                return Ok(SourceChunk::copied(ByteView::from(owned)));
            }
            return Ok(SourceChunk::zero_copy(ByteView::from(bytes)));
        }
        let mut owned = self.read_charged(path, offset, len, chaos.at_rest)?;
        if let (Some(mask), Some(first)) = (chaos.xor, owned.first_mut()) {
            *first ^= mask;
        }
        Ok(SourceChunk::copied(ByteView::from(owned)))
    }

    /// Serves one intra-block range from a live replica with verification,
    /// failover, and read-repair.
    ///
    /// Candidates are the chunk's live replicas in round-robin rotation
    /// order. A replica whose touched pages fail checksum verification is
    /// skipped (counted as a checksum failure) and, once a good replica
    /// serves the range, overwritten in place with the verified payload
    /// (read-repair). `corrupt_first` plants at-rest corruption on the
    /// replica about to be consulted, guaranteeing the detect → failover
    /// → repair path actually runs under chaos.
    fn read_block_verified(
        &self,
        path: &str,
        block_index: u64,
        within: u64,
        take: u64,
        charge: bool,
        corrupt_first: Option<u8>,
    ) -> Result<(Bytes, u64)> {
        let id = BlockId::new(path, block_index);
        let info = self
            .inner
            .directory
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| DsiError::not_found(format!("block {block_index} of {path}")))?;
        let failed = self.inner.failed.read().clone();
        let live: Vec<NodeId> = info
            .replicas
            .iter()
            .filter(|n| !failed.contains(n))
            .copied()
            .collect();
        if live.is_empty() {
            return Err(DsiError::Unavailable(format!(
                "every replica of {path} block {block_index} is on a failed node"
            )));
        }
        let start = self.inner.replica_cursor.fetch_add(1, Ordering::Relaxed) as usize % live.len();
        if let Some(mask) = corrupt_first {
            self.inner.nodes[live[start].0 as usize]
                .lock()
                .corrupt(id, mask);
        }
        let mut bad: Vec<NodeId> = Vec::new();
        let mut last_err: Option<DsiError> = None;
        for i in 0..live.len() {
            let node = live[(start + i) % live.len()];
            let attempt = {
                let mut n = self.inner.nodes[node.0 as usize].lock();
                if charge {
                    n.read(id, within, take)
                } else {
                    n.peek(id, within, take).map(|b| (b, 0))
                }
            };
            match attempt {
                Ok((bytes, ns)) => {
                    if i > 0 {
                        self.inner.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    if !bad.is_empty() {
                        self.read_repair(id, &info, node, &bad);
                    }
                    return Ok((bytes, ns));
                }
                Err(DsiError::Corrupt(e)) => {
                    self.inner.checksum_failures.fetch_add(1, Ordering::Relaxed);
                    bad.push(node);
                    last_err = Some(DsiError::Corrupt(e));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            DsiError::Unavailable(format!("no replica of {path} block {block_index} served"))
        }))
    }

    /// Overwrites corrupt replicas with the canonical payload fetched from
    /// a known-good holder, after validating it against the directory's
    /// whole-chunk checksum. Best-effort: a failed repair leaves the bad
    /// replica for the rebuild path.
    fn read_repair(&self, id: BlockId, info: &ChunkInfo, good: NodeId, bad: &[NodeId]) {
        let data = match self.inner.nodes[good.0 as usize]
            .lock()
            .peek(id, 0, info.len)
        {
            Ok(d) => d,
            Err(_) => return,
        };
        if chunk_checksum(&data) != info.checksum {
            return;
        }
        for &node in bad {
            if self.inner.nodes[node.0 as usize]
                .lock()
                .store(id, data.clone())
                .is_ok()
            {
                self.inner.read_repairs.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Deletes a file: removes its name-node entry, directory entries, and
    /// every block replica (retention and privacy reaping — old partitions
    /// are deleted even in an append-only store).
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::NotFound`] for unknown paths.
    pub fn delete(&self, path: &str) -> Result<()> {
        let len = self
            .inner
            .files
            .write()
            .remove(path)
            .ok_or_else(|| DsiError::not_found(format!("file {path}")))?;
        let mut dir = self.inner.directory.write();
        let mut rebuild = self.inner.rebuild.lock();
        let bs = self.inner.config.block_size;
        for block_index in 0..len.div_ceil(bs) {
            let id = BlockId::new(path, block_index);
            if let Some(info) = dir.remove(id) {
                for &node in &info.replicas {
                    self.inner.nodes[node.0 as usize].lock().remove(id);
                }
            }
            rebuild.discard(id);
        }
        Ok(())
    }

    /// Marks a storage node failed: it stops serving reads and misses its
    /// heartbeats until recovered. The heartbeat detector declares it dead
    /// after K missed beats ([`TectonicCluster::heartbeat_tick`]), which
    /// queues its chunks for rebuild. Durable data survives via the
    /// remaining replicas meanwhile.
    pub fn fail_node(&self, node: NodeId) {
        self.inner.failed.write().insert(node);
    }

    /// Returns a failed node to service (e.g. after replacement), clearing
    /// its heartbeat failure history. Since files are immutable its
    /// replicas remain valid wherever the directory still lists them.
    pub fn recover_node(&self, node: NodeId) {
        self.inner.failed.write().remove(&node);
        self.inner.detector.lock().recover(node);
    }

    /// Currently failed nodes.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.inner.failed.read().iter().copied().collect();
        v.sort();
        v
    }

    /// Overrides the heartbeat missed-beat threshold K.
    pub fn set_heartbeat_k(&self, k: u32) {
        self.inner.detector.lock().set_k(k);
    }

    /// One heartbeat round: failed nodes miss their beat, live nodes beat.
    /// Nodes reaching K consecutive misses are declared dead and their
    /// chunks are queued for rebuild, most under-replicated first. Returns
    /// the newly-dead nodes.
    pub fn heartbeat_tick(&self) -> Vec<NodeId> {
        let failed = self.inner.failed.read().clone();
        let newly_dead = self.inner.detector.lock().tick(&failed);
        if !newly_dead.is_empty() {
            self.enqueue_chunks_of(&newly_dead);
        }
        newly_dead
    }

    /// Nodes currently declared dead by the heartbeat detector.
    pub fn dead_nodes(&self) -> Vec<NodeId> {
        self.inner.detector.lock().dead_nodes()
    }

    /// Queues every chunk with a replica on any of `nodes` for rebuild.
    fn enqueue_chunks_of(&self, nodes: &[NodeId]) {
        let failed = self.inner.failed.read().clone();
        let dir = self.inner.directory.read();
        let mut rebuild = self.inner.rebuild.lock();
        let mut seen: HashSet<BlockId> = HashSet::new();
        for &node in nodes {
            for id in dir.chunks_on(node) {
                if seen.insert(id) {
                    let live = dir
                        .get(id)
                        .map(|info| info.replicas.iter().filter(|n| !failed.contains(n)).count())
                        .unwrap_or(0);
                    rebuild.push(id, live);
                }
            }
        }
    }

    /// Chunks whose live replica count is below the target (R, capped by
    /// the live node count), most under-replicated first.
    pub fn under_replicated_chunks(&self) -> Vec<BlockId> {
        let failed = self.failed_nodes();
        let live_nodes = self.inner.nodes.len() - failed.len();
        let target = self.inner.config.replication.min(live_nodes.max(1));
        self.inner
            .directory
            .read()
            .under_replicated(&failed, target)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Drains the rebuild queue under an IOPS budget: pops the most
    /// under-replicated chunks, copies each from a checksum-verified live
    /// source onto rendezvous-chosen live targets (charging real disk time
    /// on both ends, so rebuild contends with foreground reads), and
    /// updates the directory. Chunks with no live verified source are
    /// requeued. The budget bounds the IOs *started* per call; one chunk
    /// may overshoot by its own cost.
    pub fn pump_rebuild(&self, io_budget: u64) -> RebuildProgress {
        let mut progress = RebuildProgress::default();
        let mut requeue: Vec<(BlockId, usize)> = Vec::new();
        let mut total_ns = 0u64;
        let r = self.inner.config.replication;
        while progress.ios < io_budget {
            let Some(id) = self.inner.rebuild.lock().pop() else {
                break;
            };
            // Snapshot; the chunk may have been deleted or healed since.
            let Some(info) = self.inner.directory.read().get(id).cloned() else {
                continue;
            };
            let failed = self.inner.failed.read().clone();
            let holders: Vec<NodeId> = info
                .replicas
                .iter()
                .filter(|n| !failed.contains(n))
                .copied()
                .collect();
            let has_lost_holder = holders.len() < info.replicas.len();
            if holders.len() >= r && !has_lost_holder {
                continue; // healed while queued
            }
            // Find a checksum-verified source among the live holders.
            let mut data: Option<Bytes> = None;
            for &src in &holders {
                let attempt = self.inner.nodes[src.0 as usize]
                    .lock()
                    .read(id, 0, info.len);
                progress.ios += 1;
                match attempt {
                    Ok((bytes, ns)) if chunk_checksum(&bytes) == info.checksum => {
                        total_ns += ns;
                        data = Some(bytes);
                        break;
                    }
                    Ok(_) | Err(DsiError::Corrupt(_)) => {
                        self.inner.checksum_failures.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {}
                }
            }
            let Some(data) = data else {
                requeue.push((id, holders.len()));
                continue;
            };
            // Fan the chunk back out to R over live non-holders.
            let spare: Vec<NodeId> = self
                .live_nodes(&failed)
                .into_iter()
                .filter(|n| !holders.contains(n))
                .collect();
            let needed = r.saturating_sub(holders.len());
            let mut new_replicas = holders.clone();
            if needed > 0 && !spare.is_empty() {
                for target in place_replicas_among(id, &spare, needed) {
                    if let Ok(ns) = self.inner.nodes[target.0 as usize]
                        .lock()
                        .store_charged(id, data.clone())
                    {
                        total_ns += ns;
                        progress.ios += 1;
                        new_replicas.push(target);
                    }
                }
            }
            if new_replicas != info.replicas {
                if let Some(entry) = self.inner.directory.write().get_mut(id) {
                    entry.replicas = new_replicas.clone();
                }
            }
            if new_replicas.len() > holders.len() {
                progress.chunks_rebuilt += 1;
                self.inner.rebuilt_chunks.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let mut rebuild = self.inner.rebuild.lock();
            for (id, live) in requeue {
                rebuild.push(id, live);
            }
            progress.remaining = rebuild.len() as u64;
        }
        self.inner
            .rebuild_ios
            .fetch_add(progress.ios, Ordering::Relaxed);
        self.inner.clock.advance_ns(total_ns);
        progress
    }

    /// Re-replicates every block that lost a replica to a failed node by
    /// declaring the failed nodes dead (skipping the heartbeat grace
    /// period), queueing their chunks, and draining the rebuild queue with
    /// an unbounded budget. Returns the number of chunks re-replicated.
    ///
    /// # Errors
    ///
    /// Returns [`DsiError::Unavailable`] if some chunk has no live,
    /// checksum-verified replica to rebuild from.
    pub fn repair(&self) -> Result<u64> {
        let failed = self.failed_nodes();
        if failed.is_empty() {
            return Ok(0);
        }
        {
            let mut detector = self.inner.detector.lock();
            for &node in &failed {
                detector.force_dead(node);
            }
        }
        self.enqueue_chunks_of(&failed);
        let progress = self.pump_rebuild(u64::MAX);
        if progress.remaining > 0 {
            return Err(DsiError::Unavailable(format!(
                "{} chunks have no live replica to rebuild from",
                progress.remaining
            )));
        }
        Ok(progress.chunks_rebuilt)
    }

    /// Snapshot of the durability counters and degradation state.
    pub fn durability(&self) -> DurabilityCounters {
        DurabilityCounters {
            checksum_failures: self.inner.checksum_failures.load(Ordering::Relaxed),
            read_repairs: self.inner.read_repairs.load(Ordering::Relaxed),
            failovers: self.inner.failovers.load(Ordering::Relaxed),
            rebuilt_chunks: self.inner.rebuilt_chunks.load(Ordering::Relaxed),
            rebuild_ios: self.inner.rebuild_ios.load(Ordering::Relaxed),
            dead_nodes: self.dead_nodes().len() as u64,
            under_replicated: self.under_replicated_chunks().len() as u64,
            rebuild_queue_depth: self.inner.rebuild.lock().len() as u64,
        }
    }

    /// Corrupts one live resident replica of `path`'s block `block_index`
    /// at rest (test hook for the durability suite). Returns the node
    /// whose copy was corrupted, if any.
    pub fn corrupt_replica(&self, path: &str, block_index: u64, xor: u8) -> Option<NodeId> {
        let id = BlockId::new(path, block_index);
        let info = self.inner.directory.read().get(id).cloned()?;
        let failed = self.inner.failed.read().clone();
        let target = info
            .replicas
            .iter()
            .find(|n| !failed.contains(n))
            .copied()?;
        self.inner.nodes[target.0 as usize]
            .lock()
            .corrupt(id, xor)
            .then_some(target)
    }

    /// Like [`TectonicCluster::read`] but charges no disk time — used by
    /// cache tiers that accounted the IO on another device. Still verifies
    /// checksums and fails over to a live replica.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TectonicCluster::read`].
    pub fn read_uncharged(&self, path: &str, offset: u64, len: u64) -> Result<Vec<u8>> {
        let end = self.check_range(path, offset, len)?;
        let bs = self.inner.config.block_size;
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = offset;
        while pos < end {
            let block_index = pos / bs;
            let within = pos % bs;
            let take = (bs - within).min(end - pos);
            let (bytes, _) =
                self.read_block_verified(path, block_index, within, take, false, None)?;
            out.extend_from_slice(&bytes);
            pos += take;
        }
        Ok(out)
    }

    /// Uncharged counterpart of [`TectonicCluster::read_view`]: single-block
    /// ranges are served zero-copy from a live replica via `peek`,
    /// multi-block ranges are assembled and reported as copied.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TectonicCluster::read`].
    pub fn read_view_uncharged(&self, path: &str, offset: u64, len: u64) -> Result<SourceChunk> {
        let end = self.check_range(path, offset, len)?;
        let bs = self.inner.config.block_size;
        if len > 0 && offset / bs == (end - 1) / bs {
            let block_index = offset / bs;
            let (bytes, _) =
                self.read_block_verified(path, block_index, offset % bs, len, false, None)?;
            return Ok(SourceChunk::zero_copy(ByteView::from(bytes)));
        }
        Ok(SourceChunk::copied(ByteView::from(
            self.read_uncharged(path, offset, len)?,
        )))
    }

    /// Aggregated device stats across all nodes.
    pub fn total_stats(&self) -> DeviceStats {
        let mut total = DeviceStats::default();
        for n in &self.inner.nodes {
            let s = n.lock().stats().device;
            total.ios += s.ios;
            total.bytes += s.bytes;
            total.busy_ns += s.busy_ns;
            total.seeks += s.seeks;
        }
        total
    }

    /// Per-node telemetry snapshots.
    pub fn node_stats(&self) -> Vec<NodeStats> {
        self.inner.nodes.iter().map(|n| n.lock().stats()).collect()
    }

    /// Every recorded IO size across nodes (enable recording first).
    pub fn all_io_sizes(&self) -> Vec<u64> {
        let mut all = Vec::new();
        for n in &self.inner.nodes {
            all.extend(n.lock().stats().io_sizes);
        }
        all
    }

    /// Enables or disables per-IO size recording on every node.
    pub fn set_record_io_sizes(&self, on: bool) {
        for n in &self.inner.nodes {
            n.lock().set_record_io_sizes(on);
        }
    }

    /// Clears telemetry on every node.
    pub fn reset_stats(&self) {
        for n in &self.inner.nodes {
            n.lock().reset_stats();
        }
    }

    /// Physical bytes stored across all nodes (includes replication).
    pub fn stored_bytes(&self) -> u64 {
        self.inner
            .nodes
            .iter()
            .map(|n| n.lock().stored_bytes())
            .sum()
    }

    /// Publishes per-node IO telemetry and the durability counters into
    /// `registry`: `dsi_storage_node_{ios,bytes}_total{node}` plus the
    /// `dsi_tectonic_*` replication/rebuild/read-repair series.
    pub fn publish_metrics(&self, registry: &dsi_obs::Registry) {
        use dsi_obs::names;
        for (i, n) in self.inner.nodes.iter().enumerate() {
            let s = n.lock().stats().device;
            let node = i.to_string();
            registry
                .counter(names::STORAGE_NODE_IOS_TOTAL, &[("node", &node)])
                .advance_to(s.ios);
            registry
                .counter(names::STORAGE_NODE_BYTES_TOTAL, &[("node", &node)])
                .advance_to(s.bytes);
        }
        let d = self.durability();
        registry
            .counter(names::TECTONIC_CHECKSUM_FAILURES_TOTAL, &[])
            .advance_to(d.checksum_failures);
        registry
            .counter(names::TECTONIC_READ_REPAIRS_TOTAL, &[])
            .advance_to(d.read_repairs);
        registry
            .counter(names::TECTONIC_FAILOVERS_TOTAL, &[])
            .advance_to(d.failovers);
        registry
            .counter(names::TECTONIC_REBUILT_CHUNKS_TOTAL, &[])
            .advance_to(d.rebuilt_chunks);
        registry
            .counter(names::TECTONIC_REBUILD_IOS_TOTAL, &[])
            .advance_to(d.rebuild_ios);
        registry
            .gauge(names::TECTONIC_DEAD_NODES, &[])
            .set(d.dead_nodes as f64);
        registry
            .gauge(names::TECTONIC_UNDER_REPLICATED_CHUNKS, &[])
            .set(d.under_replicated as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_across_blocks() {
        let c = TectonicCluster::new(ClusterConfig {
            nodes: 5,
            block_size: 1000,
            replication: 3,
            hdd: true,
        });
        let data: Vec<u8> = (0..3500u32).map(|i| (i % 251) as u8).collect();
        c.append("f", Bytes::from(data.clone())).unwrap();
        let meta = c.stat("f").unwrap();
        assert_eq!(meta.len, 3500);
        assert_eq!(meta.blocks.len(), 4);
        // Read spanning three blocks.
        let got = c.read("f", 900, 2200).unwrap();
        assert_eq!(got, &data[900..3100]);
    }

    #[test]
    fn replication_is_physical() {
        let c = TectonicCluster::new(ClusterConfig {
            nodes: 4,
            block_size: 1024,
            replication: 3,
            hdd: true,
        });
        c.append("f", Bytes::from(vec![1u8; 2048])).unwrap();
        assert_eq!(c.total_file_bytes(), 2048);
        assert_eq!(c.stored_bytes(), 3 * 2048);
    }

    #[test]
    fn incremental_append_extends_tail_block() {
        let c = TectonicCluster::new(ClusterConfig {
            nodes: 4,
            block_size: 100,
            replication: 2,
            hdd: true,
        });
        c.append("f", Bytes::from(vec![1u8; 30])).unwrap();
        c.append("f", Bytes::from(vec![2u8; 30])).unwrap();
        c.append("f", Bytes::from(vec![3u8; 60])).unwrap();
        let meta = c.stat("f").unwrap();
        assert_eq!(meta.len, 120);
        assert_eq!(meta.blocks.len(), 2);
        let got = c.read("f", 0, 120).unwrap();
        assert_eq!(&got[..30], &[1u8; 30]);
        assert_eq!(&got[30..60], &[2u8; 30]);
        assert_eq!(&got[60..], &[3u8; 60]);
    }

    #[test]
    fn read_view_is_zero_copy_within_a_block_and_honest_across() {
        let c = TectonicCluster::new(ClusterConfig {
            nodes: 5,
            block_size: 1000,
            replication: 3,
            hdd: true,
        });
        let data: Vec<u8> = (0..3500u32).map(|i| (i % 251) as u8).collect();
        c.append("f", Bytes::from(data.clone())).unwrap();

        // Single-block range: served as a slice of the replica's bytes.
        let chunk = c.read_view("f", 1200, 600).unwrap();
        assert_eq!(chunk.copied_bytes, 0);
        assert_eq!(chunk.view.as_slice(), &data[1200..1800]);
        assert!(c.clock().now_ns() > 0, "view reads still charge disk time");

        // Block-spanning range: must assemble, and says so.
        let chunk = c.read_view("f", 900, 2200).unwrap();
        assert_eq!(chunk.copied_bytes, 2200);
        assert_eq!(chunk.view.as_slice(), &data[900..3100]);

        // Uncharged variant: same bytes, no extra disk time.
        let before = c.total_stats().ios;
        let chunk = c.read_view_uncharged("f", 1200, 600).unwrap();
        assert_eq!(chunk.copied_bytes, 0);
        assert_eq!(chunk.view.as_slice(), &data[1200..1800]);
        assert_eq!(c.total_stats().ios, before);
    }

    #[test]
    fn reads_charge_disk_time_and_advance_clock() {
        let c = TectonicCluster::new(ClusterConfig::small());
        c.append("f", Bytes::from(vec![0u8; 10_000])).unwrap();
        assert_eq!(c.clock().now_ns(), 0);
        c.read("f", 0, 4096).unwrap();
        assert!(c.clock().now_ns() > 0);
        let stats = c.total_stats();
        assert_eq!(stats.ios, 1);
        assert_eq!(stats.bytes, 4096);
    }

    #[test]
    fn missing_file_and_bad_range() {
        let c = TectonicCluster::new(ClusterConfig::small());
        assert!(matches!(c.read("nope", 0, 1), Err(DsiError::NotFound(_))));
        c.append("f", Bytes::from(vec![0u8; 10])).unwrap();
        assert!(c.read("f", 5, 10).is_err());
    }

    #[test]
    fn io_size_recording_round_trip() {
        let c = TectonicCluster::new(ClusterConfig::small());
        c.append("f", Bytes::from(vec![0u8; 10_000])).unwrap();
        c.set_record_io_sizes(true);
        c.read("f", 0, 100).unwrap();
        c.read("f", 500, 200).unwrap();
        let mut sizes = c.all_io_sizes();
        sizes.sort();
        assert_eq!(sizes, vec![100, 200]);
        c.reset_stats();
        assert!(c.all_io_sizes().is_empty());
    }

    #[test]
    fn delete_reaps_blocks_everywhere() {
        let c = TectonicCluster::new(ClusterConfig {
            nodes: 5,
            block_size: 1000,
            replication: 3,
            hdd: true,
        });
        c.append("keep", Bytes::from(vec![1u8; 2500])).unwrap();
        c.append("reap", Bytes::from(vec![2u8; 2500])).unwrap();
        let before = c.list_files().len();
        c.delete("reap").unwrap();
        assert_eq!(c.list_files().len(), before - 1);
        assert!(matches!(c.read("reap", 0, 1), Err(DsiError::NotFound(_))));
        // Blocks are gone from every node.
        let total_blocks: usize = (0..5).map(|i| c.inner.nodes[i].lock().block_count()).sum();
        assert_eq!(total_blocks, 3 * 3); // only "keep"'s 3 blocks x R3
                                         // The kept file is intact.
        assert_eq!(c.read("keep", 0, 2500).unwrap(), vec![1u8; 2500]);
        assert!(c.delete("reap").is_err());
    }

    #[test]
    fn reads_survive_node_failure_via_replicas() {
        let c = TectonicCluster::new(ClusterConfig {
            nodes: 6,
            block_size: 1024,
            replication: 3,
            hdd: true,
        });
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 253) as u8).collect();
        c.append("f", Bytes::from(data.clone())).unwrap();
        // Fail two nodes: every block still has at least one replica.
        c.fail_node(NodeId(0));
        c.fail_node(NodeId(1));
        assert_eq!(c.failed_nodes(), vec![NodeId(0), NodeId(1)]);
        let got = c.read("f", 0, 5000).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn repair_restores_replication_factor() {
        let c = TectonicCluster::new(ClusterConfig {
            nodes: 6,
            block_size: 512,
            replication: 3,
            hdd: true,
        });
        c.append("f", Bytes::from(vec![9u8; 4096])).unwrap();
        c.fail_node(NodeId(2));
        let restored = c.repair().unwrap();
        // Blocks that had a replica on node 2 were re-replicated.
        let meta = c.stat("f").unwrap();
        for replicas in &meta.blocks {
            assert!(!replicas.contains(&NodeId(2)));
            assert_eq!(replicas.len(), 3);
            let mut uniq = replicas.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "replicas must be distinct");
        }
        // Some blocks likely lived on node 2 (rendezvous spread).
        assert!(restored > 0, "expected restorations, got {restored}");
        // After repair even the failed node's data is readable elsewhere.
        assert_eq!(c.read("f", 0, 4096).unwrap(), vec![9u8; 4096]);
        // Repair is idempotent.
        assert_eq!(c.repair().unwrap(), 0);
    }

    #[test]
    fn losing_every_replica_is_unavailable() {
        let c = TectonicCluster::new(ClusterConfig {
            nodes: 3,
            block_size: 1024,
            replication: 3,
            hdd: true,
        });
        c.append("f", Bytes::from(vec![1u8; 100])).unwrap();
        c.fail_node(NodeId(0));
        c.fail_node(NodeId(1));
        c.fail_node(NodeId(2));
        assert!(matches!(c.read("f", 0, 10), Err(DsiError::Unavailable(_))));
        assert!(c.repair().is_err());
        // Recovery restores service (immutable blocks are still valid).
        c.recover_node(NodeId(0));
        c.recover_node(NodeId(1));
        c.recover_node(NodeId(2));
        assert_eq!(c.read("f", 0, 100).unwrap(), vec![1u8; 100]);
    }

    #[test]
    fn handles_are_shared() {
        let c = TectonicCluster::new(ClusterConfig::small());
        let c2 = c.clone();
        c.append("f", Bytes::from(vec![0u8; 100])).unwrap();
        assert!(c2.stat("f").is_some());
        assert_eq!(c2.list_files(), vec!["f".to_string()]);
    }

    #[test]
    fn concurrent_reads_are_safe() {
        let c = TectonicCluster::new(ClusterConfig::small());
        c.append("f", Bytes::from(vec![7u8; 100_000])).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        let off = (t * 1000 + i * 13) as u64;
                        let data = c.read("f", off, 64).unwrap();
                        assert_eq!(data, vec![7u8; 64]);
                    }
                });
            }
        });
        assert_eq!(c.total_stats().ios, 200);
    }

    #[test]
    fn corrupt_replica_is_detected_failed_over_and_repaired() {
        let c = TectonicCluster::new(ClusterConfig {
            nodes: 6,
            block_size: 4096,
            replication: 3,
            hdd: true,
        });
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 241) as u8).collect();
        c.append("f", Bytes::from(data.clone())).unwrap();
        let victim = c
            .corrupt_replica("f", 0, 0x5A)
            .expect("a replica to corrupt");
        // Enough reads that round-robin rotation lands on the bad replica.
        for _ in 0..6 {
            assert_eq!(c.read("f", 0, 4096).unwrap(), data, "reads stay correct");
        }
        let d = c.durability();
        assert!(d.checksum_failures >= 1, "corruption detected: {d:?}");
        assert!(d.read_repairs >= 1, "bad copy repaired in place: {d:?}");
        assert!(d.failovers >= 1, "read failed over: {d:?}");
        // The repaired replica serves clean reads again: no new failures.
        let before = c.durability().checksum_failures;
        for _ in 0..6 {
            assert_eq!(c.read("f", 0, 4096).unwrap(), data);
        }
        assert_eq!(c.durability().checksum_failures, before);
        let _ = victim;
    }

    #[test]
    fn heartbeat_declares_dead_after_k_misses_and_rebuild_converges() {
        let c = TectonicCluster::new(ClusterConfig {
            nodes: 8,
            block_size: 1024,
            replication: 3,
            hdd: true,
        });
        c.append("f", Bytes::from(vec![4u8; 16 * 1024])).unwrap();
        c.fail_node(NodeId(3));
        assert!(c.heartbeat_tick().is_empty(), "miss 1 of K=3");
        assert!(c.heartbeat_tick().is_empty(), "miss 2 of K=3");
        assert_eq!(c.heartbeat_tick(), vec![NodeId(3)], "dead after K misses");
        let lost = c.under_replicated_chunks().len();
        assert!(lost > 0, "node 3 held some replicas");
        assert_eq!(c.durability().rebuild_queue_depth as usize, lost);
        // Drain under a small budget: each pump is bounded, queue shrinks.
        let budget = 4u64;
        let mut pumps = 0;
        loop {
            let p = c.pump_rebuild(budget);
            assert!(
                p.ios <= budget + 3,
                "pump overshot its budget: {} ios",
                p.ios
            );
            pumps += 1;
            if p.remaining == 0 {
                break;
            }
            assert!(pumps < 100, "rebuild failed to converge");
        }
        assert!(pumps > 1, "budget forces multiple pumps");
        assert!(
            c.under_replicated_chunks().is_empty(),
            "fully re-replicated"
        );
        let meta = c.stat("f").unwrap();
        for replicas in &meta.blocks {
            assert_eq!(replicas.len(), 3);
            assert!(!replicas.contains(&NodeId(3)));
        }
        let d = c.durability();
        assert!(d.rebuilt_chunks >= lost as u64);
        assert!(d.rebuild_ios > 0);
        assert_eq!(d.dead_nodes, 1);
    }

    #[test]
    fn degraded_append_heals_after_recovery() {
        let c = TectonicCluster::new(ClusterConfig {
            nodes: 3,
            block_size: 1024,
            replication: 3,
            hdd: true,
        });
        c.fail_node(NodeId(1));
        c.append("f", Bytes::from(vec![8u8; 2048])).unwrap();
        // Degraded write: only 2 live nodes hold each block.
        let meta = c.stat("f").unwrap();
        for replicas in &meta.blocks {
            assert_eq!(replicas.len(), 2);
        }
        assert_eq!(
            c.under_replicated_chunks().len(),
            0,
            "target capped at live"
        );
        assert_eq!(c.read("f", 0, 2048).unwrap(), vec![8u8; 2048]);
        // Node rejoins: the queued chunks top back up to R3.
        c.recover_node(NodeId(1));
        assert!(!c.under_replicated_chunks().is_empty(), "now below R again");
        let p = c.pump_rebuild(u64::MAX);
        assert_eq!(p.remaining, 0);
        let meta = c.stat("f").unwrap();
        for replicas in &meta.blocks {
            assert_eq!(replicas.len(), 3);
        }
        assert!(c.under_replicated_chunks().is_empty());
    }
}
