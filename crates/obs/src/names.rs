//! Canonical series names for every metric the DSI pipeline emits.
//!
//! Instrumented crates and the [`crate::report::PipelineReport`] share
//! these constants so the catalog in `DESIGN.md` stays the single source
//! of truth. Suffix conventions follow Prometheus: `_total` for
//! counters, `_seconds`/`_bytes` units, bare names for gauges.

// ---- scribe: message bus + streaming ETL ----------------------------------

/// Counter, labels `{topic}`: messages published to the bus.
pub const SCRIBE_PUBLISHED_TOTAL: &str = "dsi_scribe_published_total";
/// Gauge, labels `{topic}`: messages retained in the bus log (backlog).
pub const SCRIBE_BUS_BACKLOG: &str = "dsi_scribe_bus_backlog";
/// Counter: feature/event pairs joined by the streaming ETL.
pub const ETL_JOINED_TOTAL: &str = "dsi_etl_joined_total";
/// Counter: events arriving with no pending feature row.
pub const ETL_ORPHAN_EVENTS_TOTAL: &str = "dsi_etl_orphan_events_total";
/// Counter: feature rows expired into negative samples.
pub const ETL_EXPIRED_NEGATIVE_TOTAL: &str = "dsi_etl_expired_negative_total";
/// Gauge: feature rows currently waiting in the join window.
pub const ETL_PENDING_JOINS: &str = "dsi_etl_pending_joins";
/// Histogram (seconds): feature→event arrival lag of successful joins.
pub const ETL_JOIN_LAG_SECONDS: &str = "dsi_etl_join_lag_seconds";

// ---- tectonic: distributed FS + SSD cache ---------------------------------

/// Counter: SSD-cache page hits.
pub const CACHE_HITS_TOTAL: &str = "dsi_cache_hits_total";
/// Counter: SSD-cache page misses.
pub const CACHE_MISSES_TOTAL: &str = "dsi_cache_misses_total";
/// Counter: SSD-cache evictions.
pub const CACHE_EVICTIONS_TOTAL: &str = "dsi_cache_evictions_total";
/// Gauge in `[0,1]`: cache hit rate since start.
pub const CACHE_HIT_RATE: &str = "dsi_cache_hit_rate";
/// Gauge: pages resident in the SSD cache.
pub const CACHE_RESIDENT_PAGES: &str = "dsi_cache_resident_pages";
/// Counter, labels `{node}`: I/O operations served per storage node.
pub const STORAGE_NODE_IOS_TOTAL: &str = "dsi_storage_node_ios_total";
/// Counter, labels `{node}`: bytes served per storage node.
pub const STORAGE_NODE_BYTES_TOTAL: &str = "dsi_storage_node_bytes_total";
/// Counter: per-page checksum verification failures detected on reads.
pub const TECTONIC_CHECKSUM_FAILURES_TOTAL: &str = "dsi_tectonic_checksum_failures_total";
/// Counter: bad replicas repaired in place after a verified read.
pub const TECTONIC_READ_REPAIRS_TOTAL: &str = "dsi_tectonic_read_repairs_total";
/// Counter: reads served by a non-first-choice replica.
pub const TECTONIC_FAILOVERS_TOTAL: &str = "dsi_tectonic_read_failovers_total";
/// Counter: chunks re-replicated by the rebuild worker.
pub const TECTONIC_REBUILT_CHUNKS_TOTAL: &str = "dsi_tectonic_rebuilt_chunks_total";
/// Counter: disk IOs charged to rebuild traffic (reads + writes).
pub const TECTONIC_REBUILD_IOS_TOTAL: &str = "dsi_tectonic_rebuild_ios_total";
/// Gauge: nodes currently declared dead by the heartbeat detector.
pub const TECTONIC_DEAD_NODES: &str = "dsi_tectonic_dead_nodes";
/// Gauge: chunks currently below their target live replica count.
pub const TECTONIC_UNDER_REPLICATED_CHUNKS: &str = "dsi_tectonic_under_replicated_chunks";

// ---- dwrf: columnar format reader -----------------------------------------

/// Counter: stripes decoded by DWRF readers.
pub const DWRF_STRIPES_DECODED_TOTAL: &str = "dsi_dwrf_stripes_decoded_total";
/// Counter: bytes physically read (after coalescing over-read).
pub const DWRF_READ_BYTES_TOTAL: &str = "dsi_dwrf_read_bytes_total";
/// Counter: bytes actually wanted by the projected columns.
pub const DWRF_WANTED_BYTES_TOTAL: &str = "dsi_dwrf_wanted_bytes_total";

// ---- dpp: master / workers / clients --------------------------------------

/// Gauge: splits waiting in the master queue.
pub const MASTER_QUEUE_DEPTH: &str = "dsi_master_queue_depth";
/// Counter: splits enqueued over the session.
pub const MASTER_SPLITS_TOTAL: &str = "dsi_master_splits_total";
/// Counter: splits completed by workers.
pub const MASTER_SPLITS_COMPLETED_TOTAL: &str = "dsi_master_splits_completed_total";
/// Counter: master checkpoints taken.
pub const MASTER_CHECKPOINTS_TOTAL: &str = "dsi_master_checkpoints_total";
/// Gauge: workers currently registered with the master.
pub const MASTER_WORKERS: &str = "dsi_master_workers";
/// Counter: samples produced by DPP workers.
pub const WORKER_SAMPLES_TOTAL: &str = "dsi_worker_samples_total";
/// Counter: batches produced by DPP workers.
pub const WORKER_BATCHES_TOTAL: &str = "dsi_worker_batches_total";
/// Counter: compressed bytes received from storage by workers.
pub const WORKER_STORAGE_RX_BYTES_TOTAL: &str = "dsi_worker_storage_rx_bytes_total";
/// Counter: bytes the workers' column projection actually wanted.
pub const WORKER_STORAGE_WANTED_BYTES_TOTAL: &str = "dsi_worker_storage_wanted_bytes_total";
/// Counter: memory-bandwidth bytes moved during preprocessing.
pub const WORKER_MEMBW_BYTES_TOTAL: &str = "dsi_worker_membw_bytes_total";
/// Histogram (seconds): trainer-client batch fetch latency.
pub const CLIENT_FETCH_SECONDS: &str = "dsi_client_fetch_seconds";
/// Counter: client polls that returned no batch (fan-out starvation).
pub const CLIENT_STARVED_POLLS_TOTAL: &str = "dsi_client_starved_polls_total";
/// Counter: batches accepted by clients.
pub const CLIENT_BATCHES_TOTAL: &str = "dsi_client_batches_total";

// ---- dedup: RecD-style deduplication --------------------------------------

/// Counter: DedupSets formed (canonical payloads kept) across storage
/// writes and worker transforms.
pub const DEDUP_SETS_TOTAL: &str = "dsi_dedup_sets_total";
/// Counter: logical rows covered by DedupSets.
pub const DEDUP_ROWS_TOTAL: &str = "dsi_dedup_rows_total";
/// Counter: storage bytes duplicate rows did not re-store.
pub const DEDUP_BYTES_SAVED_TOTAL: &str = "dsi_dedup_bytes_saved_total";
/// Counter: transform op applications replaced by canonical-result fan-out.
pub const DEDUP_TRANSFORM_REUSE_HITS_TOTAL: &str = "dsi_dedup_transform_reuse_hits_total";
/// Gauge: observed logical rows per canonical payload (1.0 = no duplication).
pub const DEDUP_RATIO: &str = "dsi_dedup_ratio";

// ---- fastpath: zero-copy decode + pipelined prefetch -----------------------

/// Gauge in `[0,1]`: decode scratch-pool takes served from a free list.
pub const FASTPATH_POOL_HIT_RATIO: &str = "dsi_fastpath_pool_hit_ratio";
/// Counter: scratch-pool takes served from a thread-local free list.
pub const FASTPATH_POOL_HITS_TOTAL: &str = "dsi_fastpath_pool_hits_total";
/// Counter: scratch-pool takes that had to allocate.
pub const FASTPATH_POOL_MISSES_TOTAL: &str = "dsi_fastpath_pool_misses_total";
/// Counter: bytes physically memcpy'd on the storage→decode path
/// (zero-copy slicing and in-place decode work are not counted).
pub const FASTPATH_BYTES_COPIED_TOTAL: &str = "dsi_fastpath_bytes_copied_total";
/// Gauge: splits currently prefetched ahead of the transform stage.
pub const FASTPATH_PREFETCH_DEPTH: &str = "dsi_fastpath_prefetch_depth";
/// Histogram (seconds): how long each prefetched split sat decoded and
/// ready before the transform stage picked it up (decode/transform
/// overlap won by the worker pipeline).
pub const FASTPATH_STAGE_OVERLAP_SECONDS: &str = "dsi_fastpath_stage_overlap_seconds";

// ---- wire: framed TCP data plane -------------------------------------------

/// Counter: data frames written to the wire by worker-side senders
/// (replays after a reconnect count again — they are re-sent bytes).
pub const WIRE_FRAMES_TOTAL: &str = "dsi_wire_frames_total";
/// Counter: serialized envelope payload bytes before compression and
/// encryption (the logical tensor volume crossing the boundary).
pub const WIRE_PAYLOAD_BYTES_TOTAL: &str = "dsi_wire_payload_bytes_total";
/// Counter: bytes actually written to the socket (frame headers plus the
/// post-compression, post-encryption payload).
pub const WIRE_TX_BYTES_TOTAL: &str = "dsi_wire_tx_bytes_total";
/// Counter (nanoseconds): time spent serializing envelopes into frames.
pub const WIRE_SERIALIZE_NANOS_TOTAL: &str = "dsi_wire_serialize_nanos_total";
/// Counter (nanoseconds): time spent in the stream cipher, both encrypting
/// on send and decrypting on receive (the TLS stand-in).
pub const WIRE_ENCRYPT_NANOS_TOTAL: &str = "dsi_wire_encrypt_nanos_total";
/// Counter (nanoseconds): time spent checksum-verifying, decompressing,
/// and deserializing received frames back into envelopes.
pub const WIRE_DESERIALIZE_NANOS_TOTAL: &str = "dsi_wire_deserialize_nanos_total";
/// Counter (nanoseconds): time spent compressing payloads on send and
/// never mixed into [`WIRE_SERIALIZE_NANOS_TOTAL`].
pub const WIRE_COMPRESS_NANOS_TOTAL: &str = "dsi_wire_compress_nanos_total";
/// Gauge: hit ratio of the pooled wire send buffer (1.0 = every frame
/// reused a pooled allocation; fresh allocations drag it down).
pub const WIRE_BUF_POOL_HIT_RATIO: &str = "dsi_wire_buf_pool_hit_ratio";
/// Counter: client-side reconnects to a worker's wire server (each one
/// triggers a replay of that worker's unacked envelopes).
pub const WIRE_RECONNECTS_TOTAL: &str = "dsi_wire_reconnects_total";
/// Counter (nanoseconds), labels `{op}`: wall time spent in each columnar
/// transform kernel (`op` is the kernel name, e.g. `sigrid_hash`) when the
/// load stage routes eligible ops over materialized tensors.
pub const TRANSFORM_KERNEL_NANOS_TOTAL: &str = "dsi_transform_kernel_nanos_total";

// ---- chaos: deterministic fault injection ----------------------------------

/// Counter, labels `{fault}`: faults injected by the chaos harness, by
/// stable fault-kind label (`io_error`, `worker_crash`, ...).
pub const CHAOS_INJECTED_TOTAL: &str = "dsi_chaos_injected_total";
/// Gauge, labels `{hook}`: operations observed at each chaos hook point
/// (the injector's virtual clock).
pub const CHAOS_HOOK_OPS: &str = "dsi_chaos_hook_ops";

// ---- fleet: multi-tenant reconciler control plane --------------------------

/// Gauge, labels `{job, tenant}`: live (non-draining) workers currently
/// assigned to a job by the fleet reconciler.
pub const FLEET_ALLOCATED_WORKERS: &str = "dsi_fleet_allocated_workers";
/// Gauge, labels `{job, tenant}`: the job's fair-share worker target from
/// the latest reconcile tick.
pub const FLEET_DESIRED_WORKERS: &str = "dsi_fleet_desired_workers";
/// Gauge, labels `{job, tenant}`: workers short of the job's full demand
/// (`max_workers`) under the current allocation — the fleet's contention
/// signal.
pub const FLEET_FAIR_SHARE_DEFICIT: &str = "dsi_fleet_fair_share_deficit";
/// Counter, labels `{job, tenant}`: workers taken from this job to serve
/// a strictly higher-priority tenant.
pub const FLEET_PREEMPTIONS_TOTAL: &str = "dsi_fleet_preemptions_total";
/// Counter, labels `{action}`: reconcile actions executed, by stable kind
/// label (`spawn`, `drain`, `preempt`, `reassign`).
pub const FLEET_ACTIONS_TOTAL: &str = "dsi_fleet_actions_total";
/// Histogram (seconds): wall time of each reconcile tick (observe → plan
/// → execute → publish).
pub const FLEET_RECONCILE_SECONDS: &str = "dsi_fleet_reconcile_seconds";
/// Gauge: jobs currently registered with the fleet control plane.
pub const FLEET_JOBS: &str = "dsi_fleet_jobs";

// ---- trainer ---------------------------------------------------------------

/// Gauge in `[0,1]`: fraction of trainer wall time spent data-stalled.
pub const TRAINER_STALL_FRACTION: &str = "dsi_trainer_stall_fraction";
/// Counter: batches consumed by the trainer.
pub const TRAINER_BATCHES_TOTAL: &str = "dsi_trainer_batches_total";
/// Counter: samples consumed by the trainer.
pub const TRAINER_SAMPLES_TOTAL: &str = "dsi_trainer_samples_total";
/// Gauge (seconds, accumulating): trainer time spent waiting on data.
pub const TRAINER_STALLED_SECONDS: &str = "dsi_trainer_stalled_seconds";
/// Gauge (seconds, accumulating): trainer wall time observed.
pub const TRAINER_ELAPSED_SECONDS: &str = "dsi_trainer_elapsed_seconds";
