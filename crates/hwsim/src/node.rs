//! Compute-node catalog and the analytic resource model.
//!
//! Table X of the paper lists the general-purpose compute servers DPP runs
//! on; the trainer front-end is a 2-socket, 8-GPU node. Every pipeline stage
//! in this workspace expresses its cost as a [`ResourceVector`] — CPU cycles,
//! memory-bandwidth bytes, NIC bytes, and resident memory per item — and a
//! [`NodeSpec`] converts that cost into achievable throughput, per-resource
//! utilization, and the binding bottleneck.
//!
//! Memory bandwidth saturates at ≈70% of nominal (§VI-B), which the model
//! applies as a usable-fraction derate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Fraction of nominal memory bandwidth that is practically achievable.
pub const MEMBW_USABLE_FRACTION: f64 = 0.70;

/// A hardware resource on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// CPU cycles across all cores.
    Cpu,
    /// Memory bandwidth.
    MemBw,
    /// NIC receive direction.
    NicRx,
    /// NIC transmit direction.
    NicTx,
    /// Memory capacity (resident working set).
    MemCapacity,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::Cpu => "cpu",
            Resource::MemBw => "membw",
            Resource::NicRx => "nic-rx",
            Resource::NicTx => "nic-tx",
            Resource::MemCapacity => "mem-capacity",
        };
        f.write_str(s)
    }
}

/// Per-item resource demand of a workload stage.
///
/// All fields are *per processed item* (sample, batch, or byte — the caller
/// chooses the unit consistently). `resident_bytes` is memory held while an
/// item is in flight; together with `residency_secs` it imposes a
/// memory-capacity rate ceiling of `capacity / (resident_bytes ×
/// residency_secs)` items/s.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVector {
    /// CPU cycles per item.
    pub cpu_cycles: f64,
    /// Bytes moved through the memory system per item.
    pub membw_bytes: f64,
    /// Bytes received from the network per item.
    pub nic_rx_bytes: f64,
    /// Bytes transmitted to the network per item.
    pub nic_tx_bytes: f64,
    /// Bytes of memory held while the item is in flight.
    pub resident_bytes: f64,
    /// How long an item stays resident, in seconds.
    pub residency_secs: f64,
}

impl ResourceVector {
    /// Component-wise sum of two demand vectors.
    pub fn plus(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector {
            cpu_cycles: self.cpu_cycles + other.cpu_cycles,
            membw_bytes: self.membw_bytes + other.membw_bytes,
            nic_rx_bytes: self.nic_rx_bytes + other.nic_rx_bytes,
            nic_tx_bytes: self.nic_tx_bytes + other.nic_tx_bytes,
            resident_bytes: self.resident_bytes + other.resident_bytes,
            residency_secs: self.residency_secs.max(other.residency_secs),
        }
    }

    /// Scales every demand by a factor.
    pub fn scaled(&self, factor: f64) -> ResourceVector {
        ResourceVector {
            cpu_cycles: self.cpu_cycles * factor,
            membw_bytes: self.membw_bytes * factor,
            nic_rx_bytes: self.nic_rx_bytes * factor,
            nic_tx_bytes: self.nic_tx_bytes * factor,
            resident_bytes: self.resident_bytes * factor,
            residency_secs: self.residency_secs,
        }
    }
}

/// Per-resource utilization at a given operating rate, each in `[0, ∞)`
/// (values above 1.0 mean the demand is infeasible on this node).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Utilization {
    /// CPU utilization fraction.
    pub cpu: f64,
    /// Memory-bandwidth utilization fraction (of nominal bandwidth).
    pub membw: f64,
    /// NIC receive utilization fraction.
    pub nic_rx: f64,
    /// NIC transmit utilization fraction.
    pub nic_tx: f64,
    /// Memory-capacity utilization fraction.
    pub mem_capacity: f64,
}

impl Utilization {
    /// The most-utilized resource and its fraction.
    pub fn max_component(&self) -> (Resource, f64) {
        let pairs = [
            (Resource::Cpu, self.cpu),
            (Resource::MemBw, self.membw),
            (Resource::NicRx, self.nic_rx),
            (Resource::NicTx, self.nic_tx),
            (Resource::MemCapacity, self.mem_capacity),
        ];
        pairs
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("utilization is finite"))
            .expect("non-empty")
    }
}

/// Specification of a compute node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Human-readable model name (e.g. `"C-v1"`).
    pub name: String,
    /// Physical core count.
    pub cores: u32,
    /// Core clock in GHz.
    pub ghz: f64,
    /// NIC line rate per direction, in gigabits per second.
    pub nic_gbps: f64,
    /// Memory capacity in bytes.
    pub mem_bytes: u64,
    /// Nominal memory bandwidth in bytes per second.
    pub membw_bytes_per_sec: f64,
    /// Node power draw in watts (host only; GPUs accounted separately).
    pub watts: f64,
    /// Number of training accelerators attached (0 for compute/storage).
    pub gpus: u32,
    /// Power per attached accelerator in watts.
    pub gpu_watts: f64,
}

impl NodeSpec {
    /// C-v1 compute server (Table X): 18 cores, 12.5 Gbps, 64 GB, 75 GB/s.
    pub fn c_v1() -> Self {
        Self {
            name: "C-v1".into(),
            cores: 18,
            ghz: 2.5,
            nic_gbps: 12.5,
            mem_bytes: 64 << 30,
            membw_bytes_per_sec: 75e9,
            watts: 300.0,
            gpus: 0,
            gpu_watts: 0.0,
        }
    }

    /// C-v2 compute server (Table X): 26 cores, 25 Gbps, 64 GB, 92 GB/s.
    pub fn c_v2() -> Self {
        Self {
            name: "C-v2".into(),
            cores: 26,
            ghz: 2.5,
            nic_gbps: 25.0,
            mem_bytes: 64 << 30,
            membw_bytes_per_sec: 92e9,
            watts: 350.0,
            gpus: 0,
            gpu_watts: 0.0,
        }
    }

    /// C-v3 compute server (Table X): 36 cores, 25 Gbps, 64 GB, 83 GB/s.
    pub fn c_v3() -> Self {
        Self {
            name: "C-v3".into(),
            cores: 36,
            ghz: 2.5,
            nic_gbps: 25.0,
            mem_bytes: 64 << 30,
            membw_bytes_per_sec: 83e9,
            watts: 400.0,
            gpus: 0,
            gpu_watts: 0.0,
        }
    }

    /// The 2-socket, 8-GPU trainer node of §VI: 2×28 cores, 2×100 Gbps
    /// front-end NICs, 150 GB/s aggregate memory bandwidth.
    pub fn trainer() -> Self {
        Self {
            name: "trainer-8gpu".into(),
            cores: 56,
            ghz: 2.5,
            nic_gbps: 200.0,
            mem_bytes: 512 << 30,
            membw_bytes_per_sec: 150e9,
            watts: 800.0,
            gpus: 8,
            gpu_watts: 300.0,
        }
    }

    /// An HDD storage node chassis: modest CPU, 25 Gbps, hosting many disks
    /// (the disks themselves are modeled in `tectonic`).
    pub fn storage_host() -> Self {
        Self {
            name: "storage-host".into(),
            cores: 16,
            ghz: 2.2,
            nic_gbps: 25.0,
            mem_bytes: 64 << 30,
            membw_bytes_per_sec: 60e9,
            watts: 250.0,
            gpus: 0,
            gpu_watts: 0.0,
        }
    }

    /// Total CPU cycles per second across all cores.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cores as f64 * self.ghz * 1e9
    }

    /// NIC capacity per direction in bytes per second.
    pub fn nic_bytes_per_sec(&self) -> f64 {
        self.nic_gbps * 1e9 / 8.0
    }

    /// Usable memory bandwidth (nominal × the ≈70% saturation derate).
    pub fn usable_membw(&self) -> f64 {
        self.membw_bytes_per_sec * MEMBW_USABLE_FRACTION
    }

    /// Total node power including attached accelerators.
    pub fn total_watts(&self) -> f64 {
        self.watts + self.gpus as f64 * self.gpu_watts
    }

    /// Maximum sustainable item rate for a per-item demand vector: the
    /// minimum over each resource of `capacity / demand`.
    ///
    /// Returns `f64::INFINITY` when the demand vector is all-zero.
    pub fn max_rate(&self, per_item: &ResourceVector) -> f64 {
        let mut rate = f64::INFINITY;
        if per_item.cpu_cycles > 0.0 {
            rate = rate.min(self.cycles_per_sec() / per_item.cpu_cycles);
        }
        if per_item.membw_bytes > 0.0 {
            rate = rate.min(self.usable_membw() / per_item.membw_bytes);
        }
        if per_item.nic_rx_bytes > 0.0 {
            rate = rate.min(self.nic_bytes_per_sec() / per_item.nic_rx_bytes);
        }
        if per_item.nic_tx_bytes > 0.0 {
            rate = rate.min(self.nic_bytes_per_sec() / per_item.nic_tx_bytes);
        }
        if per_item.resident_bytes > 0.0 && per_item.residency_secs > 0.0 {
            rate = rate
                .min(self.mem_bytes as f64 / (per_item.resident_bytes * per_item.residency_secs));
        }
        rate
    }

    /// Per-resource utilization when operating at `rate` items/second.
    pub fn utilization_at(&self, per_item: &ResourceVector, rate: f64) -> Utilization {
        Utilization {
            cpu: rate * per_item.cpu_cycles / self.cycles_per_sec(),
            membw: rate * per_item.membw_bytes / self.membw_bytes_per_sec,
            nic_rx: rate * per_item.nic_rx_bytes / self.nic_bytes_per_sec(),
            nic_tx: rate * per_item.nic_tx_bytes / self.nic_bytes_per_sec(),
            mem_capacity: per_item.resident_bytes * per_item.residency_secs * rate
                / self.mem_bytes as f64,
        }
    }

    /// The resource that binds first for this demand vector.
    pub fn bottleneck(&self, per_item: &ResourceVector) -> Resource {
        let rate = self.max_rate(per_item);
        if !rate.is_finite() {
            return Resource::Cpu;
        }
        // Evaluate utilization at (just below) the max rate; the component
        // closest to saturation is the bottleneck. Memory bandwidth is
        // compared against its *usable* fraction.
        let u = self.utilization_at(per_item, rate);
        let pairs = [
            (Resource::Cpu, u.cpu),
            (Resource::MemBw, u.membw / MEMBW_USABLE_FRACTION),
            (Resource::NicRx, u.nic_rx),
            (Resource::NicTx, u.nic_tx),
            (Resource::MemCapacity, u.mem_capacity),
        ];
        pairs
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("utilization is finite"))
            .expect("non-empty")
            .0
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} cores @ {:.1} GHz, {} Gbps NIC, {} GB mem, {:.0} GB/s membw",
            self.name,
            self.cores,
            self.ghz,
            self.nic_gbps,
            self.mem_bytes >> 30,
            self.membw_bytes_per_sec / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_x() {
        let v1 = NodeSpec::c_v1();
        assert_eq!((v1.cores, v1.nic_gbps as u32), (18, 12));
        let v2 = NodeSpec::c_v2();
        assert_eq!((v2.cores, v2.nic_gbps as u32), (26, 25));
        let v3 = NodeSpec::c_v3();
        assert_eq!((v3.cores, v3.nic_gbps as u32), (36, 25));
        // Memory bandwidth grows far slower than cores/NIC across versions.
        let core_growth = v3.cores as f64 / v1.cores as f64;
        let membw_growth = v3.membw_bytes_per_sec / v1.membw_bytes_per_sec;
        assert!(core_growth > 1.8 && membw_growth < 1.2);
    }

    #[test]
    fn max_rate_takes_binding_minimum() {
        let node = NodeSpec::c_v1();
        // NIC-bound demand: 1 byte rx per item, negligible everything else.
        let v = ResourceVector {
            nic_rx_bytes: 1.0,
            ..Default::default()
        };
        let r = node.max_rate(&v);
        assert!((r - node.nic_bytes_per_sec()).abs() / r < 1e-9);
        assert_eq!(node.bottleneck(&v), Resource::NicRx);
    }

    #[test]
    fn membw_derate_applies() {
        let node = NodeSpec::c_v1();
        let v = ResourceVector {
            membw_bytes: 1.0,
            ..Default::default()
        };
        let r = node.max_rate(&v);
        assert!((r - 75e9 * 0.70).abs() < 1.0);
        assert_eq!(node.bottleneck(&v), Resource::MemBw);
    }

    #[test]
    fn memory_capacity_caps_rate() {
        let node = NodeSpec::c_v1();
        let v = ResourceVector {
            resident_bytes: (1u64 << 30) as f64, // 1 GiB held per item
            residency_secs: 8.0,                 // for 8 seconds
            ..Default::default()
        };
        let r = node.max_rate(&v);
        assert!((r - 8.0).abs() < 1e-9); // 64 GiB / (1 GiB × 8 s)
        assert_eq!(node.bottleneck(&v), Resource::MemCapacity);
    }

    #[test]
    fn utilization_is_linear_in_rate() {
        let node = NodeSpec::c_v2();
        let v = ResourceVector {
            cpu_cycles: 1000.0,
            membw_bytes: 10.0,
            ..Default::default()
        };
        let u1 = node.utilization_at(&v, 1e6);
        let u2 = node.utilization_at(&v, 2e6);
        assert!((u2.cpu - 2.0 * u1.cpu).abs() < 1e-12);
        assert!((u2.membw - 2.0 * u1.membw).abs() < 1e-12);
    }

    #[test]
    fn zero_demand_is_unbounded() {
        let node = NodeSpec::c_v3();
        assert!(node.max_rate(&ResourceVector::default()).is_infinite());
    }

    #[test]
    fn vector_algebra() {
        let a = ResourceVector {
            cpu_cycles: 1.0,
            membw_bytes: 2.0,
            ..Default::default()
        };
        let b = ResourceVector {
            cpu_cycles: 3.0,
            nic_tx_bytes: 4.0,
            ..Default::default()
        };
        let s = a.plus(&b);
        assert_eq!(s.cpu_cycles, 4.0);
        assert_eq!(s.membw_bytes, 2.0);
        assert_eq!(s.nic_tx_bytes, 4.0);
        let d = s.scaled(2.0);
        assert_eq!(d.cpu_cycles, 8.0);
    }

    #[test]
    fn trainer_power_includes_gpus() {
        let t = NodeSpec::trainer();
        assert!(t.total_watts() > 8.0 * 300.0);
    }

    #[test]
    fn utilization_max_component() {
        let u = Utilization {
            cpu: 0.3,
            membw: 0.9,
            nic_rx: 0.5,
            nic_tx: 0.1,
            mem_capacity: 0.2,
        };
        assert_eq!(u.max_component(), (Resource::MemBw, 0.9));
    }
}
