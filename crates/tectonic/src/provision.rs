//! Storage-node provisioning classes and the throughput-to-storage gap.
//!
//! §VII quantifies the central storage-provisioning tension: given
//! industry-scale dataset sizes, trainer throughput, preprocessing data
//! amplification, and small IO sizes on HDDs, the fleet must provision over
//! **8× more HDD capacity than the datasets need just to meet IOPS demand**
//! (after triplicate replication). SSD nodes flip the trade: 326% of the
//! IOPS per watt but only 9% of the capacity per watt. A tiered layout
//! placing the *popular* bytes (Fig. 7) on flash captures most of the IOPS
//! with a fraction of the flash capacity.

use dsi_types::ByteSize;
use serde::{Deserialize, Serialize};

/// A class of storage node, characterized at the node (chassis) level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageNodeClass {
    /// Class name.
    pub name: String,
    /// Usable capacity per node.
    pub capacity: ByteSize,
    /// Effective random-read IOPS per node under the service stack.
    pub iops: f64,
    /// Effective sustained read bandwidth per node (bytes/s) at the
    /// workload's mean IO size.
    pub read_bw: f64,
    /// Node power in watts.
    pub watts: f64,
}

impl StorageNodeClass {
    /// An HDD storage node: 36 × 18 TB disks, ~4.3k effective IOPS, 538 W.
    pub fn hdd() -> Self {
        Self {
            name: "hdd-node".into(),
            capacity: ByteSize::tib(36 * 18),
            iops: 4_320.0,
            read_bw: 2.0e9,
            watts: 538.0,
        }
    }

    /// An SSD storage node calibrated to §VII: 326% of the HDD node's IOPS
    /// per watt, 9% of its capacity per watt (at equal node power).
    pub fn ssd() -> Self {
        let hdd = Self::hdd();
        Self {
            name: "ssd-node".into(),
            capacity: hdd.capacity.scale(0.09),
            iops: hdd.iops * 3.26,
            read_bw: 6.0e9,
            watts: hdd.watts,
        }
    }

    /// IOPS per watt.
    pub fn iops_per_watt(&self) -> f64 {
        self.iops / self.watts
    }

    /// Capacity bytes per watt.
    pub fn capacity_per_watt(&self) -> f64 {
        self.capacity.bytes() as f64 / self.watts
    }
}

/// The result of provisioning storage for a training workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvisionPlan {
    /// Nodes needed to hold the (replicated) dataset.
    pub nodes_for_capacity: f64,
    /// Nodes needed to serve the IOPS demand.
    pub nodes_for_iops: f64,
    /// Nodes actually provisioned (the max of the two).
    pub nodes_provisioned: f64,
    /// `nodes_for_iops / nodes_for_capacity`: >1 means IOPS-bound — the
    /// paper's "throughput-to-storage gap".
    pub throughput_to_storage_gap: f64,
    /// Total provisioned watts.
    pub watts: f64,
}

impl ProvisionPlan {
    /// Provisions nodes of `class` for a dataset of `dataset_bytes`
    /// (logical), replicated `replication`×, that must serve
    /// `demand_bytes_per_sec` of reads at `mean_io_size` bytes per IO.
    ///
    /// # Panics
    ///
    /// Panics if `mean_io_size` is zero.
    pub fn for_workload(
        class: &StorageNodeClass,
        dataset_bytes: ByteSize,
        replication: u32,
        demand_bytes_per_sec: f64,
        mean_io_size: u64,
    ) -> ProvisionPlan {
        assert!(mean_io_size > 0, "mean IO size must be positive");
        let physical = dataset_bytes.bytes() as f64 * replication as f64;
        let nodes_for_capacity = physical / class.capacity.bytes() as f64;
        let iops_demand = demand_bytes_per_sec / mean_io_size as f64;
        let by_iops = iops_demand / class.iops;
        let by_bw = demand_bytes_per_sec / class.read_bw;
        let nodes_for_iops = by_iops.max(by_bw);
        let nodes_provisioned = nodes_for_capacity.max(nodes_for_iops);
        ProvisionPlan {
            nodes_for_capacity,
            nodes_for_iops,
            nodes_provisioned,
            throughput_to_storage_gap: nodes_for_iops / nodes_for_capacity,
            watts: nodes_provisioned * class.watts,
        }
    }
}

/// A tiered plan: hot (popular) bytes on SSD, the rest on HDD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TieredPlacement {
    /// The HDD leg of the plan.
    pub cold: ProvisionPlan,
    /// The SSD leg of the plan.
    pub hot: ProvisionPlan,
}

impl TieredPlacement {
    /// Splits the workload: `hot_byte_fraction` of the dataset absorbs
    /// `hot_traffic_fraction` of the IO demand (from the popularity CDF of
    /// Fig. 7) and goes to SSD; the remainder goes to HDD.
    ///
    /// # Panics
    ///
    /// Panics if either fraction is outside `[0, 1]`.
    pub fn plan(
        dataset_bytes: ByteSize,
        replication: u32,
        demand_bytes_per_sec: f64,
        mean_io_size: u64,
        hot_byte_fraction: f64,
        hot_traffic_fraction: f64,
    ) -> TieredPlacement {
        assert!(
            (0.0..=1.0).contains(&hot_byte_fraction),
            "fraction in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&hot_traffic_fraction),
            "fraction in [0,1]"
        );
        let hot = ProvisionPlan::for_workload(
            &StorageNodeClass::ssd(),
            dataset_bytes.scale(hot_byte_fraction),
            replication,
            demand_bytes_per_sec * hot_traffic_fraction,
            mean_io_size,
        );
        let cold = ProvisionPlan::for_workload(
            &StorageNodeClass::hdd(),
            dataset_bytes.scale(1.0 - hot_byte_fraction),
            replication,
            demand_bytes_per_sec * (1.0 - hot_traffic_fraction),
            mean_io_size,
        );
        TieredPlacement { cold, hot }
    }

    /// Total provisioned power.
    pub fn watts(&self) -> f64 {
        self.cold.watts + self.hot.watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RM1-flavoured workload used across provisioning tests: ~12 PB used
    /// partitions, many trainers pulling tens of GB/s from storage at
    /// Table VI's ~23 KiB mean IO size.
    fn rm1_demand() -> (ByteSize, f64, u64) {
        (ByteSize(12 * dsi_types::PIB), 64.0 * 0.8e9, 23_200)
    }

    #[test]
    fn ssd_class_matches_paper_ratios() {
        let hdd = StorageNodeClass::hdd();
        let ssd = StorageNodeClass::ssd();
        assert!((ssd.iops_per_watt() / hdd.iops_per_watt() - 3.26).abs() < 0.01);
        assert!((ssd.capacity_per_watt() / hdd.capacity_per_watt() - 0.09).abs() < 0.001);
    }

    #[test]
    fn hdd_provisioning_is_iops_bound_with_large_gap() {
        let (bytes, demand, io) = rm1_demand();
        let plan = ProvisionPlan::for_workload(&StorageNodeClass::hdd(), bytes, 3, demand, io);
        assert!(
            plan.throughput_to_storage_gap > 8.0,
            "gap {:.1} should exceed 8x",
            plan.throughput_to_storage_gap
        );
        assert_eq!(plan.nodes_provisioned, plan.nodes_for_iops);
    }

    #[test]
    fn pure_ssd_is_capacity_bound() {
        let (bytes, demand, io) = rm1_demand();
        let plan = ProvisionPlan::for_workload(&StorageNodeClass::ssd(), bytes, 3, demand, io);
        // The inverse problem: on SSD the dataset, not the IOPS, dominates.
        assert!(plan.throughput_to_storage_gap < 1.0);
        assert_eq!(plan.nodes_provisioned, plan.nodes_for_capacity);
    }

    #[test]
    fn tiering_popular_bytes_saves_power() {
        let (bytes, demand, io) = rm1_demand();
        let all_hdd = ProvisionPlan::for_workload(&StorageNodeClass::hdd(), bytes, 3, demand, io);
        // Fig. 7 for RM1: ~39% of bytes absorb ~80% of traffic.
        let tiered = TieredPlacement::plan(bytes, 3, demand, io, 0.39, 0.80);
        assert!(
            tiered.watts() < all_hdd.watts,
            "tiered {:.0} W should beat all-HDD {:.0} W",
            tiered.watts(),
            all_hdd.watts
        );
    }

    #[test]
    fn capacity_bound_workload_has_gap_below_one() {
        // Tiny demand, huge dataset: capacity-bound.
        let plan = ProvisionPlan::for_workload(
            &StorageNodeClass::hdd(),
            ByteSize(100 * dsi_types::PIB),
            3,
            1e6,
            1 << 20,
        );
        assert!(plan.throughput_to_storage_gap < 1.0);
    }

    #[test]
    #[should_panic(expected = "mean IO size")]
    fn zero_io_size_panics() {
        ProvisionPlan::for_workload(&StorageNodeClass::hdd(), ByteSize::gib(1), 3, 1e6, 0);
    }
}
