//! Strongly-typed identifiers used throughout the DSI pipeline.
//!
//! Newtypes keep the many `u64`-shaped identities in the pipeline from being
//! confused with one another (a [`FeatureId`] is never a [`TableId`]).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }

        impl From<$name> for u64 {
            fn from(v: $name) -> u64 {
                v.0
            }
        }
    };
}

id_type!(
    /// Identifies a single logged feature within a table schema.
    ///
    /// Production tables log tens of thousands of features; each is addressed
    /// by a stable numeric id so schemas can evolve without renames.
    FeatureId,
    "f"
);

id_type!(
    /// Identifies a warehouse table (one per recommendation model family).
    TableId,
    "tbl"
);

id_type!(
    /// Identifies a training job (exploratory, combo, or release candidate).
    JobId,
    "job"
);

id_type!(
    /// Identifies a physical node (storage, compute, or trainer).
    NodeId,
    "node"
);

id_type!(
    /// Identifies a geographic region of the fleet.
    RegionId,
    "r"
);

id_type!(
    /// Identifies a DPP preprocessing session (one per training job).
    SessionId,
    "sess"
);

id_type!(
    /// Identifies a self-contained unit of preprocessing work — a contiguous
    /// run of rows handed from the DPP Master to a Worker.
    SplitId,
    "split"
);

id_type!(
    /// Identifies a DPP Worker within a session.
    WorkerId,
    "w"
);

/// Identifies one date partition of a table (e.g. one day of samples).
///
/// Partitions are ordered by day index; a training job selects a contiguous
/// range of them (the "row filter" dimension of dataset selection).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PartitionId {
    /// Days since the table's epoch.
    pub day: u32,
}

impl PartitionId {
    /// Creates a partition id for the given day index.
    pub fn new(day: u32) -> Self {
        Self { day }
    }

    /// Returns the partition `n` days later.
    pub fn plus_days(self, n: u32) -> Self {
        Self { day: self.day + n }
    }

    /// Returns an iterator over the `n` partitions starting at `self`.
    pub fn range(self, n: u32) -> impl Iterator<Item = PartitionId> {
        (self.day..self.day + n).map(PartitionId::new)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ds={}", self.day)
    }
}

impl From<u32> for PartitionId {
    fn from(day: u32) -> Self {
        Self { day }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(FeatureId(7).to_string(), "f7");
        assert_eq!(TableId(3).to_string(), "tbl3");
        assert_eq!(PartitionId::new(12).to_string(), "ds=12");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(FeatureId(1));
        set.insert(FeatureId(2));
        set.insert(FeatureId(1));
        assert_eq!(set.len(), 2);
        assert!(FeatureId(1) < FeatureId(2));
    }

    #[test]
    fn partition_range_is_contiguous() {
        let parts: Vec<_> = PartitionId::new(5).range(3).collect();
        assert_eq!(
            parts,
            vec![
                PartitionId::new(5),
                PartitionId::new(6),
                PartitionId::new(7)
            ]
        );
    }

    #[test]
    fn round_trip_u64() {
        let id = JobId::from(42u64);
        assert_eq!(u64::from(id), 42);
    }

    #[test]
    fn plus_days_advances() {
        assert_eq!(PartitionId::new(3).plus_days(4), PartitionId::new(7));
    }
}
