//! The three metric primitives: [`Counter`], [`Gauge`], [`Histogram`].
//!
//! All updates are plain atomic operations — no locks on the hot path, so
//! workers, clients, and storage nodes can emit from any thread at full
//! rate. Histograms use log-linear buckets (octaves split into
//! [`Histogram::SUBBUCKETS`] linear sub-buckets), bounding quantile
//! relative error to `1/SUBBUCKETS` while keeping memory fixed.

use std::sync::atomic::{AtomicU64, Ordering};

/// Adds `v` to an f64 stored as atomic bits (CAS loop).
fn f64_add(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match bits.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// Raises an f64 stored as atomic bits to at least `v` (CAS loop).
fn f64_max(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) >= v {
            return;
        }
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// A monotonically-increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the counter to at least `v`.
    ///
    /// Bridges components that track their own monotone totals (cache
    /// stats, device stats): re-publishing a snapshot is idempotent
    /// instead of double-counting.
    #[inline]
    pub fn advance_to(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (f64).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` (may be negative).
    #[inline]
    pub fn add(&self, v: f64) {
        f64_add(&self.bits, v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// An immutable view of a histogram's state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// Largest recorded value (exact).
    pub max: f64,
}

/// A lock-free log-linear histogram over non-negative values.
///
/// Values are assigned to one of 512 buckets: 64 powers-of-two octaves
/// (2⁻³² … 2³¹) each split into 8 linear sub-buckets, clamping outliers
/// into the extreme buckets. Quantile estimates return a bucket's
/// midpoint, so relative error is bounded by half a sub-bucket (~6%) and
/// quantiles are monotone in the requested rank by construction.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    /// Linear sub-buckets per power-of-two octave.
    pub const SUBBUCKETS: usize = 8;
    /// Smallest representable octave exponent.
    const MIN_EXP: i32 = -32;
    /// Largest representable octave exponent.
    const MAX_EXP: i32 = 31;
    /// Total bucket count.
    pub const BUCKETS: usize = ((Self::MAX_EXP - Self::MIN_EXP + 1) as usize) * Self::SUBBUCKETS;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..Self::BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            max_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// The bucket a value lands in.
    pub fn bucket_index(v: f64) -> usize {
        if v.is_nan() || v <= 0.0 {
            return 0;
        }
        let e = (v.log2().floor() as i32).clamp(Self::MIN_EXP, Self::MAX_EXP);
        let lo = (e as f64).exp2();
        let frac = (v / lo - 1.0).clamp(0.0, 1.0 - 1e-9);
        (e - Self::MIN_EXP) as usize * Self::SUBBUCKETS + (frac * Self::SUBBUCKETS as f64) as usize
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lower(i: usize) -> f64 {
        let octave = (i / Self::SUBBUCKETS) as i32 + Self::MIN_EXP;
        let sub = (i % Self::SUBBUCKETS) as f64;
        (octave as f64).exp2() * (1.0 + sub / Self::SUBBUCKETS as f64)
    }

    /// Exclusive upper bound of bucket `i`.
    pub fn bucket_upper(i: usize) -> f64 {
        if i + 1 >= Self::BUCKETS {
            f64::INFINITY
        } else {
            Self::bucket_lower(i + 1)
        }
    }

    /// Records one value (negative and NaN values count as zero).
    #[inline]
    pub fn record(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        f64_add(&self.sum_bits, v);
        f64_max(&self.max_bits, v);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Quantile estimate for `q` in `[0, 1]` (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Midpoint of the bucket, capped by the observed max so
                // single-value histograms report that value's bucket.
                let mid = (Self::bucket_lower(i)
                    + Self::bucket_lower(i) / Self::SUBBUCKETS as f64 / 2.0)
                    .min(self.max());
                return mid;
            }
        }
        self.max()
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// A consistent-enough view for reporting (concurrent updates may be
    /// partially visible, as with any sampling of live counters).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let sum = self.sum();
        HistogramSnapshot {
            count,
            sum,
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(2.5);
        g.add(-0.5);
        assert!((g.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_boundaries_are_consistent() {
        // Every bucket's lower bound maps back to that bucket, and
        // upper/lower bounds tile the positive axis.
        for i in 1..Histogram::BUCKETS - 1 {
            let lo = Histogram::bucket_lower(i);
            assert_eq!(
                Histogram::bucket_index(lo),
                i,
                "lower bound of bucket {i} ({lo}) must land in it"
            );
            assert_eq!(Histogram::bucket_upper(i), Histogram::bucket_lower(i + 1));
            // A value just below the upper bound stays in bucket i.
            let hi = Histogram::bucket_upper(i);
            assert_eq!(Histogram::bucket_index(hi * (1.0 - 1e-12)), i);
        }
    }

    #[test]
    fn zero_negative_and_nan_fold_to_bucket_zero() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-5.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        let h = Histogram::new();
        h.record(-1.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn extremes_clamp_into_end_buckets() {
        assert_eq!(Histogram::bucket_index(1e-300), 0);
        assert_eq!(Histogram::bucket_index(1e300), Histogram::BUCKETS - 1);
        let h = Histogram::new();
        h.record(1e300);
        assert_eq!(h.max(), 1e300);
        assert!(h.quantile(0.5) <= 1e300);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i as f64);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
        for (q, exact) in [(s.p50, 500.0), (s.p95, 950.0), (s.p99, 990.0)] {
            let rel = (q - exact).abs() / exact;
            assert!(rel < 0.10, "estimate {q} vs {exact}: rel err {rel:.3}");
        }
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn single_value_quantiles_report_that_value() {
        let h = Histogram::new();
        h.record(0.125);
        let s = h.snapshot();
        assert_eq!(s.max, 0.125);
        assert!(s.p50 <= 0.125 && s.p50 > 0.1, "p50 {}", s.p50);
        assert_eq!(s.p50, s.p99);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0.0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p95, 0.0);
        assert_eq!(s.p99, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn quantile_error_bounded_at_bucket_boundaries() {
        // Values recorded exactly at bucket lower bounds are the
        // worst-case for a midpoint estimator: the estimate sits half a
        // sub-bucket above the true value. The documented bound is
        // `1 / (2 * SUBBUCKETS)` of an octave, i.e. relative error
        // <= 1/16 + slack for the octave's width.
        let bound = 1.0 / Histogram::SUBBUCKETS as f64; // 12.5% worst case
        for i in (Histogram::BUCKETS / 2)..(Histogram::BUCKETS / 2 + 32) {
            let v = Histogram::bucket_lower(i);
            let h = Histogram::new();
            for _ in 0..100 {
                h.record(v);
            }
            // One far outlier so the observed-max cap cannot mask the
            // midpoint estimator (p50/p95/p99 ranks all stay in v's
            // bucket: ceil(0.99 * 101) = 100 <= 100).
            h.record(v * 128.0);
            let s = h.snapshot();
            for (name, q) in [("p50", s.p50), ("p95", s.p95), ("p99", s.p99)] {
                let rel = (q - v).abs() / v;
                assert!(rel <= bound, "bucket {i} {name}: {q} vs {v}, rel {rel:.4}");
            }
        }
    }

    #[test]
    fn quantiles_accurate_on_uniform_and_skewed_distributions() {
        // Uniform [1, 10_000]: p50/p95/p99 within the log-linear bound.
        let h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i as f64);
        }
        for (q, exact) in [(0.50, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let est = h.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.10, "uniform q{q}: {est} vs {exact} rel {rel:.3}");
        }

        // Heavily skewed: 99 fast values + 1 slow outlier. p50 tracks the
        // fast mode, p99 lands within one sub-bucket of the outlier's
        // magnitude — and never above the exact max.
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(0.001);
        }
        h.record(10.0);
        let p50 = h.quantile(0.50);
        assert!((p50 - 0.001).abs() / 0.001 < 0.13, "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= 0.001 && p99 <= h.max(), "p99 {p99}");
        assert_eq!(h.quantile(1.0), 10.0, "q=1 caps at the exact max");
    }

    #[test]
    fn quantiles_are_monotone_in_rank() {
        let h = Histogram::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..5_000 {
            // Deterministic xorshift values across several octaves.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            h.record((state % 100_000) as f64 / 100.0);
        }
        let mut prev = 0.0;
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let est = h.quantile(q);
            assert!(est >= prev, "quantile({q}) = {est} < {prev}");
            prev = est;
        }
        assert!(prev <= h.max());
    }
}
