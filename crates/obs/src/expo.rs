//! Exposition: Prometheus text format and a JSON snapshot.
//!
//! Histograms are exposed as Prometheus *summaries* (quantile series plus
//! `_sum`/`_count`) — the log-linear buckets already reduce to stable
//! p50/p95/p99 estimates, and summaries keep scrape output proportional
//! to the series count rather than the bucket count.

use std::fmt::Write as _;

use crate::registry::{MetricKey, MetricValue, Registry};

fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn label_block(key: &MetricKey, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = key
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN; null keeps consumers honest.
        "null".to_string()
    }
}

/// Renders the registry in Prometheus text exposition format.
///
/// Counters and gauges become single samples; histograms become
/// summaries with `quantile="0.5" / "0.95" / "0.99"` series plus
/// `_sum`, `_count`, and a `_max` gauge.
pub fn prometheus_text(registry: &Registry) -> String {
    let snapshot = registry.snapshot();
    let mut out = String::new();
    let mut last_name: Option<(String, &'static str)> = None;
    for (key, value) in &snapshot {
        let kind = match value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "summary",
        };
        if last_name.as_ref() != Some(&(key.name.clone(), kind)) {
            let _ = writeln!(out, "# TYPE {} {kind}", key.name);
            last_name = Some((key.name.clone(), kind));
        }
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {v}", key.name, label_block(key, None));
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    key.name,
                    label_block(key, None),
                    fmt_f64(*v)
                );
            }
            MetricValue::Histogram(s) => {
                for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        key.name,
                        label_block(key, Some(("quantile", q))),
                        fmt_f64(v)
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    key.name,
                    label_block(key, None),
                    fmt_f64(s.sum)
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    key.name,
                    label_block(key, None),
                    s.count
                );
                let _ = writeln!(
                    out,
                    "{}_max{} {}",
                    key.name,
                    label_block(key, None),
                    fmt_f64(s.max)
                );
            }
        }
    }
    out
}

/// Renders the registry as a JSON document:
/// `{"metrics":[{"name":...,"type":...,"labels":{...},...}]}`.
pub fn json_snapshot(registry: &Registry) -> String {
    let snapshot = registry.snapshot();
    let mut out = String::from("{\"metrics\":[");
    for (i, (key, value)) in snapshot.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\",", escape_json(&key.name));
        out.push_str("\"labels\":{");
        for (j, (k, v)) in key.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("},");
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "\"type\":\"gauge\",\"value\":{}", json_f64(*v));
            }
            MetricValue::Histogram(s) => {
                let _ = write!(
                    out,
                    "\"type\":\"summary\",\"count\":{},\"sum\":{},\"mean\":{},\
                     \"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}",
                    s.count,
                    json_f64(s.sum),
                    json_f64(s.mean),
                    json_f64(s.p50),
                    json_f64(s.p95),
                    json_f64(s.p99),
                    json_f64(s.max)
                );
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_golden_output() {
        let r = Registry::new();
        r.counter("dsi_cache_hits_total", &[("node", "0")]).add(7);
        r.counter("dsi_cache_hits_total", &[("node", "1")]).add(3);
        r.gauge("dsi_master_queue_depth", &[]).set(12.0);
        let h = r.histogram("dsi_client_fetch_seconds", &[]);
        h.record(0.5);
        h.record(0.5);

        let text = prometheus_text(&r);
        let expected = "\
# TYPE dsi_cache_hits_total counter
dsi_cache_hits_total{node=\"0\"} 7
dsi_cache_hits_total{node=\"1\"} 3
# TYPE dsi_client_fetch_seconds summary
dsi_client_fetch_seconds{quantile=\"0.5\"} 0.5
dsi_client_fetch_seconds{quantile=\"0.95\"} 0.5
dsi_client_fetch_seconds{quantile=\"0.99\"} 0.5
dsi_client_fetch_seconds_sum 1
dsi_client_fetch_seconds_count 2
dsi_client_fetch_seconds_max 0.5
# TYPE dsi_master_queue_depth gauge
dsi_master_queue_depth 12
";
        assert_eq!(text, expected);
    }

    #[test]
    fn type_header_emitted_once_per_name() {
        let r = Registry::new();
        r.counter("m", &[("a", "1")]).inc();
        r.counter("m", &[("a", "2")]).inc();
        let text = prometheus_text(&r);
        assert_eq!(text.matches("# TYPE m counter").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("m", &[("path", "a\"b\\c\nd")]).inc();
        let text = prometheus_text(&r);
        assert!(text.contains("path=\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn json_is_wellformed_and_complete() {
        let r = Registry::new();
        r.counter("c", &[("k", "v")]).add(2);
        r.gauge("g", &[]).set(0.25);
        r.histogram("h", &[]).record(1.0);
        let json = json_snapshot(&r);
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.ends_with("]}"));
        assert!(json
            .contains("\"name\":\"c\",\"labels\":{\"k\":\"v\"},\"type\":\"counter\",\"value\":2"));
        assert!(json.contains("\"type\":\"gauge\",\"value\":0.25"));
        assert!(json.contains("\"type\":\"summary\",\"count\":1"));
        // Balanced braces/brackets (cheap well-formedness check given
        // all strings are escaped).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let r = Registry::new();
        assert_eq!(prometheus_text(&r), "");
        assert_eq!(json_snapshot(&r), "{\"metrics\":[]}");
    }
}
