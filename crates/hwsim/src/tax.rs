//! The "datacenter tax": host-side costs of moving data over the network.
//!
//! Even without extraction or transformation, production data loading pays
//! for the network stack, memory management, TLS decryption, and
//! Thrift-style wire deserialization (§VI-B, [Kanev et al., ISCA'15]).
//! TLS in particular amplifies memory-bandwidth demand ≈3× (§VII). This
//! module prices those costs as [`ResourceVector`]s per payload byte so that
//! trainer- and worker-side models charge them uniformly.

use crate::node::ResourceVector;
use serde::{Deserialize, Serialize};

/// Cost coefficients for datacenter-tax operations, per payload byte.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatacenterTax {
    /// CPU cycles per byte for TLS record decryption/encryption.
    pub tls_cycles_per_byte: f64,
    /// Memory-bandwidth amplification factor of TLS (bytes moved per
    /// payload byte: read ciphertext, write plaintext, key schedule traffic).
    pub tls_membw_amplification: f64,
    /// CPU cycles per byte for wire-format (Thrift-style) deserialization.
    pub deser_cycles_per_byte: f64,
    /// Bytes moved per payload byte during deserialization (parse + copy).
    pub deser_membw_amplification: f64,
    /// CPU cycles per byte for kernel/user network-stack processing.
    pub netstack_cycles_per_byte: f64,
    /// Bytes moved per payload byte by the network stack (DMA + copy).
    pub netstack_membw_amplification: f64,
}

impl DatacenterTax {
    /// Production-calibrated coefficients.
    ///
    /// Chosen so that a trainer node loading preprocessed tensors at the
    /// highest per-node demand in Table VIII (≈16.5 GB/s) lands at ≈40% CPU
    /// and ≈55% memory-bandwidth utilization (Fig. 8), and so that TLS
    /// amplifies memory bandwidth ≈3× (§VII).
    pub fn production() -> Self {
        Self {
            tls_cycles_per_byte: 1.6,
            tls_membw_amplification: 3.0,
            deser_cycles_per_byte: 0.9,
            deser_membw_amplification: 1.2,
            netstack_cycles_per_byte: 0.9,
            netstack_membw_amplification: 0.8,
        }
    }

    /// A tax-free variant (e.g. for modeling NIC TLS offload + RDMA).
    pub fn none() -> Self {
        Self {
            tls_cycles_per_byte: 0.0,
            tls_membw_amplification: 0.0,
            deser_cycles_per_byte: 0.0,
            deser_membw_amplification: 0.0,
            netstack_cycles_per_byte: 0.0,
            netstack_membw_amplification: 0.0,
        }
    }

    /// A variant with TLS offloaded to the NIC (§VII hardware-offload
    /// opportunity) but software deserialization and network stack retained.
    pub fn tls_offloaded() -> Self {
        Self {
            tls_cycles_per_byte: 0.0,
            tls_membw_amplification: 0.0,
            ..Self::production()
        }
    }

    /// Total CPU cycles per received payload byte.
    pub fn rx_cycles_per_byte(&self) -> f64 {
        self.tls_cycles_per_byte + self.deser_cycles_per_byte + self.netstack_cycles_per_byte
    }

    /// Total memory-bandwidth bytes moved per received payload byte.
    pub fn rx_membw_per_byte(&self) -> f64 {
        self.tls_membw_amplification
            + self.deser_membw_amplification
            + self.netstack_membw_amplification
    }

    /// Resource demand for *receiving* `payload_bytes` over the network
    /// (TLS decrypt + deserialize + network stack + the NIC bytes
    /// themselves).
    pub fn rx_cost(&self, payload_bytes: f64) -> ResourceVector {
        ResourceVector {
            cpu_cycles: payload_bytes * self.rx_cycles_per_byte(),
            membw_bytes: payload_bytes * self.rx_membw_per_byte(),
            nic_rx_bytes: payload_bytes,
            ..Default::default()
        }
    }

    /// Resource demand for *sending* `payload_bytes` over the network
    /// (serialize + TLS encrypt + network stack + NIC bytes). Send-side
    /// serialization is slightly cheaper than parse-side.
    pub fn tx_cost(&self, payload_bytes: f64) -> ResourceVector {
        ResourceVector {
            cpu_cycles: payload_bytes
                * (self.tls_cycles_per_byte
                    + 0.6 * self.deser_cycles_per_byte
                    + self.netstack_cycles_per_byte),
            membw_bytes: payload_bytes
                * (self.tls_membw_amplification
                    + 0.6 * self.deser_membw_amplification
                    + self.netstack_membw_amplification),
            nic_tx_bytes: payload_bytes,
            ..Default::default()
        }
    }
}

impl Default for DatacenterTax {
    fn default() -> Self {
        Self::production()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;

    #[test]
    fn tls_dominates_membw_amplification() {
        let tax = DatacenterTax::production();
        assert!((tax.tls_membw_amplification - 3.0).abs() < 1e-12);
        assert!(tax.tls_membw_amplification > tax.deser_membw_amplification);
    }

    #[test]
    fn rx_cost_charges_all_resources() {
        let tax = DatacenterTax::production();
        let c = tax.rx_cost(1000.0);
        assert_eq!(c.nic_rx_bytes, 1000.0);
        assert!(c.cpu_cycles > 0.0);
        assert!(c.membw_bytes >= 3000.0); // at least the TLS amplification
    }

    #[test]
    fn fig8_calibration_point() {
        // At ~16.5 GB/s loading (RM1 node demand, Table VIII), the trainer
        // front-end should show roughly 40% CPU and 55% membw utilization.
        let node = NodeSpec::trainer();
        let tax = DatacenterTax::production();
        let per_byte = tax.rx_cost(1.0);
        let u = node.utilization_at(&per_byte, 16.5e9);
        assert!(
            (0.30..=0.50).contains(&u.cpu),
            "cpu utilization {:.2} outside Fig. 8 band",
            u.cpu
        );
        assert!(
            (0.45..=0.65).contains(&u.membw),
            "membw utilization {:.2} outside Fig. 8 band",
            u.membw
        );
    }

    #[test]
    fn offload_removes_tls_cost() {
        let full = DatacenterTax::production();
        let off = DatacenterTax::tls_offloaded();
        assert!(off.rx_cycles_per_byte() < full.rx_cycles_per_byte());
        assert!(off.rx_membw_per_byte() <= full.rx_membw_per_byte() - 3.0 + 1e-12);
        let none = DatacenterTax::none();
        assert_eq!(none.rx_cost(100.0).cpu_cycles, 0.0);
    }

    #[test]
    fn tx_cheaper_than_rx() {
        let tax = DatacenterTax::production();
        assert!(tax.tx_cost(1.0).cpu_cycles < tax.rx_cost(1.0).cpu_cycles);
    }
}
