//! Common types shared across the DSI (data storage and ingestion) pipeline.
//!
//! This crate defines the vocabulary of the whole workspace: identifiers
//! ([`FeatureId`], [`TableId`], ...), feature values ([`DenseValue`],
//! [`SparseList`]), training [`Sample`]s, materialized [`MiniBatchTensor`]s,
//! table [`Schema`]s, byte-size [`units`], and the shared error type
//! [`DsiError`].
//!
//! Everything downstream — the DWRF columnar format, the Tectonic filesystem
//! simulation, the warehouse, and the DPP preprocessing service — speaks in
//! these types.
//!
//! # Example
//!
//! ```
//! use dsi_types::{FeatureId, Sample, SparseList};
//!
//! let mut sample = Sample::new(1.0);
//! sample.set_dense(FeatureId(10), 0.5);
//! sample.set_sparse(FeatureId(20), SparseList::from_ids(vec![7, 9, 13]));
//! assert_eq!(sample.dense(FeatureId(10)), Some(0.5));
//! assert_eq!(sample.sparse(FeatureId(20)).unwrap().len(), 3);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod error;
pub mod feature;
pub mod id;
pub mod rng;
pub mod sample;
pub mod schema;
pub mod units;

pub use batch::{Batch, DenseMatrix, MiniBatchTensor, SparseTensor};
pub use error::{DsiError, Result};
pub use feature::{DenseValue, FeatureKind, FeatureValue, SparseList};
pub use id::{
    FeatureId, JobId, NodeId, PartitionId, RegionId, SessionId, SplitId, TableId, WorkerId,
};
pub use sample::Sample;
pub use schema::{FeatureDef, FeatureStatus, Projection, Schema};
pub use units::{ByteSize, GIB, KIB, MIB, PIB, TIB};
