//! Offline shim of `rand`.
//!
//! The workspace does all of its randomness through
//! `dsi_types::rng::SplitMix64`; this crate exists only so manifests that
//! declare a `rand` dependency resolve offline. A small seedable RNG is
//! provided for any future caller that wants the familiar names.

/// Minimal RNG trait in the spirit of `rand::Rng`.
pub trait Rng {
    /// Next 64 uniformly-random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A splitmix64 generator (same construction the workspace uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distributed() {
        let mut a = SplitMix64::seed_from_u64(9);
        let mut b = SplitMix64::seed_from_u64(9);
        assert_eq!(a.next_u64(), b.next_u64());
        let f = a.next_f64();
        assert!((0.0..1.0).contains(&f));
    }
}
