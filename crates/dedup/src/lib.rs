//! RecD-style end-to-end deduplication for DLRM training data.
//!
//! DLRM training samples are highly duplicated: many samples within a user
//! session are generated from the same request burst and carry **identical
//! sparse-feature payloads**, differing only in their dense features and
//! labels. RecD (Zhao et al., 2022) exploits this end to end — store the
//! shared payload once, preprocess it once, and ship it once — for large
//! storage, preprocessing-throughput, and power wins.
//!
//! This crate is the layer-independent core of that subsystem:
//!
//! * [`DedupConfig`] — session window, set-size cap, and the synthetic
//!   duplication ratio, threaded from workload generation to the trainer;
//! * [`DedupSet`] / [`cluster_sessions`] — the ETL-side clustering of a
//!   sample stream into one canonical copy plus per-member deltas;
//! * [`apply_batch_dedup`] — a dedup-aware [`TransformPlan`] executor that
//!   transforms each set's canonical copy once and fans the results out to
//!   members, provably bit-identical to [`TransformPlan::apply_batch`];
//! * [`deduped_tensor_bytes`] / [`shared_row_refs`] — shared-tensor
//!   accounting for batches shipped to trainers.
//!
//! The storage-side encoding (canonical payload stored once per stripe,
//! per-row back-references) lives in the `dwrf` crate; this crate holds
//! everything the byte format does not need.
//!
//! # Transform reuse is dataflow-checked
//!
//! Not every op result can be shared across a set: `Bucketize` and `Onehot`
//! derive *sparse* outputs from *dense* inputs, and dense values differ per
//! member. [`apply_batch_dedup`] walks the plan tracking which features are
//! member-invariant: an op is computed once per set only when every feature
//! it reads is invariant at that point in the plan; everything else runs per
//! member. This makes reuse safe for arbitrary plans, not just sparse-only
//! ones.

#![warn(missing_docs)]

use dsi_types::{Batch, FeatureId, FeatureValue, MiniBatchTensor, Sample};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use transforms::plan::PlanCost;
use transforms::{OpClass, OpCost, TransformOp, TransformPlan};

/// Configuration for the deduplication subsystem, threaded through workload
/// generation (`synth`), ETL (`scribe`), storage (`dwrf`), and the DPP data
/// plane (`dpp`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DedupConfig {
    /// How many recently-seen canonical payloads a writer or clusterer
    /// keeps in its lookback window when matching new rows. Sessions are
    /// temporally local, so a small window captures nearly all duplication.
    pub session_window: usize,
    /// Maximum logical rows per DedupSet (bounds fan-out amplification and
    /// the blast radius of a corrupt canonical).
    pub max_set_size: usize,
    /// Target mean logical rows per canonical payload when *generating*
    /// synthetic workloads (`synth`); read paths ignore it.
    pub duplication_ratio: f64,
}

impl Default for DedupConfig {
    fn default() -> Self {
        Self {
            session_window: 64,
            max_set_size: 32,
            duplication_ratio: 4.0,
        }
    }
}

impl DedupConfig {
    /// A config generating roughly `ratio` duplicates per canonical.
    pub fn with_ratio(ratio: f64) -> Self {
        Self {
            duplication_ratio: ratio.max(1.0),
            ..Self::default()
        }
    }
}

/// A deterministic byte signature of a sample's sparse map. Two samples
/// share a signature iff their sparse maps are bit-identical (feature ids,
/// id lists, scored-ness, and score bits all included).
pub fn sparse_signature(s: &Sample) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + s.payload_bytes());
    for (fid, list) in s.sparse_iter() {
        buf.extend_from_slice(&fid.0.to_le_bytes());
        buf.extend_from_slice(&(list.len() as u64).to_le_bytes());
        buf.push(u8::from(list.is_scored()));
        for &id in list.ids() {
            buf.extend_from_slice(&id.to_le_bytes());
        }
        if let Some(scores) = list.scores() {
            for &sc in scores {
                buf.extend_from_slice(&sc.to_bits().to_le_bytes());
            }
        }
    }
    buf
}

/// One member's non-shared payload: its label and dense features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberDelta {
    /// The member's label.
    pub label: f32,
    /// The member's dense features (sparse features come from the
    /// canonical copy).
    pub dense: Vec<(FeatureId, f32)>,
}

impl MemberDelta {
    fn of(s: &Sample) -> Self {
        Self {
            label: s.label(),
            dense: s.dense_iter().collect(),
        }
    }
}

/// A cluster of logical rows sharing one sparse payload: the canonical
/// sample (the set's first member, stored in full) plus per-member deltas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DedupSet {
    canonical: Sample,
    deltas: Vec<MemberDelta>,
}

impl DedupSet {
    /// A set holding a single sample (the degenerate no-duplication case).
    pub fn singleton(canonical: Sample) -> Self {
        Self {
            canonical,
            deltas: Vec::new(),
        }
    }

    /// The canonical sample (first member, full payload).
    pub fn canonical(&self) -> &Sample {
        &self.canonical
    }

    /// Number of logical rows in the set (canonical included).
    pub fn len(&self) -> usize {
        1 + self.deltas.len()
    }

    /// Whether the set is empty (never true: a set always has a canonical).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Bytes of sparse payload this set stores once instead of
    /// [`DedupSet::len`] times.
    pub fn shared_payload_bytes(&self) -> usize {
        self.canonical
            .sparse_iter()
            .map(|(_, l)| std::mem::size_of::<FeatureId>() + l.payload_bytes())
            .sum()
    }

    /// Expands the set back into its logical rows, in original order.
    pub fn expand(&self) -> Vec<Sample> {
        let mut out = Vec::with_capacity(self.len());
        out.push(self.canonical.clone());
        for d in &self.deltas {
            let mut s = Sample::new(d.label);
            for (fid, list) in self.canonical.sparse_iter() {
                s.set_sparse(fid, list.clone());
            }
            for &(fid, v) in &d.dense {
                s.set_dense(fid, v);
            }
            out.push(s);
        }
        out
    }
}

/// Aggregate statistics from one clustering pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DedupStats {
    /// Logical rows clustered.
    pub rows: u64,
    /// DedupSets formed (canonical payloads kept).
    pub sets: u64,
    /// Sparse-payload bytes the sets avoid storing (duplicate copies).
    pub bytes_saved: u64,
}

impl DedupStats {
    /// Logical rows per canonical payload (1.0 = no duplication).
    pub fn ratio(&self) -> f64 {
        if self.sets == 0 {
            return 1.0;
        }
        self.rows as f64 / self.sets as f64
    }
}

/// Clusters a sample stream into session DedupSets.
///
/// Consecutive samples with bit-identical sparse maps join the open set
/// (user sessions are temporally local, so duplicates arrive back to back
/// out of the ETL join), capped at `max_set_size` rows per set. Expanding
/// the returned sets in order reproduces `samples` exactly.
pub fn cluster_sessions(samples: &[Sample], cfg: &DedupConfig) -> (Vec<DedupSet>, DedupStats) {
    let cap = cfg.max_set_size.max(1);
    let mut sets: Vec<DedupSet> = Vec::new();
    let mut stats = DedupStats::default();
    let mut open_sig: Option<Vec<u8>> = None;
    for s in samples {
        stats.rows += 1;
        let sig = sparse_signature(s);
        let joins = match (&open_sig, sets.last()) {
            (Some(prev), Some(open)) => *prev == sig && open.len() < cap,
            _ => false,
        };
        if joins {
            let open = sets.last_mut().expect("open set exists");
            stats.bytes_saved += open.shared_payload_bytes() as u64;
            open.deltas.push(MemberDelta::of(s));
        } else {
            sets.push(DedupSet::singleton(s.clone()));
            stats.sets += 1;
            open_sig = Some(sig);
        }
    }
    (sets, stats)
}

/// Expands a slice of sets back into the flat logical row stream.
pub fn expand_sets(sets: &[DedupSet]) -> Vec<Sample> {
    sets.iter().flat_map(DedupSet::expand).collect()
}

/// Execution statistics from one dedup-aware transform pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DedupExecStats {
    /// Surviving rows transformed.
    pub rows: u64,
    /// DedupSets encountered (canonical transforms performed).
    pub sets: u64,
    /// Op applications skipped by fanning a canonical result out to a
    /// member (the transform-reuse hit counter).
    pub reuse_hits: u64,
}

/// Which ops of `plan` can be computed once per DedupSet whose canonical
/// carries exactly `shared` sparse features, and fanned out to members.
///
/// Walks the plan in order tracking the member-invariant feature set: an op
/// is cacheable iff it reads no dense feature and every sparse feature it
/// reads is invariant at that point. Cacheable ops keep (or make) their
/// output invariant; everything else knocks its output out of the set.
fn cacheable_mask(plan: &TransformPlan, shared: &BTreeSet<FeatureId>) -> Vec<bool> {
    let mut invariant = shared.clone();
    let mut mask = Vec::with_capacity(plan.len());
    for op in plan.ops() {
        if matches!(op, TransformOp::Sampling { .. }) {
            mask.push(false);
            continue;
        }
        let cacheable =
            !op.reads_dense() && op.sparse_inputs().iter().all(|f| invariant.contains(f));
        if let Some(out) = op.output_feature() {
            if cacheable {
                invariant.insert(out);
            } else {
                invariant.remove(&out);
            }
        }
        mask.push(cacheable);
    }
    mask
}

fn charge(cost: &mut PlanCost, model: &OpCost, op: &TransformOp, s: &Sample) {
    let elements = op.elements_touched(s);
    let cycles = model.cycles(op, elements);
    cost.cycles += cycles;
    cost.elements += elements;
    cost.membw_bytes += elements as f64 * model.membw_bytes_per_element;
    match OpCost::class_of(op) {
        OpClass::FeatureGeneration => cost.feature_generation_cycles += cycles,
        OpClass::SparseNormalization => cost.sparse_normalization_cycles += cycles,
        OpClass::DenseNormalization => cost.dense_normalization_cycles += cycles,
        OpClass::Filter => {}
    }
}

/// Applies `plan` to a batch the way [`TransformPlan::apply_batch`] does —
/// same sampling filter, same per-row dataset indexing, bit-identical
/// output — but transforms each DedupSet's canonical copy once and fans
/// cacheable op results out to the set's members.
///
/// Sets are detected on the fly (consecutive rows with identical sparse
/// maps, capped at `cfg.max_set_size`), so the executor needs no
/// out-of-band set boundaries and degrades gracefully to the plain path on
/// duplication-free data.
pub fn apply_batch_dedup(
    plan: &TransformPlan,
    batch: Batch,
    base_row: u64,
    cfg: &DedupConfig,
) -> (Batch, PlanCost, DedupExecStats) {
    let model = *plan.cost_model();
    let sampling: Vec<&TransformOp> = plan
        .ops()
        .iter()
        .filter(|o| matches!(o, TransformOp::Sampling { .. }))
        .collect();
    let mut out = Batch::new();
    let mut cost = PlanCost::default();
    let mut stats = DedupExecStats::default();
    let cap = cfg.max_set_size.max(1);

    // Open-set state: the canonical's pre-transform signature, the
    // per-op cacheability mask, and each cacheable op's post-op output.
    let mut open_sig: Option<Vec<u8>> = None;
    let mut mask: Vec<bool> = Vec::new();
    let mut cache: Vec<Option<FeatureValue>> = Vec::new();
    let mut set_len = 0usize;

    for (i, mut s) in batch.into_samples().into_iter().enumerate() {
        let row = base_row + i as u64;
        if !sampling.iter().all(|op| op.sample_survives(row)) {
            continue;
        }
        stats.rows += 1;
        let sig = sparse_signature(&s);
        let member = open_sig.as_ref() == Some(&sig) && set_len < cap;
        if member {
            set_len += 1;
            for (k, op) in plan.ops().iter().enumerate() {
                // Cached ops fan the canonical result out — a memcpy, not a
                // recompute; charge only the bytes moved. A cacheable op that
                // produced no value (inputs absent) behaves identically on
                // every member, so falling through to a normal apply stays
                // bit-identical to the plain path.
                if mask[k] {
                    if let Some(v) = &cache[k] {
                        let outf = op.output_feature().expect("cacheable ops write a feature");
                        s.set_feature(outf, v.clone());
                        stats.reuse_hits += 1;
                        cost.membw_bytes += v.payload_bytes() as f64;
                        continue;
                    }
                }
                charge(&mut cost, &model, op, &s);
                op.apply(&mut s);
            }
        } else {
            stats.sets += 1;
            set_len = 1;
            let shared: BTreeSet<FeatureId> = s.sparse_iter().map(|(fid, _)| fid).collect();
            mask = cacheable_mask(plan, &shared);
            cache.clear();
            for (k, op) in plan.ops().iter().enumerate() {
                charge(&mut cost, &model, op, &s);
                op.apply(&mut s);
                cache.push(if mask[k] {
                    op.output_feature().and_then(|f| s.feature(f))
                } else {
                    None
                });
            }
            open_sig = Some(sig);
        }
        out.push(s);
    }
    (out, cost, stats)
}

/// Per-row back-references for a materialized batch: `refs[r]` is the first
/// row whose sparse tensors row `r` duplicates (`refs[r] == r` for
/// canonical rows). Consecutive rows only — matching the session clustering
/// the rest of the subsystem uses.
pub fn shared_row_refs(tensor: &MiniBatchTensor) -> Vec<u32> {
    let rows = tensor.batch_size();
    let mut refs = Vec::with_capacity(rows);
    for r in 0..rows {
        let dup_of_prev = r > 0
            && tensor.sparse.iter().all(|t| {
                t.row(r) == t.row(r - 1)
                    && t.scores().map(|s| {
                        let (a, b) = (t.offsets()[r] as usize, t.offsets()[r + 1] as usize);
                        let (pa, pb) = (t.offsets()[r - 1] as usize, t.offsets()[r] as usize);
                        s[a..b].iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                            == s[pa..pb].iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                    }) != Some(false)
            });
        if dup_of_prev {
            refs.push(refs[r - 1]);
        } else {
            refs.push(r as u32);
        }
    }
    refs
}

/// Payload bytes of a batch when shared sparse rows are shipped as
/// references instead of copies: canonical rows carry their values once;
/// duplicate rows cost one 4-byte reference per sparse tensor.
pub fn deduped_tensor_bytes(tensor: &MiniBatchTensor, refs: &[u32]) -> usize {
    let mut bytes = tensor.dense.payload_bytes() + tensor.labels.len() * std::mem::size_of::<f32>();
    for t in &tensor.sparse {
        bytes += t.offsets().len() * 4;
        for (r, &rf) in refs.iter().enumerate() {
            if rf as usize == r {
                let (a, b) = (t.offsets()[r] as usize, t.offsets()[r + 1] as usize);
                bytes += (b - a) * 8 + t.scores().map_or(0, |_| (b - a) * 4);
            } else {
                bytes += 4;
            }
        }
    }
    bytes
}

/// Checks the executor against the plain path on the same inputs — the
/// correctness invariant the integration tests assert end to end.
#[doc(hidden)]
pub fn matches_plain_apply(plan: &TransformPlan, batch: &Batch, base_row: u64) -> bool {
    let (plain, _) = plan.apply_batch(batch.clone(), base_row);
    let (deduped, _, _) = apply_batch_dedup(plan, batch.clone(), base_row, &DedupConfig::default());
    plain == deduped
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_types::{Projection, SparseList};

    fn sessionized(sets: &[(u64, usize)]) -> Vec<Sample> {
        // Each (salt, n) becomes n samples sharing a sparse payload derived
        // from salt, with distinct dense values and labels.
        let mut out = Vec::new();
        for &(salt, n) in sets {
            for m in 0..n {
                let mut s = Sample::new(m as f32);
                s.set_dense(FeatureId(1), salt as f32 + m as f32 * 0.25);
                s.set_dense(FeatureId(2), 0.25 + m as f32 * 0.01);
                s.set_sparse(
                    FeatureId(10),
                    SparseList::from_ids(vec![salt, salt * 3 + 1, salt + 7]),
                );
                s.set_sparse(
                    FeatureId(11),
                    SparseList::from_scored(vec![salt + 2, salt + 5], vec![0.5, 1.5]),
                );
                out.push(s);
            }
        }
        out
    }

    fn plan() -> TransformPlan {
        let sparse = vec![FeatureId(10), FeatureId(11)];
        let dense = vec![FeatureId(1), FeatureId(2)];
        let proj = Projection::new(vec![
            FeatureId(1),
            FeatureId(2),
            FeatureId(10),
            FeatureId(11),
        ]);
        TransformPlan::preset(&proj, &sparse, &dense, 0.8, 100_000)
    }

    #[test]
    fn cluster_then_expand_is_identity() {
        let samples = sessionized(&[(3, 4), (9, 1), (12, 6), (3, 2)]);
        let (sets, stats) = cluster_sessions(&samples, &DedupConfig::default());
        assert_eq!(stats.rows, 13);
        assert_eq!(stats.sets, 4);
        assert!(stats.bytes_saved > 0);
        assert!(stats.ratio() > 3.0);
        assert_eq!(expand_sets(&sets), samples);
    }

    #[test]
    fn set_size_cap_splits_long_sessions() {
        let samples = sessionized(&[(5, 10)]);
        let cfg = DedupConfig {
            max_set_size: 4,
            ..Default::default()
        };
        let (sets, stats) = cluster_sessions(&samples, &cfg);
        assert_eq!(stats.sets, 3); // 4 + 4 + 2
        assert!(sets.iter().all(|s| s.len() <= 4));
        assert_eq!(expand_sets(&sets), samples);
    }

    #[test]
    fn no_duplication_degenerates_to_singletons() {
        let samples = sessionized(&[(1, 1), (2, 1), (3, 1)]);
        let (sets, stats) = cluster_sessions(&samples, &DedupConfig::default());
        assert_eq!(stats.sets, 3);
        assert_eq!(stats.bytes_saved, 0);
        assert!((stats.ratio() - 1.0).abs() < 1e-9);
        assert_eq!(expand_sets(&sets), samples);
    }

    #[test]
    fn dedup_executor_is_bit_identical_to_plain() {
        let plan = plan();
        let batch = Batch::from_samples(sessionized(&[(3, 5), (9, 1), (12, 8), (4, 3)]));
        assert!(matches_plain_apply(&plan, &batch, 0));
        assert!(matches_plain_apply(&plan, &batch, 7_000_000));
    }

    #[test]
    fn dedup_executor_identical_with_sampling_filter() {
        let mut ops = plan().ops().to_vec();
        ops.push(TransformOp::Sampling { rate: 0.6, seed: 9 });
        let plan = TransformPlan::new(ops);
        let batch = Batch::from_samples(sessionized(&[(1, 6), (2, 6), (3, 6)]));
        assert!(matches_plain_apply(&plan, &batch, 0));
        assert!(matches_plain_apply(&plan, &batch, 1_000_000));
    }

    #[test]
    fn dense_derived_features_never_reused() {
        // Bucketize reads a member-varying dense feature: its output (and
        // the normalizations chained after it) must run per member.
        let plan = TransformPlan::new(vec![
            TransformOp::Bucketize {
                input: FeatureId(1),
                borders: (0..32).map(|b| f64::from(b) * 0.25).collect(),
                output: FeatureId(50),
            },
            TransformOp::SigridHash {
                input: FeatureId(50),
                salt: 1,
                modulus: 1000,
            },
        ]);
        let batch = Batch::from_samples(sessionized(&[(3, 4)]));
        let (out, _, stats) = apply_batch_dedup(&plan, batch.clone(), 0, &DedupConfig::default());
        assert_eq!(stats.reuse_hits, 0, "dense-derived ops must not be cached");
        let (plain, _) = plan.apply_batch(batch, 0);
        assert_eq!(out, plain);
        // Members landed in different buckets despite shared sparse maps.
        let buckets: BTreeSet<u64> = out
            .samples()
            .iter()
            .map(|s| s.sparse(FeatureId(50)).unwrap().ids()[0])
            .collect();
        assert!(buckets.len() > 1);
    }

    #[test]
    fn reuse_cuts_cycles_on_duplicated_batches() {
        let plan = plan();
        let dup = Batch::from_samples(sessionized(&[(3, 8), (9, 8)]));
        let uniq = Batch::from_samples(sessionized(
            &(0..16).map(|i| (100 + i, 1)).collect::<Vec<_>>(),
        ));
        let (_, dup_cost, dup_stats) = apply_batch_dedup(&plan, dup, 0, &DedupConfig::default());
        let (_, uniq_cost, uniq_stats) = apply_batch_dedup(&plan, uniq, 0, &DedupConfig::default());
        assert!(dup_stats.reuse_hits > 0);
        assert_eq!(uniq_stats.reuse_hits, 0);
        assert_eq!(dup_stats.sets, 2);
        assert!(
            dup_cost.cycles < uniq_cost.cycles * 0.6,
            "dedup cycles {} vs unique {}",
            dup_cost.cycles,
            uniq_cost.cycles
        );
    }

    #[test]
    fn shared_row_refs_and_byte_accounting() {
        let plan = TransformPlan::empty();
        let batch = Batch::from_samples(sessionized(&[(3, 4), (9, 2)]));
        let (out, _, _) = apply_batch_dedup(&plan, batch, 0, &DedupConfig::default());
        let tensor = out.materialize(
            &[FeatureId(1), FeatureId(2)],
            &[FeatureId(10), FeatureId(11)],
        );
        let refs = shared_row_refs(&tensor);
        assert_eq!(refs, vec![0, 0, 0, 0, 4, 4]);
        let deduped = deduped_tensor_bytes(&tensor, &refs);
        assert!(deduped < tensor.payload_bytes());
        // Unique rows gain nothing.
        let solo_refs: Vec<u32> = (0..tensor.batch_size() as u32).collect();
        assert_eq!(
            deduped_tensor_bytes(&tensor, &solo_refs),
            tensor.payload_bytes()
        );
    }
}
