//! The sixteen production preprocessing operations (Table XI).

use dsi_types::rng::{mix2, SplitMix64};
use dsi_types::{FeatureId, Sample, SparseList};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One preprocessing operation over a sample's features.
///
/// Operations never fail: missing inputs simply produce no output (absent
/// features are routine — coverage is well below 1.0 for most sparse
/// features).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TransformOp {
    /// Cartesian product of two sparse features: every id pair hashes into
    /// a combined id in `output`.
    Cartesian {
        /// First sparse input.
        a: FeatureId,
        /// Second sparse input.
        b: FeatureId,
        /// Derived sparse output.
        output: FeatureId,
    },
    /// Shards a dense feature into a bucket index by border search.
    Bucketize {
        /// Dense input.
        input: FeatureId,
        /// Ascending bucket borders.
        borders: Vec<f64>,
        /// Derived sparse output holding the bucket index.
        output: FeatureId,
    },
    /// Arithmetic over a scored sparse feature's scores.
    ComputeScore {
        /// Scored sparse input (modified in place).
        input: FeatureId,
        /// Multiplier applied to each score.
        scale: f32,
        /// Offset added to each score.
        offset: f32,
    },
    /// Like Python `enumerate()`: each id is combined with its position.
    Enumerate {
        /// Sparse input (modified in place).
        input: FeatureId,
    },
    /// Positive modulus over each id of a sparse feature.
    PositiveModulus {
        /// Sparse input (modified in place).
        input: FeatureId,
        /// Modulus (> 0).
        modulus: u64,
    },
    /// Intersection of two sparse id lists.
    IdListTransform {
        /// First sparse input.
        a: FeatureId,
        /// Second sparse input.
        b: FeatureId,
        /// Derived sparse output (ids present in both).
        output: FeatureId,
    },
    /// Box–Cox normalization of a dense feature.
    BoxCox {
        /// Dense input (modified in place).
        input: FeatureId,
        /// Box–Cox lambda; `0` selects the log transform.
        lambda: f64,
    },
    /// Logit transform of a dense feature (input clamped into (0, 1)).
    Logit {
        /// Dense input (modified in place).
        input: FeatureId,
    },
    /// Maps feature ids to fixed values via a table.
    MapId {
        /// Sparse input (modified in place).
        input: FeatureId,
        /// Explicit id mapping.
        mapping: BTreeMap<u64, u64>,
        /// Value for unmapped ids (`None` drops them).
        default: Option<u64>,
    },
    /// Truncates a sparse list to its first `x` values.
    FirstX {
        /// Sparse input (modified in place).
        input: FeatureId,
        /// Maximum values retained.
        x: usize,
    },
    /// Computes the local hour-of-day from a UNIX-seconds dense feature.
    GetLocalHour {
        /// Dense input holding UNIX seconds (modified in place).
        input: FeatureId,
        /// Timezone offset in seconds.
        tz_offset_secs: i32,
    },
    /// Hashes each id of a sparse list into `[0, modulus)` — the standard
    /// sparse-id normalization before embedding lookup.
    SigridHash {
        /// Sparse input (modified in place).
        input: FeatureId,
        /// Hash salt.
        salt: u64,
        /// Output id space size (> 0).
        modulus: u64,
    },
    /// N-grams within a sparse list: each window of `n` consecutive ids
    /// hashes into one output id.
    NGram {
        /// Sparse input.
        input: FeatureId,
        /// Window length (≥ 1).
        n: usize,
        /// Derived sparse output.
        output: FeatureId,
    },
    /// One-hot encodes a dense feature: the value's class index becomes a
    /// single-id sparse output.
    Onehot {
        /// Dense input.
        input: FeatureId,
        /// Number of classes (> 0).
        num_classes: u32,
        /// Derived sparse output.
        output: FeatureId,
    },
    /// `std::clamp` over a dense feature.
    Clamp {
        /// Dense input (modified in place).
        input: FeatureId,
        /// Lower bound.
        min: f32,
        /// Upper bound.
        max: f32,
    },
    /// Randomly samples training rows: a row survives with probability
    /// `rate` (applied at the batch level by the plan executor).
    Sampling {
        /// Keep probability in `[0, 1]`.
        rate: f64,
        /// Determinism seed.
        seed: u64,
    },
}

impl TransformOp {
    /// The feature the op writes (same as input for in-place ops).
    pub fn output_feature(&self) -> Option<FeatureId> {
        match self {
            TransformOp::Cartesian { output, .. }
            | TransformOp::Bucketize { output, .. }
            | TransformOp::IdListTransform { output, .. }
            | TransformOp::NGram { output, .. }
            | TransformOp::Onehot { output, .. } => Some(*output),
            TransformOp::ComputeScore { input, .. }
            | TransformOp::Enumerate { input }
            | TransformOp::PositiveModulus { input, .. }
            | TransformOp::BoxCox { input, .. }
            | TransformOp::Logit { input }
            | TransformOp::MapId { input, .. }
            | TransformOp::FirstX { input, .. }
            | TransformOp::GetLocalHour { input, .. }
            | TransformOp::SigridHash { input, .. }
            | TransformOp::Clamp { input, .. } => Some(*input),
            TransformOp::Sampling { .. } => None,
        }
    }

    /// Whether this op reads any dense feature. Dense values vary per
    /// sample even inside a dedup session, so dense-reading ops can never
    /// be computed once per DedupSet and fanned out.
    pub fn reads_dense(&self) -> bool {
        matches!(
            self,
            TransformOp::Bucketize { .. }
                | TransformOp::BoxCox { .. }
                | TransformOp::Logit { .. }
                | TransformOp::GetLocalHour { .. }
                | TransformOp::Onehot { .. }
                | TransformOp::Clamp { .. }
        )
    }

    /// The sparse features this op reads (empty for dense-only ops and
    /// `Sampling`).
    pub fn sparse_inputs(&self) -> Vec<FeatureId> {
        match self {
            TransformOp::Cartesian { a, b, .. } | TransformOp::IdListTransform { a, b, .. } => {
                vec![*a, *b]
            }
            TransformOp::ComputeScore { input, .. }
            | TransformOp::Enumerate { input }
            | TransformOp::PositiveModulus { input, .. }
            | TransformOp::MapId { input, .. }
            | TransformOp::FirstX { input, .. }
            | TransformOp::SigridHash { input, .. }
            | TransformOp::NGram { input, .. } => vec![*input],
            _ => Vec::new(),
        }
    }

    /// Whether this op derives a *new* feature (feature generation class).
    pub fn derives_feature(&self) -> bool {
        matches!(
            self,
            TransformOp::Cartesian { .. }
                | TransformOp::Bucketize { .. }
                | TransformOp::IdListTransform { .. }
                | TransformOp::NGram { .. }
                | TransformOp::Onehot { .. }
        )
    }

    /// Applies the op to one sample. `Sampling` is a no-op here (it acts at
    /// batch level); use [`TransformOp::sample_survives`].
    pub fn apply(&self, s: &mut Sample) {
        match self {
            TransformOp::Cartesian { a, b, output } => {
                let (Some(la), Some(lb)) = (s.sparse(*a), s.sparse(*b)) else {
                    return;
                };
                let mut out = SparseList::new();
                for &ia in la.ids() {
                    for &ib in lb.ids() {
                        out.push(mix2(ia, ib));
                    }
                }
                s.set_sparse(*output, out);
            }
            TransformOp::Bucketize {
                input,
                borders,
                output,
            } => {
                let Some(v) = s.dense(*input) else { return };
                let bucket = borders.partition_point(|&b| b <= v as f64) as u64;
                s.set_sparse(*output, SparseList::from_ids(vec![bucket]));
            }
            TransformOp::ComputeScore {
                input,
                scale,
                offset,
            } => {
                let Some(list) = s.sparse(*input) else { return };
                if list.scores().is_none() {
                    return;
                }
                let ids = list.ids().to_vec();
                let scores: Vec<f32> = list
                    .scores()
                    .expect("checked above")
                    .iter()
                    .map(|&x| x * scale + offset)
                    .collect();
                s.set_sparse(*input, SparseList::from_scored(ids, scores));
            }
            TransformOp::Enumerate { input } => {
                let Some(list) = s.sparse(*input) else { return };
                let ids: Vec<u64> = list
                    .ids()
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| mix2(i as u64, id))
                    .collect();
                let new = match list.scores() {
                    Some(sc) => SparseList::from_scored(ids, sc.to_vec()),
                    None => SparseList::from_ids(ids),
                };
                s.set_sparse(*input, new);
            }
            TransformOp::PositiveModulus { input, modulus } => {
                debug_assert!(*modulus > 0, "modulus must be positive");
                if let Some(list) = s.sparse(*input) {
                    let mut list = list.clone();
                    list.map_ids_in_place(|id| id % modulus);
                    s.set_sparse(*input, list);
                }
            }
            TransformOp::IdListTransform { a, b, output } => {
                let (Some(la), Some(lb)) = (s.sparse(*a), s.sparse(*b)) else {
                    return;
                };
                let set: std::collections::BTreeSet<u64> = lb.ids().iter().copied().collect();
                let out: SparseList = la
                    .ids()
                    .iter()
                    .copied()
                    .filter(|id| set.contains(id))
                    .collect();
                s.set_sparse(*output, out);
            }
            TransformOp::BoxCox { input, lambda } => {
                if let Some(v) = s.dense(*input) {
                    let x = (v as f64).max(1e-9);
                    let t = if lambda.abs() < 1e-12 {
                        x.ln()
                    } else {
                        (x.powf(*lambda) - 1.0) / lambda
                    };
                    s.set_dense(*input, t as f32);
                }
            }
            TransformOp::Logit { input } => {
                if let Some(v) = s.dense(*input) {
                    let p = (v as f64).clamp(1e-6, 1.0 - 1e-6);
                    s.set_dense(*input, (p / (1.0 - p)).ln() as f32);
                }
            }
            TransformOp::MapId {
                input,
                mapping,
                default,
            } => {
                let Some(list) = s.sparse(*input) else { return };
                let mut ids = Vec::with_capacity(list.len());
                let mut scores = list.scores().map(|_| Vec::with_capacity(list.len()));
                for (i, &id) in list.ids().iter().enumerate() {
                    let mapped = mapping.get(&id).copied().or(*default);
                    if let Some(m) = mapped {
                        ids.push(m);
                        if let Some(sc) = &mut scores {
                            sc.push(list.scores().expect("scored")[i]);
                        }
                    }
                }
                let new = match scores {
                    Some(sc) => SparseList::from_scored(ids, sc),
                    None => SparseList::from_ids(ids),
                };
                s.set_sparse(*input, new);
            }
            TransformOp::FirstX { input, x } => {
                if let Some(list) = s.sparse(*input) {
                    let mut list = list.clone();
                    list.truncate(*x);
                    s.set_sparse(*input, list);
                }
            }
            TransformOp::GetLocalHour {
                input,
                tz_offset_secs,
            } => {
                if let Some(v) = s.dense(*input) {
                    let local = v as i64 + *tz_offset_secs as i64;
                    let hour = local.rem_euclid(86_400) / 3_600;
                    s.set_dense(*input, hour as f32);
                }
            }
            TransformOp::SigridHash {
                input,
                salt,
                modulus,
            } => {
                debug_assert!(*modulus > 0, "modulus must be positive");
                if let Some(list) = s.sparse(*input) {
                    let mut list = list.clone();
                    list.map_ids_in_place(|id| mix2(*salt, id) % modulus);
                    s.set_sparse(*input, list);
                }
            }
            TransformOp::NGram { input, n, output } => {
                debug_assert!(*n >= 1, "n must be at least 1");
                let Some(list) = s.sparse(*input) else { return };
                if list.len() < *n {
                    s.set_sparse(*output, SparseList::new());
                    return;
                }
                let out: SparseList = list
                    .ids()
                    .windows(*n)
                    .map(|w| w.iter().fold(0u64, |acc, &id| mix2(acc, id)))
                    .collect();
                s.set_sparse(*output, out);
            }
            TransformOp::Onehot {
                input,
                num_classes,
                output,
            } => {
                debug_assert!(*num_classes > 0, "num_classes must be positive");
                if let Some(v) = s.dense(*input) {
                    let class = (v.max(0.0) as u64).min(*num_classes as u64 - 1);
                    s.set_sparse(*output, SparseList::from_ids(vec![class]));
                }
            }
            TransformOp::Clamp { input, min, max } => {
                if let Some(v) = s.dense(*input) {
                    s.set_dense(*input, v.clamp(*min, *max));
                }
            }
            TransformOp::Sampling { .. } => {}
        }
    }

    /// For `Sampling`: whether the `row_index`-th row survives. Always
    /// `true` for other ops.
    pub fn sample_survives(&self, row_index: u64) -> bool {
        match self {
            TransformOp::Sampling { rate, seed } => {
                let mut rng = SplitMix64::new(mix2(*seed, row_index));
                rng.chance(*rate)
            }
            _ => true,
        }
    }

    /// Number of elements this op touches in `s` (cost-model input).
    pub fn elements_touched(&self, s: &Sample) -> u64 {
        let sparse_len = |f: FeatureId| s.sparse(f).map_or(0, SparseList::len) as u64;
        match self {
            TransformOp::Cartesian { a, b, .. } => sparse_len(*a) * sparse_len(*b),
            TransformOp::Bucketize { input, borders, .. } => {
                if s.dense(*input).is_some() {
                    (borders.len() as f64).log2().ceil().max(1.0) as u64
                } else {
                    0
                }
            }
            TransformOp::ComputeScore { input, .. }
            | TransformOp::Enumerate { input }
            | TransformOp::PositiveModulus { input, .. }
            | TransformOp::MapId { input, .. }
            | TransformOp::FirstX { input, .. }
            | TransformOp::SigridHash { input, .. } => sparse_len(*input),
            TransformOp::IdListTransform { a, b, .. } => sparse_len(*a) + sparse_len(*b),
            TransformOp::NGram { input, n, .. } => {
                sparse_len(*input).saturating_sub(*n as u64 - 1) * *n as u64
            }
            TransformOp::BoxCox { input, .. }
            | TransformOp::Logit { input }
            | TransformOp::GetLocalHour { input, .. }
            | TransformOp::Onehot { input, .. }
            | TransformOp::Clamp { input, .. } => u64::from(s.dense(*input).is_some()),
            TransformOp::Sampling { .. } => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sample {
        let mut s = Sample::new(0.0);
        s.set_dense(FeatureId(1), 0.5);
        s.set_dense(FeatureId(2), 100_000.0); // unix-ish timestamp
        s.set_sparse(FeatureId(10), SparseList::from_ids(vec![3, 7, 11, 7]));
        s.set_sparse(FeatureId(11), SparseList::from_ids(vec![7, 99]));
        s.set_sparse(
            FeatureId(12),
            SparseList::from_scored(vec![1, 2], vec![0.5, 1.5]),
        );
        s
    }

    #[test]
    fn cartesian_produces_all_pairs() {
        let mut s = sample();
        TransformOp::Cartesian {
            a: FeatureId(10),
            b: FeatureId(11),
            output: FeatureId(50),
        }
        .apply(&mut s);
        assert_eq!(s.sparse(FeatureId(50)).unwrap().len(), 4 * 2);
    }

    #[test]
    fn bucketize_finds_bucket() {
        let mut s = sample();
        TransformOp::Bucketize {
            input: FeatureId(1),
            borders: vec![0.0, 0.25, 0.75, 1.0],
            output: FeatureId(51),
        }
        .apply(&mut s);
        // 0.5 falls after borders 0.0, 0.25 -> bucket 2.
        assert_eq!(s.sparse(FeatureId(51)).unwrap().ids(), &[2]);
    }

    #[test]
    fn bucketize_is_monotone_in_input() {
        let borders = vec![0.0, 1.0, 2.0, 3.0];
        let mut last = 0;
        for i in 0..8 {
            let mut s = Sample::new(0.0);
            s.set_dense(FeatureId(1), i as f32 * 0.5);
            TransformOp::Bucketize {
                input: FeatureId(1),
                borders: borders.clone(),
                output: FeatureId(2),
            }
            .apply(&mut s);
            let b = s.sparse(FeatureId(2)).unwrap().ids()[0];
            assert!(b >= last, "bucket decreased");
            last = b;
        }
    }

    #[test]
    fn compute_score_scales_scores() {
        let mut s = sample();
        TransformOp::ComputeScore {
            input: FeatureId(12),
            scale: 2.0,
            offset: 1.0,
        }
        .apply(&mut s);
        assert_eq!(
            s.sparse(FeatureId(12)).unwrap().scores().unwrap(),
            &[2.0, 4.0]
        );
        // No-op on unscored lists.
        TransformOp::ComputeScore {
            input: FeatureId(10),
            scale: 2.0,
            offset: 0.0,
        }
        .apply(&mut s);
        assert!(s.sparse(FeatureId(10)).unwrap().scores().is_none());
    }

    #[test]
    fn enumerate_distinguishes_positions() {
        let mut s = Sample::new(0.0);
        s.set_sparse(FeatureId(1), SparseList::from_ids(vec![5, 5]));
        TransformOp::Enumerate {
            input: FeatureId(1),
        }
        .apply(&mut s);
        let ids = s.sparse(FeatureId(1)).unwrap().ids();
        assert_ne!(ids[0], ids[1], "same id at different positions must differ");
    }

    #[test]
    fn positive_modulus_bounds_ids() {
        let mut s = sample();
        TransformOp::PositiveModulus {
            input: FeatureId(10),
            modulus: 5,
        }
        .apply(&mut s);
        assert!(s
            .sparse(FeatureId(10))
            .unwrap()
            .ids()
            .iter()
            .all(|&i| i < 5));
    }

    #[test]
    fn id_list_transform_intersects() {
        let mut s = sample();
        TransformOp::IdListTransform {
            a: FeatureId(10),
            b: FeatureId(11),
            output: FeatureId(52),
        }
        .apply(&mut s);
        assert_eq!(s.sparse(FeatureId(52)).unwrap().ids(), &[7, 7]);
    }

    #[test]
    fn boxcox_and_logit_normalize() {
        let mut s = sample();
        TransformOp::BoxCox {
            input: FeatureId(1),
            lambda: 0.0,
        }
        .apply(&mut s);
        assert!((s.dense(FeatureId(1)).unwrap() - 0.5f32.ln()).abs() < 1e-6);

        let mut s2 = sample();
        TransformOp::Logit {
            input: FeatureId(1),
        }
        .apply(&mut s2);
        assert!(s2.dense(FeatureId(1)).unwrap().abs() < 1e-6); // logit(0.5) = 0
    }

    #[test]
    fn map_id_maps_and_drops() {
        let mut s = sample();
        let mapping: BTreeMap<u64, u64> = [(3, 300), (7, 700)].into_iter().collect();
        TransformOp::MapId {
            input: FeatureId(10),
            mapping,
            default: None,
        }
        .apply(&mut s);
        assert_eq!(s.sparse(FeatureId(10)).unwrap().ids(), &[300, 700, 700]);
    }

    #[test]
    fn first_x_truncates() {
        let mut s = sample();
        TransformOp::FirstX {
            input: FeatureId(10),
            x: 2,
        }
        .apply(&mut s);
        assert_eq!(s.sparse(FeatureId(10)).unwrap().ids(), &[3, 7]);
    }

    #[test]
    fn get_local_hour_wraps() {
        let mut s = sample();
        TransformOp::GetLocalHour {
            input: FeatureId(2),
            tz_offset_secs: -3600,
        }
        .apply(&mut s);
        // 100000 - 3600 = 96400 s -> 96400 % 86400 = 10000 s -> hour 2.
        assert_eq!(s.dense(FeatureId(2)), Some(2.0));
    }

    #[test]
    fn sigrid_hash_is_deterministic_and_bounded() {
        let mut a = sample();
        let mut b = sample();
        let op = TransformOp::SigridHash {
            input: FeatureId(10),
            salt: 9,
            modulus: 100,
        };
        op.apply(&mut a);
        op.apply(&mut b);
        assert_eq!(a.sparse(FeatureId(10)), b.sparse(FeatureId(10)));
        assert!(a
            .sparse(FeatureId(10))
            .unwrap()
            .ids()
            .iter()
            .all(|&i| i < 100));
        // Equal input ids hash equal.
        let ids = a.sparse(FeatureId(10)).unwrap().ids();
        assert_eq!(ids[1], ids[3]);
    }

    #[test]
    fn ngram_windows() {
        let mut s = sample();
        TransformOp::NGram {
            input: FeatureId(10),
            n: 2,
            output: FeatureId(53),
        }
        .apply(&mut s);
        assert_eq!(s.sparse(FeatureId(53)).unwrap().len(), 3);
        // Short lists produce empty output.
        let mut s2 = Sample::new(0.0);
        s2.set_sparse(FeatureId(10), SparseList::from_ids(vec![1]));
        TransformOp::NGram {
            input: FeatureId(10),
            n: 2,
            output: FeatureId(53),
        }
        .apply(&mut s2);
        assert!(s2.sparse(FeatureId(53)).unwrap().is_empty());
    }

    #[test]
    fn onehot_clamps_class() {
        let mut s = Sample::new(0.0);
        s.set_dense(FeatureId(1), 7.0);
        TransformOp::Onehot {
            input: FeatureId(1),
            num_classes: 5,
            output: FeatureId(2),
        }
        .apply(&mut s);
        assert_eq!(s.sparse(FeatureId(2)).unwrap().ids(), &[4]);
    }

    #[test]
    fn clamp_bounds_value() {
        let mut s = Sample::new(0.0);
        s.set_dense(FeatureId(1), 10.0);
        TransformOp::Clamp {
            input: FeatureId(1),
            min: -1.0,
            max: 1.0,
        }
        .apply(&mut s);
        assert_eq!(s.dense(FeatureId(1)), Some(1.0));
    }

    #[test]
    fn sampling_rate_is_respected() {
        let op = TransformOp::Sampling {
            rate: 0.25,
            seed: 3,
        };
        let survivors = (0..10_000).filter(|&i| op.sample_survives(i)).count();
        let frac = survivors as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "survival {frac}");
        // Deterministic per row.
        assert_eq!(op.sample_survives(5), op.sample_survives(5));
    }

    #[test]
    fn missing_inputs_are_noops() {
        let mut s = Sample::new(0.0);
        let before = s.clone();
        for op in [
            TransformOp::Cartesian {
                a: FeatureId(1),
                b: FeatureId(2),
                output: FeatureId(3),
            },
            TransformOp::Logit {
                input: FeatureId(1),
            },
            TransformOp::SigridHash {
                input: FeatureId(1),
                salt: 0,
                modulus: 10,
            },
            TransformOp::FirstX {
                input: FeatureId(1),
                x: 1,
            },
        ] {
            op.apply(&mut s);
        }
        assert_eq!(s, before);
    }

    #[test]
    fn elements_touched_reflects_work() {
        let s = sample();
        let cart = TransformOp::Cartesian {
            a: FeatureId(10),
            b: FeatureId(11),
            output: FeatureId(50),
        };
        assert_eq!(cart.elements_touched(&s), 8);
        let clamp = TransformOp::Clamp {
            input: FeatureId(1),
            min: 0.0,
            max: 1.0,
        };
        assert_eq!(clamp.elements_touched(&s), 1);
        assert!(cart.derives_feature());
        assert!(!clamp.derives_feature());
    }
}
