//! Framed TCP transport for the DPP data plane.
//!
//! In production DSI deployments the DPP Workers and the trainer-side
//! Clients live on different hosts, so every mini-batch pays the
//! "datacenter tax": serialization, optional TLS, framing, kernel socket
//! copies, and deserialization on the far side. The in-process pipeline
//! models that tax analytically (`hwsim::DatacenterTax`); this crate makes
//! it *measurable* by actually shipping tensors over a socket:
//!
//! - [`codec`] serializes [`WireEnvelope`]s (the Worker→Client unit of
//!   delivery) into a compact binary form built on the DWRF varint
//!   primitives — the serde shim is a no-op, so the codec is hand-rolled.
//! - [`frame`] wraps payloads in a 24-byte header (magic, kind, flags,
//!   nonce, length, FNV-1a checksum) so torn writes and corruption are
//!   detected instead of silently mis-parsed.
//! - [`transport`] runs one [`WireServer`] per Worker (serialize + send
//!   thread, credit-reader thread per connection) and one client reader
//!   thread per connection, with credit-based flow control mirroring the
//!   bounded-channel backpressure of the in-process path and
//!   reconnect-with-replay of unacked envelopes. Replays can duplicate
//!   envelopes; exactly-once delivery is restored end-to-end by the DPP
//!   Client's sequence-number dedup.
//!
//! Encryption is a stream-cipher TLS stand-in ([`dwrf::cipher`]) keyed per
//! session and nonced per frame; compression reuses the DWRF block codec.
//! Both are toggled by [`WireConfig`] and charged to `dsi_wire_*` metrics
//! so the pipeline report can print a measured tax breakdown.

#![warn(missing_docs)]

pub mod codec;
pub mod frame;
pub mod transport;

pub use codec::WireEnvelope;
pub use frame::{Frame, FrameKind, HEADER_LEN, MAGIC};
pub use transport::{connect, WireChaos, WireObs, WireServer};

/// Tunables for a wire transport session. Both endpoints of a connection
/// must agree on the config (it is carried in the `SessionSpec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// Encrypt frame payloads with the DWRF stream cipher (TLS stand-in).
    pub encrypt: bool,
    /// Compress frame payloads with the DWRF block codec before encryption.
    pub compress: bool,
    /// Session key for the stream cipher; ignored unless `encrypt` is set.
    pub key: u64,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            encrypt: false,
            compress: false,
            key: 0xD51_F00D,
        }
    }
}

impl WireConfig {
    /// Plain TCP: framing and checksums only.
    pub fn plaintext() -> Self {
        Self::default()
    }

    /// TCP with the stream-cipher TLS stand-in enabled under `key`.
    pub fn encrypted(key: u64) -> Self {
        Self {
            encrypt: true,
            compress: false,
            key,
        }
    }
}
