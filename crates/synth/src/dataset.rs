//! Deterministic synthetic sample generation for any schema.

use dsi_types::rng::SplitMix64;
use dsi_types::{FeatureKind, Sample, Schema, SparseList};

/// Generates samples whose per-feature presence, list lengths, and value
/// distributions follow the schema's [`dsi_types::FeatureDef`]s.
///
/// Categorical ids are drawn from a large space with reuse (the same ids
/// recur across samples), so downstream compression and hashing see
/// realistic repetition.
#[derive(Debug)]
pub struct SampleGenerator {
    schema: Schema,
    rng: SplitMix64,
    /// Click-through-style positive rate.
    positive_rate: f64,
    produced: u64,
}

impl SampleGenerator {
    /// Creates a generator over `schema` with a deterministic seed.
    pub fn new(schema: &Schema, seed: u64) -> Self {
        Self {
            schema: schema.clone(),
            rng: SplitMix64::new(seed),
            positive_rate: 0.1,
            produced: 0,
        }
    }

    /// Sets the positive-label rate (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    pub fn with_positive_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate in [0, 1]");
        self.positive_rate = rate;
        self
    }

    /// Number of samples produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Generates the next sample.
    pub fn next_sample(&mut self) -> Sample {
        self.produced += 1;
        let label = if self.rng.chance(self.positive_rate) {
            1.0
        } else {
            0.0
        };
        let mut s = Sample::new(label);
        // Iterate a snapshot of defs to avoid borrowing issues.
        let defs: Vec<_> = self.schema.iter().cloned().collect();
        for def in defs {
            if !def.status.is_logged() {
                continue;
            }
            if !self.rng.chance(def.coverage) {
                continue;
            }
            match def.kind {
                FeatureKind::Dense => {
                    // Mild log-normal-ish continuous values.
                    let v = self.rng.next_lognormal(1.0, 0.5) as f32;
                    s.set_dense(def.id, v);
                }
                FeatureKind::Sparse | FeatureKind::ScoredSparse => {
                    let len = self.sample_length(def.avg_len);
                    let mut list = SparseList::new();
                    let scored = def.kind == FeatureKind::ScoredSparse;
                    for _ in 0..len {
                        let id = self.sample_categorical(def.id.0);
                        if scored {
                            list.push_scored(id, self.rng.next_f64() as f32);
                        } else {
                            list.push(id);
                        }
                    }
                    s.set_sparse(def.id, list);
                }
            }
        }
        s
    }

    /// Generates `n` samples.
    pub fn take_samples(&mut self, n: usize) -> Vec<Sample> {
        (0..n).map(|_| self.next_sample()).collect()
    }

    fn sample_length(&mut self, mean: f64) -> usize {
        // Geometric-flavored length with the requested mean, at least 1.
        let len = self.rng.next_exp(mean.max(1.0)).round() as usize;
        len.clamp(1, (mean * 8.0).ceil() as usize)
    }

    fn sample_categorical(&mut self, feature_salt: u64) -> u64 {
        // 80/20 reuse: most draws come from a small per-feature hot set.
        if self.rng.chance(0.8) {
            feature_salt * 1_000_003 + self.rng.next_below(1_000)
        } else {
            feature_salt * 1_000_003 + self.rng.next_below(1_000_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::RmProfile;
    use dsi_types::{FeatureDef, FeatureId};

    fn small_schema() -> Schema {
        let mut s = Schema::new();
        s.add(FeatureDef::dense(FeatureId(0)));
        s.add(FeatureDef::sparse(FeatureId(1), 10.0));
        s.add(FeatureDef::sparse(FeatureId(2), 5.0).with_coverage(0.5));
        s
    }

    #[test]
    fn deterministic_for_seed() {
        let schema = small_schema();
        let a: Vec<_> = SampleGenerator::new(&schema, 42).take_samples(10);
        let b: Vec<_> = SampleGenerator::new(&schema, 42).take_samples(10);
        assert_eq!(a, b);
        let c: Vec<_> = SampleGenerator::new(&schema, 43).take_samples(10);
        assert_ne!(a, c);
    }

    #[test]
    fn coverage_respected() {
        let schema = small_schema();
        let mut g = SampleGenerator::new(&schema, 7);
        let n = 2000;
        let mut f2_present = 0;
        for _ in 0..n {
            let s = g.next_sample();
            assert!(s.dense(FeatureId(0)).is_some()); // full coverage
            if s.sparse(FeatureId(2)).is_some() {
                f2_present += 1;
            }
        }
        let frac = f2_present as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "coverage {frac}");
    }

    #[test]
    fn sparse_lengths_near_mean() {
        let schema = small_schema();
        let mut g = SampleGenerator::new(&schema, 9);
        let mut total = 0usize;
        let mut count = 0usize;
        for _ in 0..2000 {
            let s = g.next_sample();
            if let Some(l) = s.sparse(FeatureId(1)) {
                total += l.len();
                count += 1;
            }
        }
        let mean = total as f64 / count as f64;
        assert!((mean - 10.0).abs() < 1.5, "mean length {mean}");
    }

    #[test]
    fn positive_rate_controls_labels() {
        let schema = small_schema();
        let mut g = SampleGenerator::new(&schema, 1).with_positive_rate(0.3);
        let n = 3000;
        let pos = (0..n).filter(|_| g.next_sample().label() > 0.0).count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.05, "positive rate {frac}");
    }

    #[test]
    fn categorical_ids_repeat_across_samples() {
        let schema = small_schema();
        let mut g = SampleGenerator::new(&schema, 2);
        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0;
        for _ in 0..500 {
            let s = g.next_sample();
            if let Some(l) = s.sparse(FeatureId(1)) {
                for &id in l.ids() {
                    if !seen.insert(id) {
                        repeats += 1;
                    }
                }
            }
        }
        assert!(repeats > 100, "expected id reuse, saw {repeats} repeats");
    }

    #[test]
    fn works_with_profile_schema() {
        let schema = RmProfile::rm3().build_schema(50);
        let mut g = SampleGenerator::new(&schema, 11);
        let s = g.next_sample();
        assert!(s.feature_count() > 10);
        assert_eq!(g.produced(), 1);
    }
}
