//! The knob surface shared by every pipeline-tuning policy.
//!
//! The paper's DPP scales one resource (worker count) with a fixed-rule
//! watermark controller ([`crate::autoscale::AutoScaler`]). InTune-style
//! online tuning generalizes this: a policy reads live telemetry and
//! jointly moves *all* the data-pipeline knobs — workers, read-ahead
//! depth, batch size, per-stage parallelism. This module defines that
//! shared vocabulary ([`Knobs`], [`KnobBounds`], [`TunerSignals`]) and
//! the [`TunerPolicy`] trait both the static scaler and the closed-loop
//! tuner in `crates/tune` implement, so a session (or the fleet
//! reconciler) can swap policies without rewiring.

use crate::autoscale::{AutoScaler, ScalingDecision, WorkerTelemetry};
use dsi_obs::SignalSnapshot;
use serde::{Deserialize, Serialize};

/// One joint setting of every tunable pipeline resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Knobs {
    /// DPP worker (preprocessing node) count.
    pub workers: usize,
    /// Splits each worker prefetches ahead of its transform stage
    /// (`SessionSpec::read_ahead`).
    pub read_ahead: usize,
    /// Samples per produced tensor batch (`SessionSpec::batch_size`).
    pub batch_size: usize,
    /// Intra-worker parallelism of the transform stage (lanes).
    pub parallelism: usize,
}

impl Knobs {
    /// Number of knob axes a policy can move.
    pub const AXES: usize = 4;

    /// Reads the knob on one axis (0 = workers, 1 = read_ahead,
    /// 2 = batch_size, 3 = parallelism).
    pub fn axis(&self, axis: usize) -> usize {
        match axis {
            0 => self.workers,
            1 => self.read_ahead,
            2 => self.batch_size,
            3 => self.parallelism,
            _ => panic!("knob axis {axis} out of range"),
        }
    }

    /// Returns a copy with one axis replaced.
    pub fn with_axis(mut self, axis: usize, value: usize) -> Self {
        match axis {
            0 => self.workers = value,
            1 => self.read_ahead = value,
            2 => self.batch_size = value,
            3 => self.parallelism = value,
            _ => panic!("knob axis {axis} out of range"),
        }
        self
    }
}

impl Default for Knobs {
    fn default() -> Self {
        Self {
            workers: 1,
            read_ahead: 0,
            batch_size: 64,
            parallelism: 1,
        }
    }
}

/// Hard per-knob `[min, max]` floors and ceilings a policy must never
/// cross — guarded exploration's outer fence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnobBounds {
    /// Worker-count window.
    pub workers: (usize, usize),
    /// Read-ahead window.
    pub read_ahead: (usize, usize),
    /// Batch-size window.
    pub batch_size: (usize, usize),
    /// Per-stage parallelism window.
    pub parallelism: (usize, usize),
}

impl KnobBounds {
    /// Bounds window for one axis (same numbering as [`Knobs::axis`]).
    pub fn axis(&self, axis: usize) -> (usize, usize) {
        match axis {
            0 => self.workers,
            1 => self.read_ahead,
            2 => self.batch_size,
            3 => self.parallelism,
            _ => panic!("knob axis {axis} out of range"),
        }
    }

    /// Clamps every knob into its window.
    pub fn clamp(&self, knobs: Knobs) -> Knobs {
        let c = |v: usize, (lo, hi): (usize, usize)| v.clamp(lo, hi.max(lo));
        Knobs {
            workers: c(knobs.workers, self.workers),
            read_ahead: c(knobs.read_ahead, self.read_ahead),
            batch_size: c(knobs.batch_size, self.batch_size),
            parallelism: c(knobs.parallelism, self.parallelism),
        }
    }

    /// Freezes one axis at its current value (equal min/max), so a policy
    /// can be told "do not move this knob" — e.g. batch size during a
    /// bitwise-compared chaos run.
    pub fn freeze(mut self, axis: usize, at: usize) -> Self {
        match axis {
            0 => self.workers = (at, at),
            1 => self.read_ahead = (at, at),
            2 => self.batch_size = (at, at),
            3 => self.parallelism = (at, at),
            _ => panic!("knob axis {axis} out of range"),
        }
        self
    }
}

impl Default for KnobBounds {
    fn default() -> Self {
        Self {
            workers: (1, 512),
            read_ahead: (0, 8),
            batch_size: (16, 512),
            parallelism: (1, 8),
        }
    }
}

/// Everything a tuning policy sees on one control tick: the sampled
/// metric stream plus the session's own buffered-tensor telemetry
/// (which never transits the registry, so it cannot be NaN-poisoned).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TunerSignals {
    /// Registry sample — stall fraction, fetch tail, starvation,
    /// fastpath pool health, per-stage seconds.
    pub snapshot: SignalSnapshot,
    /// Mean tensors buffered per live worker (the §III-B1 watermark
    /// signal).
    pub mean_buffered: f64,
    /// Mean worker utilization proxy in `[0, 1]`.
    pub mean_utilization: f64,
    /// Live (non-draining) workers observed this tick.
    pub live_workers: usize,
}

impl TunerSignals {
    /// Builds signals from a session's worker telemetry plus a registry
    /// sample. Means over an empty fleet are 0, never NaN.
    pub fn from_telemetry(snapshot: SignalSnapshot, telemetry: &[WorkerTelemetry]) -> Self {
        let n = telemetry.len();
        let (buf, util) = telemetry.iter().fold((0.0, 0.0), |(b, u), t| {
            (b + t.buffered_batches as f64, u + t.max_utilization)
        });
        let mean = |sum: f64| {
            if n == 0 {
                0.0
            } else {
                dsi_obs::finite_or_zero(sum / n as f64)
            }
        };
        Self {
            snapshot,
            mean_buffered: mean(buf),
            mean_utilization: mean(util),
            live_workers: n,
        }
    }

    /// Synthesizes the uniform per-worker telemetry the watermark scaler
    /// consumes natively.
    pub fn to_telemetry(&self) -> Vec<WorkerTelemetry> {
        vec![
            WorkerTelemetry {
                buffered_batches: self.mean_buffered.round().max(0.0) as usize,
                max_utilization: self.mean_utilization,
            };
            self.live_workers
        ]
    }
}

/// A pipeline-tuning policy: maps one tick of signals to the next joint
/// knob setting. Implementations must stay inside [`TunerPolicy::bounds`];
/// callers may re-clamp defensively.
pub trait TunerPolicy {
    /// Stable policy name for reports and bench artifacts.
    fn name(&self) -> &'static str;

    /// The hard knob fences this policy honors.
    fn bounds(&self) -> KnobBounds;

    /// One control tick: given signals and the currently-applied knobs,
    /// returns the knobs to apply next (possibly unchanged).
    fn decide(&mut self, signals: &TunerSignals, current: &Knobs) -> Knobs;
}

/// The static watermark scaler as a [`TunerPolicy`]: moves only the
/// worker-count axis, exactly as [`AutoScaler::evaluate`] always has.
impl TunerPolicy for AutoScaler {
    fn name(&self) -> &'static str {
        "static-watermark"
    }

    fn bounds(&self) -> KnobBounds {
        KnobBounds {
            workers: (self.config().min_workers, self.config().max_workers),
            ..KnobBounds::default()
        }
    }

    fn decide(&mut self, signals: &TunerSignals, current: &Knobs) -> Knobs {
        let telemetry = signals.to_telemetry();
        let decision = self.evaluate(&telemetry);
        let workers = AutoScaler::apply(decision, current.workers);
        let workers = match decision {
            // evaluate() already fences against min/max for live counts,
            // but clamp anyway: `current.workers` may lag the observed
            // fleet the decision was computed over.
            ScalingDecision::ScaleUp(_) => workers.min(self.config().max_workers),
            ScalingDecision::ScaleDown(_) => workers.max(self.config().min_workers),
            ScalingDecision::Hold => workers,
        };
        Knobs {
            workers,
            ..*current
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscale::ScalerConfig;

    fn signals(n: usize, buffered: f64, util: f64) -> TunerSignals {
        TunerSignals {
            snapshot: SignalSnapshot::default(),
            mean_buffered: buffered,
            mean_utilization: util,
            live_workers: n,
        }
    }

    #[test]
    fn autoscaler_policy_moves_only_workers() {
        let mut policy = AutoScaler::default();
        let current = Knobs {
            workers: 8,
            read_ahead: 2,
            batch_size: 64,
            parallelism: 2,
        };
        // Starved buffers: scale out by one step, everything else fixed.
        let next = policy.decide(&signals(8, 0.0, 0.9), &current);
        assert_eq!(next.workers, 10);
        assert_eq!(next.read_ahead, 2);
        assert_eq!(next.batch_size, 64);
        assert_eq!(next.parallelism, 2);
    }

    #[test]
    fn autoscaler_policy_reports_worker_bounds() {
        let policy = AutoScaler::new(ScalerConfig {
            min_workers: 2,
            max_workers: 32,
            ..Default::default()
        });
        assert_eq!(policy.bounds().workers, (2, 32));
        assert_eq!(policy.name(), "static-watermark");
    }

    #[test]
    fn autoscaler_policy_drains_every_tick_once_armed() {
        // The fixed down_streak bug, observed through the policy facade:
        // sustained idleness keeps draining tick over tick.
        let mut policy = AutoScaler::default();
        let mut knobs = Knobs {
            workers: 8,
            ..Knobs::default()
        };
        let idle = |n: usize| signals(n, 10.0, 0.1);
        knobs = policy.decide(&idle(8), &knobs); // hysteresis tick
        assert_eq!(knobs.workers, 8);
        knobs = policy.decide(&idle(8), &knobs);
        assert_eq!(knobs.workers, 6);
        knobs = policy.decide(&idle(6), &knobs);
        assert_eq!(knobs.workers, 4, "drain continues without a Hold gap");
    }

    #[test]
    fn bounds_clamp_and_freeze() {
        let bounds = KnobBounds::default().freeze(2, 64);
        let wild = Knobs {
            workers: 10_000,
            read_ahead: 99,
            batch_size: 4,
            parallelism: 0,
        };
        let clamped = bounds.clamp(wild);
        assert_eq!(clamped.workers, 512);
        assert_eq!(clamped.read_ahead, 8);
        assert_eq!(clamped.batch_size, 64, "frozen axis pins to its value");
        assert_eq!(clamped.parallelism, 1);
    }

    #[test]
    fn signals_from_empty_telemetry_are_zero() {
        let s = TunerSignals::from_telemetry(SignalSnapshot::default(), &[]);
        assert_eq!(s.mean_buffered, 0.0);
        assert_eq!(s.mean_utilization, 0.0);
        assert_eq!(s.live_workers, 0);
        assert!(s.to_telemetry().is_empty());
    }

    #[test]
    fn axis_accessors_round_trip() {
        let k = Knobs {
            workers: 3,
            read_ahead: 1,
            batch_size: 32,
            parallelism: 2,
        };
        for axis in 0..Knobs::AXES {
            assert_eq!(k.with_axis(axis, 7).axis(axis), 7);
        }
    }
}
