//! The reconciler itself: owns the managed sessions, runs the
//! observe → allocate → plan → execute loop, and publishes per-tenant
//! status + metrics after every tick.

use crate::fairshare::{self, Demand};
use crate::job::{JobPhase, JobRegistry, JobSpec, JobStatus};
use crate::placement::PlacementScorer;
use crate::reconcile::{plan, FleetAction, ObservedJob};
use chaos::FaultInjector;
use dpp::{Client, DppSession, Knobs, TunerPolicy, TunerSignals, WorkerObservation};
use dsi_obs::{names, SignalSnapshot};
use dsi_types::{NodeId, Result, SessionId, WorkerId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use warehouse::Table;

/// Sizing of the shared worker fleet the reconciler arbitrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetConfig {
    /// Compute nodes in the fleet.
    pub nodes: usize,
    /// Worker slots per node; total capacity is `nodes * slots_per_node`.
    pub slots_per_node: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            nodes: 4,
            slots_per_node: 4,
        }
    }
}

struct ManagedJob {
    session: DppSession,
    /// Which node each of this job's workers was placed on, so drains and
    /// natural exits return the slot (and its warm pool) to the scorer.
    placements: HashMap<WorkerId, NodeId>,
}

/// Per-job closed-loop tuner state: the policy, the knob setting it last
/// applied, and the cumulative signal sample it diffs against.
struct JobTuner {
    policy: Box<dyn TunerPolicy + Send>,
    knobs: Knobs,
    last: SignalSnapshot,
}

/// The multi-tenant control plane: a [`JobRegistry`] of desired state, a
/// [`PlacementScorer`] tracking the shared fleet, and the managed
/// [`DppSession`]s that consume worker assignments instead of owning them.
///
/// Call [`FleetDriver::tick`] periodically (or from a dedicated thread);
/// each tick is one reconcile pass and is safe to run at any frequency —
/// a converged fleet executes nothing.
pub struct FleetDriver {
    registry: JobRegistry,
    placer: Mutex<PlacementScorer>,
    jobs: Mutex<HashMap<SessionId, ManagedJob>>,
    obs: Mutex<Option<dsi_obs::Registry>>,
    tuners: Mutex<HashMap<SessionId, JobTuner>>,
}

impl FleetDriver {
    /// Builds a driver over a uniform fleet.
    pub fn new(config: FleetConfig) -> Self {
        Self::with_scorer(PlacementScorer::uniform(
            config.nodes,
            config.slots_per_node,
        ))
    }

    /// Builds a driver over an explicit placement scorer (heterogeneous
    /// nodes, custom locality).
    pub fn with_scorer(placer: PlacementScorer) -> Self {
        Self {
            registry: JobRegistry::new(),
            placer: Mutex::new(placer),
            jobs: Mutex::new(HashMap::new()),
            obs: Mutex::new(None),
            tuners: Mutex::new(HashMap::new()),
        }
    }

    /// Total worker slots the fleet can host.
    pub fn capacity(&self) -> usize {
        self.placer.lock().capacity()
    }

    /// The desired/observed state registry (submit watchers, dashboards).
    pub fn registry(&self) -> &JobRegistry {
        &self.registry
    }

    /// Attaches a metrics registry: every managed session launched after
    /// this publishes its job-labeled pipeline metrics here, and the
    /// driver publishes `dsi_fleet_*` per-tenant gauges each tick.
    pub fn attach_registry(&self, registry: &dsi_obs::Registry) {
        *self.obs.lock() = Some(registry.clone());
    }

    /// Submits a job: launches its session with *zero* workers (the next
    /// tick assigns capacity) and registers its desired state.
    ///
    /// # Errors
    ///
    /// Propagates [`DppSession::launch_managed`] validation failures; the
    /// job is not registered when launch fails.
    pub fn submit(&self, spec: JobSpec, table: Table) -> Result<()> {
        self.submit_with_chaos(spec, table, None)
    }

    /// Like [`FleetDriver::submit`], but installs a per-job chaos fault
    /// injector before any worker can spawn — the cross-tenant blast-radius
    /// harness: faults target exactly one tenant's session.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetDriver::submit`].
    pub fn submit_with_chaos(
        &self,
        spec: JobSpec,
        table: Table,
        injector: Option<Arc<FaultInjector>>,
    ) -> Result<()> {
        let obs = self.obs.lock().clone();
        let session =
            DppSession::launch_managed(table, spec.session.clone(), obs.as_ref(), injector)?;
        self.jobs.lock().insert(
            spec.id(),
            ManagedJob {
                session,
                placements: HashMap::new(),
            },
        );
        self.registry.submit(spec);
        Ok(())
    }

    /// Delegates this job's per-tick scaling to `policy`: instead of the
    /// static fair-share demand from [`JobSpec`], the reconciler feeds the
    /// policy the job's live signal stream each tick, lets it move the
    /// joint knob setting, applies depth knobs (read-ahead, batch size) as
    /// session overrides, and presents the policy's worker target as the
    /// job's demand (still clamped inside the spec's min/max window, still
    /// arbitrated by fair-share against other tenants).
    ///
    /// Returns `false` (and installs nothing) when the job is unknown.
    pub fn enable_autotune(&self, job: SessionId, policy: Box<dyn TunerPolicy + Send>) -> bool {
        let jobs = self.jobs.lock();
        let Some(managed) = jobs.get(&job) else {
            return false;
        };
        let spec = managed.session.effective_spec();
        let floor = self
            .registry
            .specs()
            .iter()
            .find(|s| s.id() == job)
            .map(|s| s.min_workers)
            .unwrap_or(1);
        let knobs = Knobs {
            workers: managed.session.worker_count().max(floor).max(1),
            read_ahead: spec.read_ahead,
            batch_size: spec.batch_size,
            parallelism: 1,
        };
        self.tuners.lock().insert(
            job,
            JobTuner {
                policy,
                knobs,
                last: SignalSnapshot::default(),
            },
        );
        true
    }

    /// The knob setting the job's tuner currently wants, if autotuned.
    pub fn autotuned_knobs(&self, job: SessionId) -> Option<Knobs> {
        self.tuners.lock().get(&job).map(|t| t.knobs)
    }

    /// Creates a trainer-side client for a managed job. Clients created
    /// before the first tick park until workers are assigned.
    pub fn client(&self, job: SessionId) -> Option<Client> {
        self.jobs.lock().get(&job).map(|j| j.session.client())
    }

    /// Whether the job's epoch is fully delivered and acknowledged.
    pub fn is_complete(&self, job: SessionId) -> bool {
        self.jobs
            .lock()
            .get(&job)
            .is_some_and(|j| j.session.is_complete())
    }

    /// Detaches a job from the control plane, returning its session so the
    /// caller can [`DppSession::shutdown`] it and collect the report. Its
    /// slots return to the fleet on the way out.
    pub fn remove(&self, job: SessionId) -> Option<DppSession> {
        self.registry.remove(job);
        self.tuners.lock().remove(&job);
        let managed = self.jobs.lock().remove(&job)?;
        let mut placer = self.placer.lock();
        for (_, node) in managed.placements {
            placer.release(node);
        }
        Some(managed.session)
    }

    /// Runs one reconcile pass and returns the actions it executed.
    ///
    /// observe → fair-share → diff → execute → publish: worker exits
    /// release their placement slots, the allocator recomputes targets
    /// from the registry's current demand, [`plan`] diffs, and the
    /// executor spawns/drains through the sessions' drain protocol (so
    /// preemption inherits exactly-once delivery for free).
    pub fn tick(&self) -> Vec<FleetAction> {
        let start = Instant::now();
        let specs = self.registry.specs();
        let mut jobs = self.jobs.lock();
        let mut placer = self.placer.lock();

        // Observe: one snapshot per job; release slots of exited workers.
        let mut observations: HashMap<SessionId, Vec<WorkerObservation>> = HashMap::new();
        let mut observed: Vec<ObservedJob> = Vec::new();
        for spec in &specs {
            let Some(managed) = jobs.get_mut(&spec.id()) else {
                continue;
            };
            let snapshot = managed.session.observe();
            for o in &snapshot {
                if o.finished {
                    if let Some(node) = managed.placements.remove(&o.id) {
                        placer.release(node);
                    }
                }
            }
            observed.push(ObservedJob {
                job: spec.id(),
                active: snapshot.iter().filter(|o| o.is_live()).count(),
                draining: snapshot
                    .iter()
                    .filter(|o| o.draining && !o.finished)
                    .count(),
                completed: managed.session.is_complete(),
            });
            observations.insert(spec.id(), snapshot);
        }

        // Autotune: for delegated jobs, one policy tick over the live
        // signal window decides the joint knob setting. Depth knobs are
        // applied to the session immediately (fleet-spawned replacements
        // pick them up); the worker knob becomes the job's demand below.
        let obs = self.obs.lock().clone();
        let mut tuners = self.tuners.lock();
        for (spec, o) in specs.iter().zip(&observed) {
            if o.completed {
                continue;
            }
            let (Some(jt), Some(managed)) = (tuners.get_mut(&spec.id()), jobs.get(&spec.id()))
            else {
                continue;
            };
            managed.session.publish_metrics();
            let cumulative = match obs.as_ref() {
                Some(reg) => SignalSnapshot::sample_job(reg, &spec.id().to_string()),
                None => SignalSnapshot::default(),
            };
            let window = cumulative.delta(&jt.last);
            jt.last = cumulative;
            let signals = TunerSignals::from_telemetry(window, &managed.session.telemetry());
            // No live lane surface on a managed session: freeze that axis.
            let bounds = jt.policy.bounds().freeze(3, jt.knobs.parallelism);
            let next = bounds.clamp(jt.policy.decide(&signals, &jt.knobs));
            if next.read_ahead != jt.knobs.read_ahead {
                managed.session.set_read_ahead(next.read_ahead);
            }
            if next.batch_size != jt.knobs.batch_size {
                managed.session.set_batch_size(next.batch_size);
            }
            jt.knobs = next;
        }

        // Allocate: fair-share targets over jobs that still want workers.
        // Autotuned jobs demand exactly what their policy asked for
        // (pinched into the spec's own min/max window).
        let demands: Vec<Demand> = specs
            .iter()
            .zip(&observed)
            .filter(|(_, o)| !o.completed)
            .map(|(s, _)| {
                let mut d = s.demand();
                if let Some(jt) = tuners.get(&s.id()) {
                    let want = jt.knobs.workers.clamp(s.min_workers, s.max_workers.max(1));
                    d.min = want;
                    d.max = want;
                }
                d
            })
            .collect();
        drop(tuners);
        let targets = fairshare::fair_share(placer.capacity(), &demands);

        // Diff and execute.
        let actions = plan(&observed, &demands, &targets);
        for action in &actions {
            match *action {
                FleetAction::Spawn { job } => {
                    if let (Some(managed), Some(node)) = (jobs.get_mut(&job), placer.place()) {
                        let id = managed.session.spawn_worker();
                        managed.placements.insert(id, node);
                    }
                }
                FleetAction::Drain { job, count }
                | FleetAction::Reassign {
                    from: job, count, ..
                } => {
                    Self::drain(&mut jobs, &mut placer, &observations, job, count);
                }
                FleetAction::Preempt { victim, count, .. } => {
                    Self::drain(&mut jobs, &mut placer, &observations, victim, count);
                }
            }
        }

        // Publish status + metrics.
        for (spec, o) in specs.iter().zip(&observed) {
            let target = targets
                .iter()
                .find(|(j, _)| *j == spec.id())
                .map(|(_, t)| *t)
                .unwrap_or(0);
            let preempted: u64 = actions
                .iter()
                .filter_map(|a| match a {
                    FleetAction::Preempt { victim, count, .. } if *victim == spec.id() => {
                        Some(*count as u64)
                    }
                    _ => None,
                })
                .sum();
            let prior = self.registry.status(spec.id()).unwrap_or_default();
            let status = JobStatus {
                phase: if o.completed {
                    JobPhase::Completed
                } else if o.active + o.draining > 0 {
                    JobPhase::Running
                } else {
                    JobPhase::Pending
                },
                desired_workers: target,
                allocated_workers: o.active,
                draining_workers: o.draining,
                preemptions: prior.preemptions + preempted,
                fair_share_deficit: if o.completed {
                    0
                } else {
                    fairshare::deficit(&spec.demand(), target)
                },
            };
            self.registry.publish(spec.id(), status);
            if let Some(reg) = obs.as_ref() {
                let job = spec.id().to_string();
                let tenant = spec.tenant.to_string();
                let labels = [("job", job.as_str()), ("tenant", tenant.as_str())];
                reg.gauge(names::FLEET_ALLOCATED_WORKERS, &labels)
                    .set(status.allocated_workers as f64);
                reg.gauge(names::FLEET_DESIRED_WORKERS, &labels)
                    .set(status.desired_workers as f64);
                reg.gauge(names::FLEET_FAIR_SHARE_DEFICIT, &labels)
                    .set(status.fair_share_deficit as f64);
                reg.counter(names::FLEET_PREEMPTIONS_TOTAL, &labels)
                    .advance_to(status.preemptions);
            }
        }
        if let Some(reg) = obs.as_ref() {
            for action in &actions {
                reg.counter(names::FLEET_ACTIONS_TOTAL, &[("action", action.kind())])
                    .inc();
            }
            reg.gauge(names::FLEET_JOBS, &[]).set(specs.len() as f64);
            reg.histogram(names::FLEET_RECONCILE_SECONDS, &[])
                .record(start.elapsed().as_secs_f64());
        }
        actions
    }

    /// Drains `count` workers of `job`, most-buffered first, returning
    /// their slots to the scorer eagerly: the drained worker is committed
    /// to leave, so its slot can be handed to a beneficiary in the same
    /// tick (physical overshoot is bounded by the draining count).
    fn drain(
        jobs: &mut HashMap<SessionId, ManagedJob>,
        placer: &mut PlacementScorer,
        observations: &HashMap<SessionId, Vec<WorkerObservation>>,
        job: SessionId,
        count: usize,
    ) {
        let Some(managed) = jobs.get_mut(&job) else {
            return;
        };
        let Some(snapshot) = observations.get(&job) else {
            return;
        };
        for id in managed.session.drain_victims(snapshot, count) {
            if managed.session.drain_worker_by_id(id) {
                if let Some(node) = managed.placements.remove(&id) {
                    placer.release(node);
                }
            }
        }
    }
}
