//! The read planner: turning wanted streams into IO requests.
//!
//! Heavy feature filtering over columnar storage yields many small reads
//! (Table VI shows a median IO around 1 KiB), which cripples HDD IOPS. The
//! production fix is **coalescing**: streams within a window (1.25 MiB) are
//! fetched in one IO, amortizing seeks at the cost of *over-reading* the
//! unwanted bytes between them (§VII). [`IoPlan`] captures both effects.

use serde::{Deserialize, Serialize};

/// Default coalescing window: 1.25 MiB.
pub const DEFAULT_COALESCE_WINDOW: u64 = 1_310_720;

/// How wanted byte ranges become IO requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoalescePolicy {
    /// One IO per wanted range (the pre-optimization baseline).
    None,
    /// Merge ranges whose gap is at most the window into one IO.
    Window(u64),
}

impl CoalescePolicy {
    /// The production default window (1.25 MiB).
    pub fn default_window() -> Self {
        CoalescePolicy::Window(DEFAULT_COALESCE_WINDOW)
    }
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        Self::default_window()
    }
}

/// One planned IO request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedRead {
    /// Byte offset within the file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl PlannedRead {
    /// End offset (exclusive).
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Whether this read fully covers `[offset, offset + len)`.
    pub fn covers(&self, offset: u64, len: u64) -> bool {
        offset >= self.offset && offset + len <= self.end()
    }
}

/// A set of IO requests plus over-read accounting.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IoPlan {
    /// The IO requests, sorted by offset.
    pub reads: Vec<PlannedRead>,
    /// Bytes actually wanted by the reader.
    pub wanted_bytes: u64,
    /// Bytes that will be transferred (≥ `wanted_bytes` when coalescing).
    pub read_bytes: u64,
    /// Bytes of decompressed stream payload produced when the plan was
    /// executed (0 for an unexecuted plan). Map-format files decompress
    /// whole rows here even when the projection keeps only a few features.
    pub uncompressed_bytes: u64,
    /// Bytes physically memcpy'd while executing the plan (0 for an
    /// unexecuted plan). The zero-copy fast path slices storage buffers
    /// instead of copying, so this stays near 0; the copying baseline
    /// counts source assembly plus per-stream materialization.
    pub copied_bytes: u64,
}

impl IoPlan {
    /// Builds a plan from wanted `(offset, len)` ranges under `policy`.
    ///
    /// Overlapping or duplicate ranges are merged before planning.
    pub fn build(mut wanted: Vec<(u64, u64)>, policy: CoalescePolicy) -> IoPlan {
        wanted.retain(|&(_, len)| len > 0);
        if wanted.is_empty() {
            return IoPlan::default();
        }
        wanted.sort_unstable();
        // Merge overlaps/adjacency first so wanted_bytes counts each byte once.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(wanted.len());
        for (off, len) in wanted {
            match merged.last_mut() {
                Some(last) if off <= last.0 + last.1 => {
                    let end = (off + len).max(last.0 + last.1);
                    last.1 = end - last.0;
                }
                _ => merged.push((off, len)),
            }
        }
        let wanted_bytes: u64 = merged.iter().map(|&(_, l)| l).sum();

        let gap_limit = match policy {
            CoalescePolicy::None => 0,
            CoalescePolicy::Window(w) => w,
        };
        let mut reads: Vec<PlannedRead> = Vec::new();
        for (off, len) in merged {
            match reads.last_mut() {
                Some(last) if policy != CoalescePolicy::None && off - last.end() <= gap_limit => {
                    last.len = off + len - last.offset;
                }
                _ => reads.push(PlannedRead { offset: off, len }),
            }
        }
        let read_bytes = reads.iter().map(|r| r.len).sum();
        IoPlan {
            reads,
            wanted_bytes,
            read_bytes,
            uncompressed_bytes: 0,
            copied_bytes: 0,
        }
    }

    /// Bytes transferred but not wanted (coalescing cost).
    pub fn over_read_bytes(&self) -> u64 {
        self.read_bytes - self.wanted_bytes
    }

    /// Ratio of transferred to wanted bytes (1.0 = no over-read).
    pub fn amplification(&self) -> f64 {
        if self.wanted_bytes == 0 {
            return 1.0;
        }
        self.read_bytes as f64 / self.wanted_bytes as f64
    }

    /// Number of IO operations.
    pub fn io_count(&self) -> usize {
        self.reads.len()
    }

    /// The read covering `[offset, offset+len)`, if any.
    pub fn read_covering(&self, offset: u64, len: u64) -> Option<&PlannedRead> {
        self.reads.iter().find(|r| r.covers(offset, len))
    }

    /// Merges another plan's accounting into this one (multi-stripe totals).
    pub fn merge(&mut self, other: &IoPlan) {
        self.reads.extend_from_slice(&other.reads);
        self.wanted_bytes += other.wanted_bytes;
        self.read_bytes += other.read_bytes;
        self.uncompressed_bytes += other.uncompressed_bytes;
        self.copied_bytes += other.copied_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_coalescing_is_one_io_per_range() {
        let plan = IoPlan::build(vec![(0, 10), (100, 10), (50, 10)], CoalescePolicy::None);
        assert_eq!(plan.io_count(), 3);
        assert_eq!(plan.wanted_bytes, 30);
        assert_eq!(plan.read_bytes, 30);
        assert_eq!(plan.over_read_bytes(), 0);
        // Sorted by offset.
        assert_eq!(plan.reads[1].offset, 50);
    }

    #[test]
    fn window_merges_nearby_ranges() {
        let plan = IoPlan::build(vec![(0, 10), (30, 10)], CoalescePolicy::Window(25));
        assert_eq!(plan.io_count(), 1);
        assert_eq!(plan.reads[0], PlannedRead { offset: 0, len: 40 });
        assert_eq!(plan.wanted_bytes, 20);
        assert_eq!(plan.over_read_bytes(), 20);
        assert!((plan.amplification() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gap_beyond_window_stays_separate() {
        let plan = IoPlan::build(vec![(0, 10), (1000, 10)], CoalescePolicy::Window(25));
        assert_eq!(plan.io_count(), 2);
        assert_eq!(plan.over_read_bytes(), 0);
    }

    #[test]
    fn overlapping_ranges_deduplicate() {
        let plan = IoPlan::build(vec![(0, 10), (5, 10), (15, 5)], CoalescePolicy::None);
        assert_eq!(plan.io_count(), 1);
        assert_eq!(plan.wanted_bytes, 20);
    }

    #[test]
    fn empty_and_zero_length() {
        let plan = IoPlan::build(vec![], CoalescePolicy::default());
        assert_eq!(plan.io_count(), 0);
        assert_eq!(plan.amplification(), 1.0);
        let plan = IoPlan::build(vec![(10, 0)], CoalescePolicy::None);
        assert_eq!(plan.io_count(), 0);
    }

    #[test]
    fn read_covering_finds_container() {
        let plan = IoPlan::build(vec![(0, 10), (30, 10)], CoalescePolicy::Window(100));
        assert!(plan.read_covering(30, 10).is_some());
        assert!(plan.read_covering(45, 10).is_none());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = IoPlan::build(vec![(0, 10)], CoalescePolicy::None);
        let b = IoPlan::build(vec![(100, 20)], CoalescePolicy::None);
        a.merge(&b);
        assert_eq!(a.io_count(), 2);
        assert_eq!(a.wanted_bytes, 30);
    }

    #[test]
    fn default_window_is_1_25_mib() {
        assert_eq!(DEFAULT_COALESCE_WINDOW, (1.25 * 1024.0 * 1024.0) as u64);
    }
}
