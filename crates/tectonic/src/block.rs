//! Block sizing and replica placement.

use dsi_types::rng::{mix2, mix64};
use dsi_types::NodeId;
use serde::{Deserialize, Serialize};

/// Default block size: 8 MiB.
pub const DEFAULT_BLOCK_SIZE: u64 = 8 * 1024 * 1024;

/// Durability replication factor.
pub const REPLICATION_FACTOR: usize = 3;

/// Identifies one block of one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId {
    /// Hash of the owning file path.
    pub file_hash: u64,
    /// Block index within the file.
    pub index: u64,
}

impl BlockId {
    /// Creates a block id from a file path and block index.
    pub fn new(path: &str, index: u64) -> Self {
        Self {
            file_hash: hash_path(path),
            index,
        }
    }

    /// A stable 64-bit identity for placement hashing.
    pub fn placement_key(&self) -> u64 {
        mix2(self.file_hash, self.index)
    }
}

/// Hashes a file path deterministically.
pub fn hash_path(path: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in path.as_bytes() {
        h = mix64(h ^ *b as u64);
    }
    h
}

/// Chooses `replicas` distinct nodes for a block via rendezvous (highest-
/// random-weight) hashing: stable under node-count changes and uniformly
/// load-balanced.
///
/// # Panics
///
/// Panics if `replicas > node_count` or `node_count == 0`.
pub fn place_replicas(block: BlockId, node_count: usize, replicas: usize) -> Vec<NodeId> {
    assert!(node_count > 0, "cluster has no nodes");
    assert!(
        replicas <= node_count,
        "cannot place {replicas} replicas on {node_count} nodes"
    );
    let key = block.placement_key();
    let mut weighted: Vec<(u64, u64)> = (0..node_count as u64).map(|n| (mix2(key, n), n)).collect();
    weighted.sort_unstable_by(|a, b| b.cmp(a));
    weighted
        .into_iter()
        .take(replicas)
        .map(|(_, n)| NodeId(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn placement_is_deterministic_and_distinct() {
        let b = BlockId::new("table/p0/file1", 3);
        let a = place_replicas(b, 10, 3);
        let c = place_replicas(b, 10, 3);
        assert_eq!(a, c);
        let mut uniq = a.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn placement_balances_load() {
        let nodes = 10;
        let mut counts: HashMap<NodeId, usize> = HashMap::new();
        for i in 0..3000 {
            let b = BlockId::new("f", i);
            for n in place_replicas(b, nodes, 3) {
                *counts.entry(n).or_insert(0) += 1;
            }
        }
        // 9000 placements over 10 nodes: each should be within 2x of mean.
        for (&node, &c) in &counts {
            assert!((450..=1800).contains(&c), "node {node} got {c} placements");
        }
        assert_eq!(counts.len(), nodes);
    }

    #[test]
    fn different_blocks_place_differently() {
        let a = place_replicas(BlockId::new("f", 0), 20, 3);
        let b = place_replicas(BlockId::new("f", 1), 20, 3);
        assert_ne!(a, b);
    }

    #[test]
    fn path_hash_separates_files() {
        assert_ne!(hash_path("a/b"), hash_path("a/c"));
        assert_eq!(hash_path("x"), hash_path("x"));
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn too_many_replicas_panics() {
        place_replicas(BlockId::new("f", 0), 2, 3);
    }
}
