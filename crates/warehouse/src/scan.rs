//! Scan planning and execution: partition pruning, feature projection, and
//! self-contained splits.
//!
//! A **split** is the unit of work the DPP Master hands to Workers: one
//! stripe of one file of one partition, carrying everything a stateless
//! Worker needs to extract its rows (path, footer, projection). Splits
//! partition the selected rows exactly — every selected row appears in
//! exactly one split.

use crate::table::Table;
use dsi_types::{PartitionId, Projection, Result, Sample};
use dwrf::writer::FileFooter;
use dwrf::{CoalescePolicy, DecodeMode, FileReader, IoPlan};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::Arc;
use tectonic::TectonicSource;

/// A self-contained unit of scan work: one stripe of one partition file.
#[derive(Debug, Clone)]
pub struct Split {
    /// Sequence number within the scan (0-based, dataset order).
    pub index: u64,
    /// Partition the rows belong to.
    pub partition: PartitionId,
    /// Tectonic path of the file.
    pub path: String,
    /// The file's footer (shared).
    pub footer: Arc<FileFooter>,
    /// Stripe index within the file.
    pub stripe: usize,
    /// Rows in this split.
    pub rows: u64,
}

/// Accumulated IO accounting for a scan.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ScanStats {
    /// Splits executed.
    pub splits: u64,
    /// Rows decoded.
    pub rows: u64,
    /// Bytes the projection wanted.
    pub wanted_bytes: u64,
    /// Bytes transferred (≥ wanted with coalescing).
    pub read_bytes: u64,
    /// IO operations issued.
    pub ios: u64,
    /// Bytes memcpy'd on the decode path (≈ 0 under the zero-copy fast
    /// path; the full legacy volume in copying mode).
    pub copied_bytes: u64,
}

impl ScanStats {
    /// Mean IO size in bytes.
    pub fn mean_io_size(&self) -> f64 {
        if self.ios == 0 {
            0.0
        } else {
            self.read_bytes as f64 / self.ios as f64
        }
    }

    /// Folds one executed plan into the stats.
    pub fn absorb(&mut self, rows: u64, plan: &IoPlan) {
        self.splits += 1;
        self.rows += rows;
        self.wanted_bytes += plan.wanted_bytes;
        self.read_bytes += plan.read_bytes;
        self.ios += plan.io_count() as u64;
        self.copied_bytes += plan.copied_bytes;
    }
}

/// A planned scan over a table.
#[derive(Debug, Clone)]
pub struct TableScan {
    table: Table,
    partitions: Range<PartitionId>,
    projection: Projection,
    policy: CoalescePolicy,
    decode: DecodeMode,
    job: Option<Arc<str>>,
}

impl TableScan {
    pub(crate) fn new(
        table: Table,
        partitions: Range<PartitionId>,
        projection: Projection,
    ) -> Self {
        Self {
            table,
            partitions,
            projection,
            policy: CoalescePolicy::default_window(),
            decode: DecodeMode::default(),
            job: None,
        }
    }

    /// Overrides the coalescing policy (builder-style).
    pub fn with_policy(mut self, policy: CoalescePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the DWRF decode mode (builder-style). The default is the
    /// zero-copy fast path; [`DecodeMode::Copying`] replays the legacy
    /// materializing decode for ablations.
    pub fn with_decode(mut self, decode: DecodeMode) -> Self {
        self.decode = decode;
        self
    }

    /// Labels the scan's session-scoped metric publications (the shared
    /// decode-pool series) with the owning job (builder-style). Sessions
    /// sharing one registry under the fleet control plane set this to
    /// their session id; an empty `job` keeps them unlabeled.
    pub fn with_job(mut self, job: &str) -> Self {
        if !job.is_empty() {
            self.job = Some(job.into());
        }
        self
    }

    /// The scan's projection.
    pub fn projection(&self) -> &Projection {
        &self.projection
    }

    /// The scan's coalescing policy.
    pub fn policy(&self) -> CoalescePolicy {
        self.policy
    }

    /// Enumerates the scan's splits in dataset order.
    pub fn plan_splits(&self) -> Vec<Split> {
        let mut splits = Vec::new();
        let mut index = 0u64;
        for partition in self.table.partitions() {
            if partition < self.partitions.start || partition >= self.partitions.end {
                continue; // partition pruning (row filter)
            }
            for file in self.table.partition_files(partition) {
                for (stripe, meta) in file.footer.stripes.iter().enumerate() {
                    splits.push(Split {
                        index,
                        partition,
                        path: file.path.clone(),
                        footer: Arc::clone(&file.footer),
                        stripe,
                        rows: meta.row_count,
                    });
                    index += 1;
                }
            }
        }
        splits
    }

    /// Total rows the scan selects.
    pub fn selected_rows(&self) -> u64 {
        self.plan_splits().iter().map(|s| s.rows).sum()
    }

    /// Executes one split, returning its decoded rows and the IO plan.
    ///
    /// Reads go through the table's SSD cache tier when one is attached.
    ///
    /// # Errors
    ///
    /// Propagates storage and decode failures.
    pub fn read_split(&self, split: &Split) -> Result<(Vec<Sample>, IoPlan)> {
        self.read_split_inner(split, None)
    }

    /// [`TableScan::read_split`] under a distributed-trace context: the
    /// fetch phase records a `StorageRead` span, each chunk read a
    /// `TectonicIo` span beneath it, and the decode phase a `DwrfDecode`
    /// span — all within `ctx`'s trace, parented under `ctx`'s span (the
    /// worker's extract span). Falls back to the untraced path when `ctx`
    /// is unsampled.
    ///
    /// # Errors
    ///
    /// Propagates storage and decode failures.
    pub fn read_split_traced(
        &self,
        split: &Split,
        ctx: dsi_obs::TraceContext,
        trace_registry: &dsi_obs::Registry,
    ) -> Result<(Vec<Sample>, IoPlan)> {
        if !ctx.is_sampled() {
            return self.read_split_inner(split, None);
        }
        self.read_split_inner(split, Some((ctx, trace_registry)))
    }

    fn read_split_inner(
        &self,
        split: &Split,
        trace: Option<(dsi_obs::TraceContext, &dsi_obs::Registry)>,
    ) -> Result<(Vec<Sample>, IoPlan)> {
        // The footer is shared by reference: splits of the same file decode
        // against one parsed footer instead of cloning it per split.
        let mut reader =
            FileReader::from_footer(Arc::clone(&split.footer)).with_decode_mode(self.decode);
        if let Some(reg) = self.table.registry() {
            reader = reader.with_registry(&reg);
        }
        if let Some(job) = &self.job {
            reader = reader.with_job(job);
        }
        // Pre-allocate the StorageRead span id so per-chunk TectonicIo
        // spans can parent under it before the reader records it.
        let mut storage_ctx = dsi_obs::TraceContext::NONE;
        if let Some((ctx, reg)) = trace {
            let storage_span = dsi_obs::next_span_id();
            reader = reader.with_trace(reg, ctx, split.index, storage_span);
            storage_ctx = dsi_obs::TraceContext {
                trace_id: ctx.trace_id,
                span_id: storage_span,
            };
        }
        match self.table.cache() {
            Some(cache) => {
                let mut source = tectonic::CachedSource::new(
                    self.table.cluster().clone(),
                    cache,
                    split.path.clone(),
                );
                if let Some((_, reg)) = trace {
                    source = source.with_trace(reg, storage_ctx, split.index);
                }
                reader.read_stripe_from(
                    split.stripe,
                    Some(&self.projection),
                    self.policy,
                    &mut source,
                )
            }
            None => {
                let mut source =
                    TectonicSource::new(self.table.cluster().clone(), split.path.clone());
                if let Some((_, reg)) = trace {
                    source = source.with_trace(reg, storage_ctx, split.index);
                }
                reader.read_stripe_from(
                    split.stripe,
                    Some(&self.projection),
                    self.policy,
                    &mut source,
                )
            }
        }
    }

    /// Executes the whole scan serially, returning all rows.
    ///
    /// # Errors
    ///
    /// Propagates storage and decode failures.
    pub fn read_all(&self) -> Result<Vec<Sample>> {
        let (rows, _) = self.read_all_with_stats()?;
        Ok(rows)
    }

    /// Executes the whole scan serially, returning rows plus IO accounting.
    ///
    /// # Errors
    ///
    /// Propagates storage and decode failures.
    pub fn read_all_with_stats(&self) -> Result<(Vec<Sample>, ScanStats)> {
        let mut stats = ScanStats::default();
        let mut rows = Vec::new();
        for split in self.plan_splits() {
            let (mut batch, plan) = self.read_split(&split)?;
            stats.absorb(batch.len() as u64, &plan);
            rows.append(&mut batch);
        }
        Ok((rows, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Table, TableConfig};
    use dsi_types::{FeatureId, SparseList, TableId};
    use dwrf::WriterOptions;
    use tectonic::{ClusterConfig, TectonicCluster};

    fn build_table(rows_per_stripe: usize) -> Table {
        let cluster = TectonicCluster::new(ClusterConfig::small());
        let opts = WriterOptions {
            rows_per_stripe,
            ..Default::default()
        };
        let table = Table::create(
            cluster,
            TableConfig::new(TableId(1), "scan_test").with_writer_options(opts),
        )
        .unwrap();
        for day in 0..4u32 {
            let samples: Vec<Sample> = (0..25u64)
                .map(|i| {
                    let mut s = Sample::new((day as u64 * 25 + i) as f32);
                    s.set_dense(FeatureId(1), i as f32);
                    s.set_sparse(FeatureId(2), SparseList::from_ids(vec![i, i * 2]));
                    s.set_dense(FeatureId(3), day as f32);
                    s
                })
                .collect();
            table
                .write_partition(PartitionId::new(day), samples)
                .unwrap();
        }
        table
    }

    #[test]
    fn splits_cover_selected_rows_exactly_once() {
        let table = build_table(10);
        let scan = table.scan(
            PartitionId::new(1)..PartitionId::new(3),
            Projection::new(vec![FeatureId(1)]),
        );
        let splits = scan.plan_splits();
        // 2 partitions × 25 rows at 10 rows/stripe = 3 stripes each.
        assert_eq!(splits.len(), 6);
        assert_eq!(scan.selected_rows(), 50);
        // Indices are sequential.
        for (i, s) in splits.iter().enumerate() {
            assert_eq!(s.index, i as u64);
        }
        // Rows decode exactly once: labels 25..75.
        let rows = scan.read_all().unwrap();
        let mut labels: Vec<u32> = rows.iter().map(|s| s.label() as u32).collect();
        labels.sort_unstable();
        assert_eq!(labels, (25..75).collect::<Vec<_>>());
    }

    #[test]
    fn partition_pruning_excludes_range() {
        let table = build_table(100);
        let scan = table.scan(
            PartitionId::new(0)..PartitionId::new(1),
            Projection::new(vec![FeatureId(3)]),
        );
        let rows = scan.read_all().unwrap();
        assert_eq!(rows.len(), 25);
        assert!(rows.iter().all(|s| s.dense(FeatureId(3)) == Some(0.0)));
    }

    #[test]
    fn projection_filters_columns_and_reduces_bytes() {
        let table = build_table(100);
        let narrow = table
            .scan(
                PartitionId::new(0)..PartitionId::new(4),
                Projection::new(vec![FeatureId(1)]),
            )
            .with_policy(CoalescePolicy::None);
        let wide = table
            .scan(
                PartitionId::new(0)..PartitionId::new(4),
                Projection::new(vec![FeatureId(1), FeatureId(2), FeatureId(3)]),
            )
            .with_policy(CoalescePolicy::None);
        let (rows, narrow_stats) = narrow.read_all_with_stats().unwrap();
        let (_, wide_stats) = wide.read_all_with_stats().unwrap();
        assert!(narrow_stats.wanted_bytes < wide_stats.wanted_bytes);
        assert!(rows[0].sparse(FeatureId(2)).is_none());
        assert!(rows[0].dense(FeatureId(1)).is_some());
    }

    #[test]
    fn coalescing_trades_ios_for_bytes() {
        let table = build_table(100);
        let proj = Projection::new(vec![FeatureId(1), FeatureId(3)]);
        let none = table
            .scan(PartitionId::new(0)..PartitionId::new(4), proj.clone())
            .with_policy(CoalescePolicy::None);
        let coalesced = table
            .scan(PartitionId::new(0)..PartitionId::new(4), proj)
            .with_policy(CoalescePolicy::default_window());
        let (_, a) = none.read_all_with_stats().unwrap();
        let (_, b) = coalesced.read_all_with_stats().unwrap();
        assert!(b.ios <= a.ios);
        assert!(b.read_bytes >= b.wanted_bytes);
        assert_eq!(a.wanted_bytes, b.wanted_bytes);
        assert!(b.mean_io_size() >= a.mean_io_size());
    }

    #[test]
    fn empty_range_yields_no_splits() {
        let table = build_table(10);
        let scan = table.scan(
            PartitionId::new(2)..PartitionId::new(2),
            Projection::new(vec![FeatureId(1)]),
        );
        assert!(scan.plan_splits().is_empty());
        assert_eq!(scan.selected_rows(), 0);
        assert!(scan.read_all().unwrap().is_empty());
    }

    #[test]
    fn cache_tier_absorbs_repeat_jobs() {
        // Two "jobs" with overlapping projections: the second job's reads
        // of shared (popular) features hit the SSD cache, sparing HDDs.
        let table = build_table(50);
        table.attach_cache(tectonic::SsdCache::new(dsi_types::ByteSize::mib(64)));
        let proj = Projection::new(vec![FeatureId(1), FeatureId(2)]);
        let first = table
            .scan(PartitionId::new(0)..PartitionId::new(4), proj.clone())
            .read_all()
            .unwrap();
        assert_eq!(first.len(), 100);
        let cache = table.cache().unwrap();
        let misses_after_first = cache.stats().misses;
        table.cluster().reset_stats();
        let second = table
            .scan(PartitionId::new(0)..PartitionId::new(4), proj)
            .read_all()
            .unwrap();
        assert_eq!(second.len(), 100);
        // All pages were hot: no new misses, no HDD traffic.
        assert_eq!(cache.stats().misses, misses_after_first);
        assert_eq!(table.cluster().total_stats().ios, 0);
        assert!(cache.stats().hit_rate() > 0.4);
    }

    #[test]
    fn attached_registry_sees_scan_decode_telemetry() {
        let table = build_table(50);
        let reg = dsi_obs::Registry::new();
        table.attach_registry(&reg);
        let scan = table.scan(
            PartitionId::new(0)..PartitionId::new(4),
            Projection::new(vec![FeatureId(1), FeatureId(2)]),
        );
        let (_, stats) = scan.read_all_with_stats().unwrap();
        assert_eq!(
            reg.counter_value(dsi_obs::names::DWRF_STRIPES_DECODED_TOTAL, &[]),
            stats.splits
        );
        assert_eq!(
            reg.counter_value(dsi_obs::names::DWRF_READ_BYTES_TOTAL, &[]),
            stats.read_bytes
        );
        let extract = reg
            .histogram(dsi_obs::span::STAGE_SECONDS, &[("stage", "extract")])
            .snapshot();
        assert_eq!(extract.count, stats.splits);
    }

    #[test]
    fn decode_modes_agree_on_rows_but_not_copies() {
        let table = build_table(25);
        let proj = Projection::new(vec![FeatureId(1), FeatureId(2)]);
        let fast = table.scan(PartitionId::new(0)..PartitionId::new(4), proj.clone());
        let slow = table
            .scan(PartitionId::new(0)..PartitionId::new(4), proj)
            .with_decode(DecodeMode::Copying);
        let (fast_rows, fast_stats) = fast.read_all_with_stats().unwrap();
        let (slow_rows, slow_stats) = slow.read_all_with_stats().unwrap();
        assert_eq!(fast_rows, slow_rows, "decode modes must agree on rows");
        assert_eq!(fast_stats.copied_bytes, 0, "fast path never copies here");
        // Legacy decode copies each source chunk once (assembly) and each
        // wanted stream once (materialization).
        assert_eq!(
            slow_stats.copied_bytes,
            slow_stats.read_bytes + slow_stats.wanted_bytes
        );
    }

    #[test]
    fn traced_split_read_builds_storage_span_subtree() {
        let table = build_table(25);
        let scan = table.scan(
            PartitionId::new(0)..PartitionId::new(1),
            Projection::new(vec![FeatureId(1), FeatureId(2)]),
        );
        let split = &scan.plan_splits()[0];
        let reg = dsi_obs::Registry::new();
        let extract_ctx = dsi_obs::TraceContext {
            trace_id: 0xACE,
            span_id: 500,
        };
        let (rows, _) = scan.read_split_traced(split, extract_ctx, &reg).unwrap();
        assert_eq!(rows.len(), 25);

        let spans = reg.trace_spans();
        let storage: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == dsi_obs::SpanKind::StorageRead)
            .collect();
        let decode: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == dsi_obs::SpanKind::DwrfDecode)
            .collect();
        let io: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == dsi_obs::SpanKind::TectonicIo)
            .collect();
        assert_eq!(storage.len(), 1);
        assert_eq!(decode.len(), 1);
        assert!(!io.is_empty());
        assert_eq!(storage[0].parent_id, 500);
        assert_eq!(decode[0].parent_id, 500);
        for s in &io {
            assert_eq!(s.parent_id, storage[0].span_id, "io under StorageRead");
        }
        assert!(spans.iter().all(|s| s.trace_id == 0xACE));
        assert!(spans.iter().all(|s| s.split == split.index));

        // Unsampled context records nothing.
        let reg2 = dsi_obs::Registry::new();
        scan.read_split_traced(split, dsi_obs::TraceContext::NONE, &reg2)
            .unwrap();
        assert!(reg2.trace_spans().is_empty());
    }

    #[test]
    fn scan_charges_storage_nodes() {
        let table = build_table(50);
        table.cluster().reset_stats();
        let scan = table.scan(
            PartitionId::new(0)..PartitionId::new(4),
            Projection::new(vec![FeatureId(2)]),
        );
        let (_, stats) = scan.read_all_with_stats().unwrap();
        let device = table.cluster().total_stats();
        assert_eq!(device.bytes, stats.read_bytes);
        assert!(device.busy_ns > 0);
    }
}
