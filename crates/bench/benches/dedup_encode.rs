//! RecD dedup hot paths: DedupSet stream encode/decode and the set-aware
//! transform executor vs the plain per-row path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dedup::DedupConfig;
use dsi_types::{Batch, FeatureId, Projection, Sample, SparseList};
use dwrf::{FileReader, FileWriter, WriterOptions};
use std::hint::black_box;
use transforms::TransformPlan;

/// Sessionized rows: every `members` consecutive rows share one sparse
/// payload, dense/labels stay fresh — the shape the ETL emits.
fn sessionized_rows(sessions: u64, members: u64) -> Vec<Sample> {
    (0..sessions * members)
        .map(|i| {
            let session = i / members;
            let mut s = Sample::new(i as f32);
            s.set_dense(FeatureId(1), i as f32 * 0.25);
            s.set_dense(FeatureId(2), (i % 7) as f32);
            for f in 10..14u64 {
                s.set_sparse(
                    FeatureId(f),
                    SparseList::from_ids((0..16).map(|k| session * 1000 + f * 100 + k).collect()),
                );
            }
            s
        })
        .collect()
}

fn payload_bytes(rows: &[Sample]) -> u64 {
    rows.iter().map(|s| s.payload_bytes() as u64).sum()
}

fn bench_encode(c: &mut Criterion) {
    let data = sessionized_rows(64, 8);
    let payload = payload_bytes(&data);
    let mut group = c.benchmark_group("dedup_encode");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(payload));
    let raw = WriterOptions {
        compressed: false,
        encrypted: false,
        ..Default::default()
    };
    for (name, opts) in [
        ("plain_write", raw.clone()),
        (
            "dedup_write",
            WriterOptions {
                dedup: true,
                ..raw.clone()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut w = FileWriter::new(opts.clone());
                for s in &data {
                    w.push(s.clone());
                }
                black_box(w.finish().expect("non-empty"))
            })
        });
    }
    group.finish();

    let build = |opts: WriterOptions| {
        let mut w = FileWriter::new(opts);
        for s in &data {
            w.push(s.clone());
        }
        w.finish().expect("non-empty")
    };
    let plain = build(raw.clone());
    let deduped = build(WriterOptions { dedup: true, ..raw });
    let projection = Projection::new(vec![FeatureId(1), FeatureId(10), FeatureId(11)]);
    let mut group = c.benchmark_group("dedup_decode");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(payload));
    group.bench_function("plain_read", |b| {
        let reader = FileReader::open(plain.bytes().clone()).expect("valid");
        b.iter(|| black_box(reader.read_all(&projection).expect("decodable")))
    });
    group.bench_function("dedup_read", |b| {
        let reader = FileReader::open(deduped.bytes().clone()).expect("valid");
        b.iter(|| black_box(reader.read_all(&projection).expect("decodable")))
    });
    group.finish();
}

fn bench_transform(c: &mut Criterion) {
    let data = sessionized_rows(64, 8);
    let sparse: Vec<FeatureId> = (10..14).map(FeatureId).collect();
    let dense = vec![FeatureId(1), FeatureId(2)];
    let projection = Projection::new(
        dense
            .iter()
            .chain(sparse.iter())
            .copied()
            .collect::<Vec<_>>(),
    );
    let plan = TransformPlan::preset(&projection, &sparse, &dense, 0.8, 1_000_000);
    let cfg = DedupConfig::default();
    let mut group = c.benchmark_group("dedup_transform");
    group.sample_size(20);
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("plain_apply", |b| {
        b.iter(|| black_box(plan.apply_batch(Batch::from_samples(data.clone()), 0)))
    });
    group.bench_function("dedup_apply", |b| {
        b.iter(|| {
            black_box(dedup::apply_batch_dedup(
                &plan,
                Batch::from_samples(data.clone()),
                0,
                &cfg,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encode, bench_transform);
criterion_main!(benches);
