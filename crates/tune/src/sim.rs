//! Virtual-time pipeline simulation for tuner evaluation.
//!
//! Extends the analytic style of `dpp::FleetSim` with a pipeline model
//! in which every knob matters: per-worker supply is the minimum of an
//! extract stage (storage fetch latency hidden by `read_ahead`), a
//! transform stage (scaled sub-linearly by `parallelism`), and a load
//! stage (fixed per-batch overhead amortized by `batch_size`). The
//! trainer drains an aggregate sample buffer; a tick with an empty
//! buffer and a supply deficit is (fractionally) stalled. Each tick the
//! sim synthesizes the same [`TunerSignals`] a live session would
//! publish and lets a [`TunerPolicy`] move the knobs, so the static
//! watermark scaler and the closed-loop tuner compete on identical,
//! deterministic scenarios.

use dpp::{AutoScaler, KnobBounds, Knobs, ScalerConfig, TunerPolicy, TunerSignals};
use dsi_obs::SignalSnapshot;
use serde::{Deserialize, Serialize};

/// One benchmark scenario: a workload shape plus knob fences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Stable scenario name for reports.
    pub name: &'static str,
    /// Trainer demand in samples/s (base; see `diurnal_amplitude`).
    pub demand_qps: f64,
    /// Per-worker extract throughput at full fetch/compute overlap.
    pub extract_qps: f64,
    /// Fraction of extract wall time blocked on storage fetch when
    /// `read_ahead == 0`; each read-ahead step overlaps one more fetch.
    pub fetch_duty: f64,
    /// Storage fetch latency, seconds (feeds the synthesized fetch p99).
    pub fetch_latency: f64,
    /// Per-worker single-lane transform throughput, samples/s.
    pub transform_qps: f64,
    /// Marginal efficiency of each extra transform lane (geometric).
    pub lane_efficiency: f64,
    /// Load-stage per-sample service time, seconds.
    pub load_per_sample: f64,
    /// Load-stage fixed overhead per produced batch, seconds.
    pub batch_overhead: f64,
    /// Relative diurnal swing of demand (0 = constant).
    pub diurnal_amplitude: f64,
    /// Diurnal period, virtual seconds.
    pub diurnal_period: f64,
    /// Optional mid-run hardware loss: at time `.0`, `.1` workers die.
    pub node_loss_at: Option<(f64, usize)>,
    /// Per-worker buffer capacity, in batches.
    pub buffer_batches: f64,
    /// Knob fences both competing policies honor.
    pub bounds: KnobBounds,
    /// Starting knob setting.
    pub initial: Knobs,
    /// Seconds between controller ticks.
    pub tick_secs: f64,
    /// Virtual run length, seconds.
    pub duration_secs: f64,
    /// Stall fraction under which the run counts as converged.
    pub stall_target: f64,
}

impl Scenario {
    fn base() -> Self {
        Self {
            name: "base",
            demand_qps: 100_000.0,
            extract_qps: 12_000.0,
            fetch_duty: 0.0,
            fetch_latency: 0.02,
            transform_qps: 20_000.0,
            lane_efficiency: 0.9,
            load_per_sample: 1.0 / 50_000.0,
            batch_overhead: 0.0005,
            diurnal_amplitude: 0.0,
            diurnal_period: 600.0,
            node_loss_at: None,
            buffer_batches: 8.0,
            bounds: KnobBounds {
                workers: (1, 16),
                read_ahead: (0, 4),
                batch_size: (16, 256),
                parallelism: (1, 4),
            },
            initial: Knobs {
                workers: 2,
                read_ahead: 0,
                batch_size: 32,
                parallelism: 1,
            },
            tick_secs: 5.0,
            duration_secs: 2_000.0,
            stall_target: 0.02,
        }
    }

    /// Extract-bound: storage fetch latency caps per-worker supply at
    /// 40% of its decode rate. Buying workers hits the fleet ceiling
    /// before meeting demand; hiding the fetch (`read_ahead`) fixes it.
    pub fn extract_bound() -> Self {
        Self {
            name: "extract-bound",
            fetch_duty: 0.6,
            ..Self::base()
        }
    }

    /// Transform-bound: single-lane preprocessing is the bottleneck; the
    /// fleet ceiling is short of demand until `parallelism` adds lanes.
    pub fn transform_bound() -> Self {
        Self {
            name: "transform-bound",
            demand_qps: 120_000.0,
            extract_qps: 25_000.0,
            transform_qps: 5_500.0,
            ..Self::base()
        }
    }

    /// Trainer-bound: fixed per-batch overhead on the load/fetch path
    /// dominates at small batches; only `batch_size` amortizes it.
    pub fn trainer_bound() -> Self {
        Self {
            name: "trainer-bound",
            demand_qps: 120_000.0,
            extract_qps: 25_000.0,
            transform_qps: 25_000.0,
            load_per_sample: 1.0 / 16_000.0,
            batch_overhead: 0.004,
            ..Self::base()
        }
    }

    /// Diurnal load: demand swings ±40% on a 10-minute period; the
    /// controller must grow into every peak without stalling.
    pub fn diurnal() -> Self {
        Self {
            name: "diurnal",
            demand_qps: 80_000.0,
            extract_qps: 12_000.0,
            transform_qps: 15_000.0,
            diurnal_amplitude: 0.4,
            bounds: KnobBounds {
                workers: (1, 24),
                ..Self::base().bounds
            },
            duration_secs: 3_000.0,
            ..Self::base()
        }
    }

    /// The four benchmark scenarios, in report order.
    pub fn all() -> Vec<Scenario> {
        vec![
            Self::extract_bound(),
            Self::transform_bound(),
            Self::trainer_bound(),
            Self::diurnal(),
        ]
    }

    /// Shrinks the run for CI smoke (same shape, quarter duration).
    pub fn smoke(mut self) -> Self {
        self.duration_secs = (self.duration_secs / 4.0).max(400.0);
        self
    }

    /// The static watermark baseline for this scenario's worker fences.
    pub fn static_policy(&self) -> AutoScaler {
        AutoScaler::new(ScalerConfig {
            min_workers: self.bounds.workers.0,
            max_workers: self.bounds.workers.1,
            ..ScalerConfig::default()
        })
    }

    /// Instantaneous demand at virtual time `t`.
    pub fn demand_at(&self, t: f64) -> f64 {
        if self.diurnal_amplitude == 0.0 {
            return self.demand_qps;
        }
        let phase = 2.0 * std::f64::consts::PI * t / self.diurnal_period;
        self.demand_qps * (1.0 + self.diurnal_amplitude * phase.sin())
    }

    /// Per-worker extract throughput at `read_ahead` depth: each step of
    /// read-ahead overlaps one more in-flight fetch with compute, until
    /// the fetch is fully hidden.
    pub fn extract_rate(&self, knobs: &Knobs) -> f64 {
        let overlap = ((1.0 - self.fetch_duty) * (1.0 + knobs.read_ahead as f64)).min(1.0);
        self.extract_qps * overlap
    }

    /// Per-worker transform throughput with `parallelism` lanes
    /// (geometric diminishing returns).
    pub fn transform_rate(&self, knobs: &Knobs) -> f64 {
        let mut factor = 0.0;
        for lane in 0..knobs.parallelism.max(1) {
            factor += self.lane_efficiency.powi(lane as i32);
        }
        self.transform_qps * factor
    }

    /// Per-worker load throughput at `batch_size`: the fixed per-batch
    /// overhead is amortized across the batch's samples.
    pub fn load_rate(&self, knobs: &Knobs) -> f64 {
        let b = knobs.batch_size.max(1) as f64;
        b / (self.batch_overhead + b * self.load_per_sample)
    }

    /// Per-worker supply: the slowest pipeline stage.
    pub fn per_worker_qps(&self, knobs: &Knobs) -> f64 {
        self.extract_rate(knobs)
            .min(self.transform_rate(knobs))
            .min(self.load_rate(knobs))
    }
}

/// One sampled controller tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunePoint {
    /// Virtual time, seconds.
    pub t: f64,
    /// Knobs in force during this tick.
    pub knobs: Knobs,
    /// Fraction of this tick the trainer spent stalled.
    pub stall: f64,
    /// Aggregate buffered samples at tick end.
    pub buffered: f64,
    /// Aggregate supply, samples/s.
    pub supply: f64,
}

/// Result of one policy's run over a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneTrace {
    /// Policy name the trace was produced by.
    pub policy: String,
    /// Sampled points, one per tick.
    pub points: Vec<TunePoint>,
    /// Stall fraction over the whole run.
    pub stall_fraction: f64,
    /// Mean stall fraction over the final third (steady state).
    pub steady_stall: f64,
    /// First virtual time after which the *remaining* run's mean stall
    /// stays under the scenario target; the full duration if never.
    pub time_to_converge: f64,
    /// Mean worker cost (worker-seconds per second).
    pub mean_workers: f64,
    /// Knobs at run end.
    pub final_knobs: Knobs,
}

impl TuneTrace {
    fn from_points(
        points: Vec<TunePoint>,
        tick: f64,
        duration: f64,
        target: f64,
        policy: &str,
    ) -> Self {
        let n = points.len().max(1);
        let total: f64 = points.iter().map(|p| p.stall).sum();
        let tail = &points[points.len() - n.div_ceil(3)..];
        let steady = tail.iter().map(|p| p.stall).sum::<f64>() / tail.len().max(1) as f64;
        // Sliding-window means, scanned from the end: convergence is the
        // earliest time after which every window stays under target — an
        // isolated exploration blip is diluted by its window, sustained
        // residual stall is not (and a long calm tail cannot launder a
        // stalled warm-up the way a whole-suffix mean would).
        let w = (n / 20).max(3).min(n);
        let windowed = |i: usize| {
            let end = (i + w).min(points.len());
            points[i..end].iter().map(|p| p.stall).sum::<f64>() / (end - i) as f64
        };
        let mut time_to_converge = duration;
        for (i, p) in points.iter().enumerate().rev() {
            if windowed(i) < target {
                time_to_converge = p.t;
            } else {
                break;
            }
        }
        let mean_workers = points.iter().map(|p| p.knobs.workers as f64).sum::<f64>() / n as f64;
        Self {
            policy: policy.to_string(),
            stall_fraction: total / n as f64,
            steady_stall: steady,
            time_to_converge,
            mean_workers,
            final_knobs: points.last().map(|p| p.knobs).unwrap_or_default(),
            points,
        }
        .with_tick(tick)
    }

    fn with_tick(self, _tick: f64) -> Self {
        self
    }
}

/// Runs `policy` over `scenario` in virtual time, synthesizing the live
/// signal stream each tick. Fully deterministic.
pub fn run_scenario(scenario: &Scenario, policy: &mut dyn TunerPolicy) -> TuneTrace {
    let bounds = scenario.bounds;
    let mut knobs = bounds.clamp(scenario.initial);
    let mut buffered = 0.0f64; // samples, aggregate
    let mut points = Vec::new();
    let mut lost = false;

    // Cumulative synthesized signal state.
    let mut extract_secs = 0.0f64;
    let mut transform_secs = 0.0f64;
    let mut load_secs = 0.0f64;
    let mut stall_secs = 0.0f64;
    let mut starved = 0u64;
    let mut batches = 0u64;

    let mut t = 0.0;
    while t < scenario.duration_secs {
        if let Some((at, k)) = scenario.node_loss_at {
            if !lost && t >= at {
                lost = true;
                knobs.workers = knobs.workers.saturating_sub(k).max(bounds.workers.0);
            }
        }
        let demand = scenario.demand_at(t);
        let per_worker = scenario.per_worker_qps(&knobs);
        let supply = knobs.workers as f64 * per_worker;
        let cap = knobs.workers as f64 * scenario.buffer_batches * knobs.batch_size as f64;

        // Integrate the buffer over the tick; a deficit first drains the
        // buffer, then stalls the trainer for the uncovered remainder.
        let net = (supply - demand) * scenario.tick_secs;
        let stall = if net >= 0.0 || buffered + net >= 0.0 {
            0.0
        } else {
            // Seconds of the tick the trainer had neither supply nor
            // buffer, as a fraction, weighted by the deficit depth.
            let uncovered = -(buffered + net);
            (uncovered / (demand * scenario.tick_secs)).clamp(0.0, 1.0)
        };
        buffered = (buffered + net).clamp(0.0, cap);

        // Synthesized per-stage busy time: samples served over each
        // stage's per-worker rate — the bottleneck stage accumulates the
        // most, exactly like real span telemetry.
        let served = demand * scenario.tick_secs * (1.0 - stall);
        let pw = knobs.workers.max(1) as f64;
        extract_secs += served / (scenario.extract_rate(&knobs) * pw);
        transform_secs += served / (scenario.transform_rate(&knobs) * pw);
        load_secs += served / (scenario.load_rate(&knobs) * pw);
        stall_secs += stall * scenario.tick_secs;
        if stall > 0.0 {
            starved += 1;
        }
        batches += (served / knobs.batch_size as f64) as u64;

        points.push(TunePoint {
            t,
            knobs,
            stall,
            buffered,
            supply,
        });

        // Controller tick over the synthesized signal stream.
        let fetch_hidden = ((1.0 - scenario.fetch_duty) * (1.0 + knobs.read_ahead as f64)).min(1.0);
        let snapshot = SignalSnapshot {
            stall_fraction: stall,
            fetch_p99: scenario.fetch_latency * (1.0 - fetch_hidden).max(0.0) * 10.0,
            starved_polls: starved,
            client_batches: batches,
            pool_hit_ratio: 1.0,
            prefetch_depth: knobs.read_ahead as f64,
            extract_secs,
            transform_secs,
            load_secs,
            stall_secs,
            queue_depth: 0.0,
            workers: knobs.workers as f64,
        };
        let signals = TunerSignals {
            snapshot,
            mean_buffered: buffered / knobs.batch_size as f64 / pw,
            mean_utilization: (demand / supply.max(1e-9)).min(1.0),
            live_workers: knobs.workers,
        };
        knobs = bounds.clamp(policy.decide(&signals, &knobs));
        t += scenario.tick_secs;
    }
    TuneTrace::from_points(
        points,
        scenario.tick_secs,
        scenario.duration_secs,
        scenario.stall_target,
        policy.name(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{OnlineTuner, TunerConfig};

    fn tuner_for(s: &Scenario) -> OnlineTuner {
        OnlineTuner::new(TunerConfig {
            bounds: s.bounds,
            stall_target: s.stall_target,
            ..TunerConfig::default()
        })
    }

    #[test]
    fn static_scaler_cannot_fix_extract_bound() {
        let s = Scenario::extract_bound();
        let trace = run_scenario(&s, &mut s.static_policy());
        // Pegged at the fleet ceiling and still short of demand.
        assert_eq!(trace.final_knobs.workers, s.bounds.workers.1);
        assert!(
            trace.steady_stall > 0.1,
            "steady stall {:.3} should stay high",
            trace.steady_stall
        );
        assert_eq!(trace.time_to_converge, s.duration_secs, "never converges");
    }

    #[test]
    fn tuner_fixes_extract_bound_via_read_ahead() {
        let s = Scenario::extract_bound();
        let trace = run_scenario(&s, &mut tuner_for(&s));
        assert!(
            trace.final_knobs.read_ahead > 0,
            "tuner should raise read_ahead, got {:?}",
            trace.final_knobs
        );
        assert!(
            trace.steady_stall < s.stall_target,
            "steady stall {:.4}",
            trace.steady_stall
        );
        assert!(trace.time_to_converge < s.duration_secs / 2.0);
    }

    #[test]
    fn tuner_fixes_transform_bound_via_parallelism() {
        let s = Scenario::transform_bound();
        let static_trace = run_scenario(&s, &mut s.static_policy());
        let tuned = run_scenario(&s, &mut tuner_for(&s));
        assert!(tuned.final_knobs.parallelism > 1, "{:?}", tuned.final_knobs);
        assert!(tuned.steady_stall < static_trace.steady_stall);
        assert!(tuned.time_to_converge < static_trace.time_to_converge);
    }

    #[test]
    fn tuner_fixes_trainer_bound_via_batch_size() {
        let s = Scenario::trainer_bound();
        let static_trace = run_scenario(&s, &mut s.static_policy());
        let tuned = run_scenario(&s, &mut tuner_for(&s));
        assert!(
            tuned.final_knobs.batch_size > s.initial.batch_size,
            "{:?}",
            tuned.final_knobs
        );
        assert!(
            tuned.steady_stall < s.stall_target,
            "{:.4}",
            tuned.steady_stall
        );
        assert!(static_trace.steady_stall > 0.1);
    }

    #[test]
    fn diurnal_load_converges_for_both_policies() {
        let s = Scenario::diurnal();
        let static_trace = run_scenario(&s, &mut s.static_policy());
        let tuned = run_scenario(&s, &mut tuner_for(&s));
        // Capacity is sufficient here; both policies must track the swing
        // and end converged (the tuner may trail slightly while it pays
        // for exploration, but not by a visible stall).
        assert!(
            static_trace.steady_stall < s.stall_target,
            "static {:.4}",
            static_trace.steady_stall
        );
        assert!(
            tuned.steady_stall < s.stall_target,
            "tuned {:.4}",
            tuned.steady_stall
        );
    }

    #[test]
    fn node_loss_mid_run_is_regrown() {
        let mut s = Scenario::diurnal();
        s.node_loss_at = Some((1_500.0, 6));
        let tuned = run_scenario(&s, &mut tuner_for(&s));
        // Lost capacity comes back: the run still ends converged.
        assert!(
            tuned.steady_stall < 0.05,
            "steady stall {:.4} after node loss",
            tuned.steady_stall
        );
        assert!(tuned.final_knobs.workers >= s.bounds.workers.0);
    }

    #[test]
    fn bounds_hold_at_every_simulated_tick() {
        for s in Scenario::all() {
            let trace = run_scenario(&s, &mut tuner_for(&s));
            for p in &trace.points {
                let b = s.bounds;
                assert!(p.knobs.workers >= b.workers.0 && p.knobs.workers <= b.workers.1);
                assert!(
                    p.knobs.read_ahead >= b.read_ahead.0 && p.knobs.read_ahead <= b.read_ahead.1
                );
                assert!(
                    p.knobs.batch_size >= b.batch_size.0 && p.knobs.batch_size <= b.batch_size.1
                );
                assert!(
                    p.knobs.parallelism >= b.parallelism.0
                        && p.knobs.parallelism <= b.parallelism.1
                );
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let s = Scenario::extract_bound();
        let a = run_scenario(&s, &mut tuner_for(&s));
        let b = run_scenario(&s, &mut tuner_for(&s));
        assert_eq!(a.points, b.points);
    }
}
