//! The topic-addressed message bus every host's Scribe daemon writes to.

use crate::logdevice::{LogStream, Lsn};
use crate::record::ScribeRecord;
use chaos::{FaultInjector, FaultKind, HookPoint};
use dsi_types::Result;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// A logical stream name, e.g. `"rm1/features"`.
pub type Topic = String;

#[derive(Default)]
struct BusInner {
    streams: RwLock<HashMap<Topic, Arc<RwLock<LogStream>>>>,
    chaos: RwLock<Option<Arc<FaultInjector>>>,
    /// A record held back by an injected `ReorderRecord` fault: it is
    /// appended only after the *next* publish, swapping arrival order.
    held: Mutex<Option<(Topic, ScribeRecord)>>,
}

/// A cheaply-cloneable handle to the message bus.
///
/// Services on every host pass raw feature and event logs to their local
/// daemon; the bus groups them into per-topic [`LogStream`]s.
#[derive(Clone, Default)]
pub struct MessageBus {
    inner: Arc<BusInner>,
}

impl std::fmt::Debug for MessageBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MessageBus")
            .field("topics", &self.inner.streams.read().len())
            .finish()
    }
}

impl MessageBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    fn stream(&self, topic: &str) -> Arc<RwLock<LogStream>> {
        if let Some(s) = self.inner.streams.read().get(topic) {
            return Arc::clone(s);
        }
        let mut streams = self.inner.streams.write();
        Arc::clone(
            streams
                .entry(topic.to_string())
                .or_insert_with(|| Arc::new(RwLock::new(LogStream::new()))),
        )
    }

    /// Attaches a chaos fault injector: every subsequent publish fires
    /// the injector's `ScribePublish` hook, which may drop, duplicate, or
    /// reorder the record.
    pub fn attach_chaos(&self, injector: Arc<FaultInjector>) {
        *self.inner.chaos.write() = Some(injector);
    }

    /// Publishes a record to a topic, returning its LSN.
    ///
    /// With a chaos injector attached the record may be dropped (the
    /// topic tail is returned unchanged), duplicated (appended twice;
    /// the first LSN is returned), or reordered (held back until the
    /// next publish lands, then appended after it).
    pub fn publish(&self, topic: &str, record: ScribeRecord) -> Lsn {
        let mut drop_it = false;
        let mut duplicate = false;
        let mut hold = false;
        if let Some(injector) = self.inner.chaos.read().as_ref() {
            for kind in injector.fire(HookPoint::ScribePublish) {
                match kind {
                    FaultKind::DropRecord => drop_it = true,
                    FaultKind::DuplicateRecord => duplicate = true,
                    FaultKind::ReorderRecord => hold = true,
                    _ => {}
                }
            }
        }
        if drop_it {
            return self.stream(topic).write().tail();
        }
        if hold {
            let previous = self.inner.held.lock().replace((topic.to_string(), record));
            if let Some((held_topic, held_record)) = previous {
                self.stream(&held_topic).write().append(held_record);
            }
            return self.stream(topic).write().tail();
        }
        let lsn = if duplicate {
            let stream = self.stream(topic);
            let mut s = stream.write();
            let first = s.append(record.clone());
            s.append(record);
            first
        } else {
            self.stream(topic).write().append(record)
        };
        // An earlier ReorderRecord hold is released now that a successor
        // record has landed, completing the order swap.
        if let Some((held_topic, held_record)) = self.inner.held.lock().take() {
            self.stream(&held_topic).write().append(held_record);
        }
        lsn
    }

    /// Releases any chaos-held record: a reordered record must only be
    /// delayed, never lost, so readers force it out before observing the
    /// stream.
    fn release_held(&self) {
        if let Some((held_topic, held_record)) = self.inner.held.lock().take() {
            self.stream(&held_topic).write().append(held_record);
        }
    }

    /// The next-LSN (tail) of a topic; `Lsn(0)` for unknown topics.
    pub fn tail(&self, topic: &str) -> Lsn {
        self.release_held();
        self.inner
            .streams
            .read()
            .get(topic)
            .map_or(Lsn(0), |s| s.read().tail())
    }

    /// Reads `[from, to)` from a topic (empty for unknown topics).
    ///
    /// # Errors
    ///
    /// Returns an error if `from` precedes the topic's trim point.
    pub fn read(&self, topic: &str, from: Lsn, to: Lsn) -> Result<Vec<ScribeRecord>> {
        self.release_held();
        match self.inner.streams.read().get(topic) {
            Some(s) => s.read().read_range(from, to),
            None => Ok(Vec::new()),
        }
    }

    /// Trims a topic up to `upto`.
    pub fn trim(&self, topic: &str, upto: Lsn) {
        if let Some(s) = self.inner.streams.read().get(topic) {
            s.write().trim(upto);
        }
    }

    /// All topic names, sorted.
    pub fn topics(&self) -> Vec<Topic> {
        let mut t: Vec<_> = self.inner.streams.read().keys().cloned().collect();
        t.sort();
        t
    }

    /// Publishes per-topic telemetry into `registry`: total records ever
    /// published (`dsi_scribe_published_total`) and the current retained
    /// backlog (`dsi_scribe_bus_backlog`).
    pub fn publish_metrics(&self, registry: &dsi_obs::Registry) {
        let streams = self.inner.streams.read();
        for (topic, stream) in streams.iter() {
            let s = stream.read();
            registry
                .counter(dsi_obs::names::SCRIBE_PUBLISHED_TOTAL, &[("topic", topic)])
                .advance_to(s.tail().0);
            registry
                .gauge(dsi_obs::names::SCRIBE_BUS_BACKLOG, &[("topic", topic)])
                .set(s.len() as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::EventRecord;

    #[test]
    fn publish_and_read() {
        let bus = MessageBus::new();
        bus.publish("t", EventRecord::positive(1, 0).into());
        bus.publish("t", EventRecord::negative(2, 1).into());
        let got = bus.read("t", Lsn(0), bus.tail("t")).unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn topics_are_isolated() {
        let bus = MessageBus::new();
        bus.publish("a", EventRecord::positive(1, 0).into());
        assert_eq!(bus.tail("a"), Lsn(1));
        assert_eq!(bus.tail("b"), Lsn(0));
        assert!(bus.read("b", Lsn(0), Lsn(10)).unwrap().is_empty());
        assert_eq!(bus.topics(), vec!["a".to_string()]);
    }

    #[test]
    fn handles_share_state() {
        let bus = MessageBus::new();
        let bus2 = bus.clone();
        bus.publish("t", EventRecord::positive(1, 0).into());
        assert_eq!(bus2.tail("t"), Lsn(1));
    }

    #[test]
    fn concurrent_publishers() {
        let bus = MessageBus::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let bus = bus.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        bus.publish("t", EventRecord::positive(t * 100 + i, 0).into());
                    }
                });
            }
        });
        assert_eq!(bus.tail("t"), Lsn(400));
    }

    #[test]
    fn chaos_faults_drop_duplicate_and_reorder() {
        use chaos::{FaultEvent, FaultPlan};
        let bus = MessageBus::new();
        let plan = FaultPlan::named(vec![
            FaultEvent::new(HookPoint::ScribePublish, 1, FaultKind::DropRecord),
            FaultEvent::new(HookPoint::ScribePublish, 2, FaultKind::DuplicateRecord),
            FaultEvent::new(HookPoint::ScribePublish, 3, FaultKind::ReorderRecord),
        ]);
        bus.attach_chaos(FaultInjector::new(plan));
        for id in 1..=4u64 {
            bus.publish("t", EventRecord::positive(id, 0).into());
        }
        let ids: Vec<u64> = bus
            .read("t", Lsn(0), bus.tail("t"))
            .unwrap()
            .into_iter()
            .map(|r| match r {
                ScribeRecord::Event(e) => e.request_id,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        // 1 dropped, 2 duplicated, 3 held until 4 landed.
        assert_eq!(ids, vec![2, 2, 4, 3]);
    }

    #[test]
    fn chaos_reorder_hold_is_released_to_readers() {
        use chaos::{FaultEvent, FaultPlan};
        let bus = MessageBus::new();
        let plan = FaultPlan::named(vec![FaultEvent::new(
            HookPoint::ScribePublish,
            1,
            FaultKind::ReorderRecord,
        )]);
        bus.attach_chaos(FaultInjector::new(plan));
        bus.publish("t", EventRecord::positive(9, 0).into());
        // No successor record ever arrives; reading must still surface it.
        let got = bus.read("t", Lsn(0), Lsn(10)).unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn trim_through_bus() {
        let bus = MessageBus::new();
        for i in 0..10 {
            bus.publish("t", EventRecord::positive(i, 0).into());
        }
        bus.trim("t", Lsn(5));
        assert!(bus.read("t", Lsn(0), Lsn(10)).is_err());
        assert_eq!(bus.read("t", Lsn(5), Lsn(10)).unwrap().len(), 5);
    }
}
