//! Offline data generation: Scribe-style logging, LogDevice-style streams,
//! and the ETL jobs that join raw logs into labeled training samples.
//!
//! Training data is *generated at serving time*: the model-serving framework
//! logs the **features** used for each prediction, and the requesting
//! service later logs the **event** (outcome) of the recommendation. Logging
//! both at serving time avoids train/serve data leakage (§III-A). Streaming
//! joiners label feature logs with their events; batch ETL drains labeled
//! samples into warehouse partitions.
//!
//! * [`record`] — feature/event log records;
//! * [`logdevice`] — append-only, trimmable, segmented log streams;
//! * [`bus`] — the topic-addressed message bus every host daemon writes to;
//! * [`etl`] — the streaming join/label engine and periodic batch ETL.
//!
//! # Example
//!
//! ```
//! use scribe::{EventRecord, FeatureLogRecord, StreamingJoiner};
//! use dsi_types::{FeatureId, Sample};
//!
//! let mut joiner = StreamingJoiner::new(1_000_000_000); // 1 s join window
//! let mut features = Sample::new(0.0);
//! features.set_dense(FeatureId(1), 0.5);
//! joiner.offer_features(FeatureLogRecord::new(42, 0, features));
//! let labeled = joiner.offer_event(EventRecord::positive(42, 100));
//! assert_eq!(labeled.unwrap().label(), 1.0);
//! ```

#![warn(missing_docs)]

pub mod bus;
pub mod etl;
pub mod logdevice;
pub mod record;

pub use bus::{MessageBus, Topic};
pub use etl::{BatchEtl, EtlStats, StreamingJoiner};
pub use logdevice::{LogStream, Lsn};
pub use record::{EventRecord, FeatureLogRecord, ScribeRecord};
