//! Write-path stream ordering policies.
//!
//! Coalesced reads fetch every byte between the first and last wanted stream
//! in a window, so the *order* in which feature streams are laid out on disk
//! determines how much of a coalesced read is useful. Production writers
//! reorder popular feature streams next to each other (§VII), cutting the
//! unnecessary features captured inside each coalesced read.

use dsi_types::FeatureId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Policy for ordering feature columns within a stripe.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum StreamOrder {
    /// Features laid out in ascending feature-id order (the
    /// pre-optimization baseline — effectively insertion order for
    /// monotonically assigned ids).
    #[default]
    ById,
    /// Popular features first, in decreasing popularity rank. Features not
    /// listed retain id order after all ranked features.
    Popularity(Vec<FeatureId>),
}

impl StreamOrder {
    /// Creates a popularity order from `(feature, weight)` pairs,
    /// highest weight first.
    pub fn from_weights(weights: &[(FeatureId, f64)]) -> Self {
        let mut ranked: Vec<_> = weights.to_vec();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weights are finite"));
        StreamOrder::Popularity(ranked.into_iter().map(|(f, _)| f).collect())
    }

    /// Orders `features` according to the policy.
    pub fn order(&self, mut features: Vec<FeatureId>) -> Vec<FeatureId> {
        features.sort_unstable();
        match self {
            StreamOrder::ById => features,
            StreamOrder::Popularity(rank) => {
                let pos: HashMap<FeatureId, usize> =
                    rank.iter().enumerate().map(|(i, &f)| (f, i)).collect();
                features.sort_by_key(|f| (pos.get(f).copied().unwrap_or(usize::MAX), f.0));
                features
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_order_sorts() {
        let order = StreamOrder::ById;
        let out = order.order(vec![FeatureId(3), FeatureId(1), FeatureId(2)]);
        assert_eq!(out, vec![FeatureId(1), FeatureId(2), FeatureId(3)]);
    }

    #[test]
    fn popularity_puts_ranked_first() {
        let order = StreamOrder::Popularity(vec![FeatureId(9), FeatureId(2)]);
        let out = order.order(vec![FeatureId(1), FeatureId(2), FeatureId(9), FeatureId(5)]);
        assert_eq!(
            out,
            vec![FeatureId(9), FeatureId(2), FeatureId(1), FeatureId(5)]
        );
    }

    #[test]
    fn from_weights_ranks_by_weight() {
        let order = StreamOrder::from_weights(&[
            (FeatureId(1), 0.1),
            (FeatureId(2), 0.9),
            (FeatureId(3), 0.5),
        ]);
        match &order {
            StreamOrder::Popularity(rank) => {
                assert_eq!(rank, &vec![FeatureId(2), FeatureId(3), FeatureId(1)]);
            }
            other => panic!("unexpected order {other:?}"),
        }
    }

    #[test]
    fn unranked_features_keep_id_order() {
        let order = StreamOrder::Popularity(vec![FeatureId(100)]);
        let out = order.order(vec![FeatureId(7), FeatureId(3), FeatureId(100)]);
        assert_eq!(out, vec![FeatureId(100), FeatureId(3), FeatureId(7)]);
    }
}
