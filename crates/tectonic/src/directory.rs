//! The chunk directory: authoritative map from every block (chunk) to its
//! replica set and whole-chunk checksum.
//!
//! Tectonic's metadata layer is modeled here as a flat map — each chunk
//! records where its replicas live (chosen by rendezvous hashing over the
//! live nodes at write time) and the FNV checksum of its full payload, so
//! the rebuild worker can validate a source replica before fanning copies
//! back out.

use crate::block::BlockId;
use dsi_types::NodeId;
use std::collections::HashMap;

/// Directory entry for one chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Nodes currently holding (or assigned) a replica of this chunk.
    pub replicas: Vec<NodeId>,
    /// Whole-chunk checksum of the canonical payload.
    pub checksum: u64,
    /// Payload length in bytes.
    pub len: u64,
}

/// Map from chunk id to its replica set and integrity metadata.
#[derive(Debug, Default)]
pub struct ChunkDirectory {
    chunks: HashMap<BlockId, ChunkInfo>,
}

impl ChunkDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or replaces) the entry for `id`.
    pub fn insert(&mut self, id: BlockId, info: ChunkInfo) {
        self.chunks.insert(id, info);
    }

    /// Looks up a chunk.
    pub fn get(&self, id: BlockId) -> Option<&ChunkInfo> {
        self.chunks.get(&id)
    }

    /// Mutable lookup (replica-set edits during rebuild/read-repair).
    pub fn get_mut(&mut self, id: BlockId) -> Option<&mut ChunkInfo> {
        self.chunks.get_mut(&id)
    }

    /// Removes a chunk's entry (file deletion), returning it if present.
    pub fn remove(&mut self, id: BlockId) -> Option<ChunkInfo> {
        self.chunks.remove(&id)
    }

    /// Number of tracked chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// All chunks with a replica assigned to `node` (the rebuild scan when
    /// a node is declared dead).
    pub fn chunks_on(&self, node: NodeId) -> Vec<BlockId> {
        let mut ids: Vec<BlockId> = self
            .chunks
            .iter()
            .filter(|(_, info)| info.replicas.contains(&node))
            .map(|(&id, _)| id)
            .collect();
        ids.sort();
        ids
    }

    /// Chunks whose live replica count is below `target`, given the set of
    /// dead nodes. Returns `(id, live_count)` pairs sorted most-under-
    /// replicated first (then by id, for determinism).
    pub fn under_replicated(&self, dead: &[NodeId], target: usize) -> Vec<(BlockId, usize)> {
        let mut out: Vec<(BlockId, usize)> = self
            .chunks
            .iter()
            .filter_map(|(&id, info)| {
                let live = info.replicas.iter().filter(|n| !dead.contains(n)).count();
                (live < target).then_some((id, live))
            })
            .collect();
        out.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Iterates over every `(id, info)` pair (deterministic order not
    /// guaranteed — callers needing order should sort).
    pub fn iter(&self) -> impl Iterator<Item = (&BlockId, &ChunkInfo)> {
        self.chunks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(replicas: &[u64]) -> ChunkInfo {
        ChunkInfo {
            replicas: replicas.iter().map(|&n| NodeId(n)).collect(),
            checksum: 42,
            len: 100,
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut d = ChunkDirectory::new();
        assert!(d.is_empty());
        let id = BlockId::new("f", 0);
        d.insert(id, info(&[0, 1, 2]));
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(id).unwrap().replicas.len(), 3);
        assert!(d.remove(id).is_some());
        assert!(d.get(id).is_none());
    }

    #[test]
    fn chunks_on_finds_assignments() {
        let mut d = ChunkDirectory::new();
        d.insert(BlockId::new("a", 0), info(&[0, 1, 2]));
        d.insert(BlockId::new("a", 1), info(&[1, 2, 3]));
        d.insert(BlockId::new("b", 0), info(&[4, 5, 6]));
        assert_eq!(d.chunks_on(NodeId(1)).len(), 2);
        assert_eq!(d.chunks_on(NodeId(6)).len(), 1);
        assert!(d.chunks_on(NodeId(9)).is_empty());
    }

    #[test]
    fn under_replicated_sorts_most_degraded_first() {
        let mut d = ChunkDirectory::new();
        d.insert(BlockId::new("a", 0), info(&[0, 1, 2])); // loses 2 replicas
        d.insert(BlockId::new("a", 1), info(&[2, 3, 4])); // loses 1 replica
        d.insert(BlockId::new("b", 0), info(&[3, 4, 5])); // intact
        let dead = [NodeId(0), NodeId(1)];
        let under = d.under_replicated(&dead, 3);
        assert_eq!(under.len(), 1, "only a/0 dips below 3 live");
        assert_eq!(under[0].1, 1);

        let dead2 = [NodeId(0), NodeId(1), NodeId(2)];
        let under2 = d.under_replicated(&dead2, 3);
        assert_eq!(under2.len(), 2);
        assert_eq!(under2[0].1, 0, "most under-replicated first");
        assert_eq!(under2[1].1, 2);
    }
}
