//! Declarative job state: what each tenant asked for, and what the
//! reconciler last observed.
//!
//! The registry is the control plane's source of truth. Tenants submit a
//! [`JobSpec`] (a `SessionSpec` plus tenant identity, priority, and a
//! min/max worker demand window); the reconciler publishes a [`JobStatus`]
//! back after every tick. Watchers block on a generation counter, so a
//! dashboard — or a test — can wait for "the world changed" instead of
//! polling.

use dpp::SessionSpec;
use dsi_types::SessionId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Identifies the tenant (team / model family) that owns a job.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TenantId(pub u64);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A tenant's declarative request: run this session with a worker count
/// somewhere in `[min_workers, max_workers]`, arbitrated by `priority`.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The full data-pipeline description (table range, projection,
    /// batching, transport) — exactly what a standalone `DppSession`
    /// would be launched with.
    pub session: SessionSpec,
    /// Owning tenant; stamped on every per-job metric.
    pub tenant: TenantId,
    /// Fair-share weight. Higher priorities both earn a larger share and
    /// may preempt lower-priority workers when the fleet is full.
    pub priority: u32,
    /// Guaranteed worker floor (satisfied before any water-filling).
    pub min_workers: usize,
    /// Worker demand ceiling — the job never asks for more than this.
    pub max_workers: usize,
}

impl JobSpec {
    /// Creates a spec with the given fleet-facing knobs.
    pub fn new(
        session: SessionSpec,
        tenant: TenantId,
        priority: u32,
        min_workers: usize,
        max_workers: usize,
    ) -> Self {
        Self {
            session,
            tenant,
            priority,
            min_workers,
            max_workers,
        }
    }

    /// The job's identity — its session id.
    pub fn id(&self) -> SessionId {
        self.session.id
    }

    /// This spec's demand row for the fair-share allocator.
    pub fn demand(&self) -> crate::fairshare::Demand {
        crate::fairshare::Demand {
            job: self.id(),
            weight: self.priority,
            min: self.min_workers,
            max: self.max_workers,
        }
    }
}

/// Where a job sits in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Submitted but not yet holding any workers.
    Pending,
    /// Reconciler is actively assigning workers.
    Running,
    /// The session's epoch finished; its workers have been released.
    Completed,
}

/// The reconciler's last published view of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Fair-share target from the latest tick.
    pub desired_workers: usize,
    /// Live (non-draining, non-finished) workers currently assigned.
    pub allocated_workers: usize,
    /// Workers finishing their in-flight split before exiting.
    pub draining_workers: usize,
    /// Cumulative workers taken from this job to serve higher priorities.
    pub preemptions: u64,
    /// Workers short of the job's full `max_workers` demand under the
    /// current allocation — the paper's contention signal.
    pub fair_share_deficit: usize,
}

impl Default for JobStatus {
    fn default() -> Self {
        Self {
            phase: JobPhase::Pending,
            desired_workers: 0,
            allocated_workers: 0,
            draining_workers: 0,
            preemptions: 0,
            fair_share_deficit: 0,
        }
    }
}

struct Entry {
    spec: JobSpec,
    status: JobStatus,
}

#[derive(Default)]
struct Inner {
    jobs: BTreeMap<SessionId, Entry>,
    generation: u64,
}

/// Watchable registry of every job the control plane knows about.
///
/// Desired state ([`JobSpec`]) comes from tenants; observed state
/// ([`JobStatus`]) comes from the reconciler. Every mutation bumps a
/// generation counter and wakes watchers.
#[derive(Default)]
pub struct JobRegistry {
    inner: Mutex<Inner>,
    changed: Condvar,
}

impl JobRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a job. Re-submitting an existing id replaces its spec but
    /// keeps accumulated status (preemption counts survive spec updates).
    pub fn submit(&self, spec: JobSpec) {
        let mut inner = self.inner.lock().unwrap();
        let id = spec.id();
        match inner.jobs.get_mut(&id) {
            Some(entry) => entry.spec = spec,
            None => {
                inner.jobs.insert(
                    id,
                    Entry {
                        spec,
                        status: JobStatus::default(),
                    },
                );
            }
        }
        inner.generation += 1;
        self.changed.notify_all();
    }

    /// Removes a job, returning whether it existed.
    pub fn remove(&self, id: SessionId) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let existed = inner.jobs.remove(&id).is_some();
        if existed {
            inner.generation += 1;
            self.changed.notify_all();
        }
        existed
    }

    /// The spec for `id`, if registered.
    pub fn spec(&self, id: SessionId) -> Option<JobSpec> {
        self.inner
            .lock()
            .unwrap()
            .jobs
            .get(&id)
            .map(|e| e.spec.clone())
    }

    /// The last published status for `id`, if registered.
    pub fn status(&self, id: SessionId) -> Option<JobStatus> {
        self.inner.lock().unwrap().jobs.get(&id).map(|e| e.status)
    }

    /// All registered jobs' specs, ordered by session id.
    pub fn specs(&self) -> Vec<JobSpec> {
        self.inner
            .lock()
            .unwrap()
            .jobs
            .values()
            .map(|e| e.spec.clone())
            .collect()
    }

    /// All `(spec, status)` pairs, ordered by session id.
    pub fn snapshot(&self) -> Vec<(JobSpec, JobStatus)> {
        self.inner
            .lock()
            .unwrap()
            .jobs
            .values()
            .map(|e| (e.spec.clone(), e.status))
            .collect()
    }

    /// Publishes a fresh status for `id` (no-op when unregistered) and
    /// wakes watchers.
    pub fn publish(&self, id: SessionId, status: JobStatus) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(entry) = inner.jobs.get_mut(&id) {
            entry.status = status;
            inner.generation += 1;
            self.changed.notify_all();
        }
    }

    /// Current generation; increments on every submit/remove/publish.
    pub fn generation(&self) -> u64 {
        self.inner.lock().unwrap().generation
    }

    /// Blocks until the generation exceeds `seen` (or the timeout lapses);
    /// returns the generation observed on wake.
    pub fn wait_past(&self, seen: u64, timeout: Duration) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        let deadline = std::time::Instant::now() + timeout;
        while inner.generation <= seen {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                break;
            }
            let (guard, wait) = self.changed.wait_timeout(inner, left).unwrap();
            inner = guard;
            if wait.timed_out() {
                break;
            }
        }
        inner.generation
    }

    /// Number of registered jobs.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    /// Whether the registry holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpp::SessionSpec;

    fn spec(id: u64, priority: u32) -> JobSpec {
        let session = SessionSpec::builder(SessionId(id)).build();
        JobSpec::new(session, TenantId(id), priority, 1, 4)
    }

    #[test]
    fn submit_publish_and_watch() {
        let reg = JobRegistry::new();
        let g0 = reg.generation();
        reg.submit(spec(1, 2));
        assert!(reg.generation() > g0);
        assert_eq!(reg.status(SessionId(1)).unwrap().phase, JobPhase::Pending);

        let g1 = reg.generation();
        reg.publish(
            SessionId(1),
            JobStatus {
                phase: JobPhase::Running,
                desired_workers: 3,
                allocated_workers: 3,
                ..JobStatus::default()
            },
        );
        assert_eq!(reg.wait_past(g1, Duration::from_millis(10)), g1 + 1);
        assert_eq!(reg.status(SessionId(1)).unwrap().allocated_workers, 3);
    }

    #[test]
    fn resubmit_keeps_status() {
        let reg = JobRegistry::new();
        reg.submit(spec(1, 2));
        reg.publish(
            SessionId(1),
            JobStatus {
                preemptions: 5,
                ..JobStatus::default()
            },
        );
        reg.submit(spec(1, 9));
        assert_eq!(reg.spec(SessionId(1)).unwrap().priority, 9);
        assert_eq!(reg.status(SessionId(1)).unwrap().preemptions, 5);
    }

    #[test]
    fn remove_and_emptiness() {
        let reg = JobRegistry::new();
        assert!(reg.is_empty());
        reg.submit(spec(1, 1));
        reg.submit(spec(2, 1));
        assert_eq!(reg.len(), 2);
        assert!(reg.remove(SessionId(1)));
        assert!(!reg.remove(SessionId(1)));
        assert_eq!(reg.specs().len(), 1);
    }

    #[test]
    fn wait_past_times_out_without_change() {
        let reg = JobRegistry::new();
        let g = reg.generation();
        assert_eq!(reg.wait_past(g, Duration::from_millis(5)), g);
    }
}
