//! Plain-text table rendering for the `figures` binary.

/// One row of a rendered table.
pub type Row = Vec<String>;

/// Prints an aligned text table with a title and header.
pub fn print_table(title: &str, header: &[&str], rows: &[Row]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let render = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", render(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", render(row));
    }
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.5), "50.0%");
    }

    #[test]
    fn print_does_not_panic_on_ragged_rows() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into()], vec!["1".into(), "2".into(), "3".into()]],
        );
    }
}
