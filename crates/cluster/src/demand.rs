//! Fleet-wide training demand over time (§IV-B, Fig. 5).
//!
//! Each model alternates explore baselines with combo bursts; summing the
//! collaborative jobs of all models over a year yields a demand series with
//! distinct peaks wherever several models' combo windows overlap. Combo
//! jobs are on the critical path of model release, so datacenters must be
//! provisioned for those peaks, not the average.

use crate::release::{JobKind, ReleaseConfig, ReleaseProcess};
use serde::{Deserialize, Serialize};

/// One point of the demand series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandPoint {
    /// Day index.
    pub day: u32,
    /// Total normalized compute demand.
    pub total: f64,
    /// Of which combo jobs.
    pub combo: f64,
}

/// Generates fleet demand from per-model release cadences.
#[derive(Debug, Clone)]
pub struct DemandModel {
    /// Number of models training collaboratively.
    pub models: u32,
    /// Days between release iterations per model.
    pub cadence_days: u32,
    /// Release-process shape shared by models.
    pub release: ReleaseConfig,
}

impl Default for DemandModel {
    fn default() -> Self {
        Self {
            models: 12,
            cadence_days: 56,
            release: ReleaseConfig::default(),
        }
    }
}

impl DemandModel {
    /// Simulates `days` of fleet demand. Models start their iterations at
    /// staggered offsets, but several share phase — producing the peaks of
    /// Fig. 5.
    pub fn series(&self, days: u32, seed: u64) -> Vec<DemandPoint> {
        let process = ReleaseProcess::new(self.release);
        let mut total = vec![0.0f64; days as usize];
        let mut combo = vec![0.0f64; days as usize];
        for m in 0..self.models {
            // Staggering: models cluster into a few phase groups (teams
            // align releases with company cycles), so peaks overlap.
            let group = m % 3;
            let offset = group * self.cadence_days / 3;
            let mut iteration = 0u64;
            let mut start = offset;
            while start < days {
                let jobs = process.generate_iteration(seed ^ (m as u64) << 32 ^ iteration);
                for job in jobs {
                    let s = start as f64 + job.submit_day;
                    let e = s + job.duration_days;
                    let rate = job.compute_units / job.duration_days.max(1e-9);
                    let lo = s.floor().max(0.0) as usize;
                    let hi = (e.ceil() as usize).min(days as usize);
                    for slot in lo..hi {
                        let day = slot as f64;
                        let overlap = (e.min(day + 1.0) - s.max(day)).clamp(0.0, 1.0);
                        total[slot] += rate * overlap;
                        if job.kind == JobKind::Combo {
                            combo[slot] += rate * overlap;
                        }
                    }
                }
                iteration += 1;
                start += self.cadence_days;
            }
        }
        let peak = total.iter().cloned().fold(0.0, f64::max).max(1e-9);
        (0..days)
            .map(|d| DemandPoint {
                day: d,
                total: total[d as usize] / peak,
                combo: combo[d as usize] / peak,
            })
            .collect()
    }

    /// Peak-to-mean ratio of a series — the over-provisioning factor peaks
    /// force on the fleet.
    pub fn peak_to_mean(series: &[DemandPoint]) -> f64 {
        let peak = series.iter().map(|p| p.total).fold(0.0, f64::max);
        let mean = series.iter().map(|p| p.total).sum::<f64>() / series.len().max(1) as f64;
        if mean == 0.0 {
            0.0
        } else {
            peak / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_normalized_with_peaks() {
        let series = DemandModel::default().series(364, 42);
        assert_eq!(series.len(), 364);
        let peak = series.iter().map(|p| p.total).fold(0.0, f64::max);
        assert!((peak - 1.0).abs() < 1e-9);
        let ratio = DemandModel::peak_to_mean(&series);
        assert!(
            ratio > 1.4,
            "fig 5 demand should be peaky, peak/mean {ratio:.2}"
        );
    }

    #[test]
    fn peaks_are_combo_driven() {
        let series = DemandModel::default().series(364, 7);
        // At the global peak, combo jobs dominate demand.
        let peak = series
            .iter()
            .max_by(|a, b| a.total.partial_cmp(&b.total).unwrap())
            .unwrap();
        assert!(
            peak.combo / peak.total > 0.6,
            "combo share at peak {:.2}",
            peak.combo / peak.total
        );
        // In the quietest decile, combo share is lower than at the peak.
        let mut sorted: Vec<&DemandPoint> = series.iter().collect();
        sorted.sort_by(|a, b| a.total.partial_cmp(&b.total).unwrap());
        let quiet_combo: f64 = sorted[..36]
            .iter()
            .map(|p| p.combo / p.total.max(1e-9))
            .sum::<f64>()
            / 36.0;
        assert!(quiet_combo < peak.combo / peak.total);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = DemandModel::default();
        assert_eq!(m.series(100, 1), m.series(100, 1));
    }

    #[test]
    fn more_models_smooth_relative_variance_but_keep_peaks() {
        let few = DemandModel {
            models: 3,
            ..Default::default()
        }
        .series(364, 9);
        let many = DemandModel {
            models: 24,
            ..Default::default()
        }
        .series(364, 9);
        assert!(DemandModel::peak_to_mean(&many) <= DemandModel::peak_to_mean(&few) * 1.5);
        assert!(DemandModel::peak_to_mean(&many) > 1.2);
    }
}
