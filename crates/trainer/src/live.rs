//! A wall-clock trainer that consumes a live DPP session.
//!
//! [`LiveTrainer`] drives a real [`dpp::Client`]: each iteration fetches a
//! tensor (measuring time blocked on data) and then "trains" on it for the
//! model's batch service time. It is the measurement harness the
//! integration tests and the end-to-end example use to show that DPP
//! eliminates stalls a starved configuration exhibits.

use crate::demand::GpuDemand;
use crate::stall::StallReport;
use dpp::Client;
use std::time::{Duration, Instant};

/// A wall-clock training loop over a DPP client.
#[derive(Debug)]
pub struct LiveTrainer {
    client: Client,
    demand: GpuDemand,
    /// Scales simulated GPU time (1.0 = real time; smaller = faster tests).
    time_scale: f64,
    registry: Option<dsi_obs::Registry>,
}

impl LiveTrainer {
    /// Creates a trainer over `client` with the given demand model.
    pub fn new(client: Client, demand: GpuDemand) -> Self {
        Self {
            client,
            demand,
            time_scale: 1.0,
            registry: None,
        }
    }

    /// Scales simulated GPU service time (builder-style; useful in tests).
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        self.time_scale = scale;
        self
    }

    /// Attaches a metrics registry (builder-style): each [`LiveTrainer::train`]
    /// call publishes its [`StallReport`] and trained-sample count into it.
    pub fn with_registry(mut self, registry: &dsi_obs::Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Consumes up to `max_batches` batches (or until the session ends),
    /// returning the stall report and the number of samples trained.
    pub fn train(&mut self, max_batches: u64) -> (StallReport, u64) {
        let start = Instant::now();
        let mut stalled = Duration::ZERO;
        let mut batches = 0u64;
        let mut samples = 0u64;
        while batches < max_batches {
            let wait_start = Instant::now();
            let Some(tensor) = self.client.next_batch() else {
                break;
            };
            stalled += wait_start.elapsed();
            batches += 1;
            samples += tensor.batch_size() as u64;
            // "Train": occupy the GPU for the batch's service time.
            let service = self.demand.batch_service_secs(tensor.batch_size()) * self.time_scale;
            let consume_start = dsi_obs::now_ns();
            spin_sleep(Duration::from_secs_f64(service));
            record_consume(&self.registry, self.client.last_trace(), consume_start);
        }
        let elapsed = start.elapsed();
        let report = StallReport {
            batches,
            produced: batches,
            elapsed_secs: elapsed.as_secs_f64(),
            stalled_secs: stalled.as_secs_f64(),
            stall_fraction: if elapsed.is_zero() {
                0.0
            } else {
                stalled.as_secs_f64() / elapsed.as_secs_f64()
            },
        };
        if let Some(reg) = &self.registry {
            report.publish_metrics_labeled(reg, self.client.job());
            reg.counter(
                dsi_obs::names::TRAINER_SAMPLES_TOTAL,
                &[("job", self.client.job())],
            )
            .add(samples);
        }
        (report, samples)
    }

    /// Like [`LiveTrainer::train`], but fetches batches on a dedicated
    /// thread through a `depth`-deep bounded buffer, so the next tensor's
    /// network/deserialize latency overlaps the current batch's GPU time
    /// instead of extending the stall. This is the trainer-side leg of the
    /// end-to-end fastpath pipeline.
    pub fn train_prefetched(&mut self, max_batches: u64, depth: usize) -> (StallReport, u64) {
        let demand = self.demand;
        let time_scale = self.time_scale;
        let registry = self.registry.clone();
        // The prefetch channel carries each tensor's delivery trace context
        // alongside it, so Consume spans stay attached to the right trace
        // even with `depth` tensors in flight between fetch and consume.
        let (tx, rx) = crossbeam::channel::bounded::<(
            dsi_types::MiniBatchTensor,
            dsi_obs::TraceContext,
        )>(depth.max(1));
        let client = &mut self.client;
        let (report, samples) = std::thread::scope(|scope| {
            scope.spawn(move || {
                while let Some(tensor) = client.next_batch() {
                    let trace = client.last_trace();
                    if tx.send((tensor, trace)).is_err() {
                        break; // consumer reached max_batches
                    }
                }
            });
            let start = Instant::now();
            let mut stalled = Duration::ZERO;
            let mut batches = 0u64;
            let mut samples = 0u64;
            while batches < max_batches {
                let wait_start = Instant::now();
                let Ok((tensor, trace)) = rx.recv() else {
                    break; // session exhausted
                };
                stalled += wait_start.elapsed();
                batches += 1;
                samples += tensor.batch_size() as u64;
                let service = demand.batch_service_secs(tensor.batch_size()) * time_scale;
                let consume_start = dsi_obs::now_ns();
                spin_sleep(Duration::from_secs_f64(service));
                record_consume(&registry, trace, consume_start);
            }
            drop(rx); // unblock the fetcher if it is mid-send
            let elapsed = start.elapsed();
            let report = StallReport {
                batches,
                produced: batches,
                elapsed_secs: elapsed.as_secs_f64(),
                stalled_secs: stalled.as_secs_f64(),
                stall_fraction: if elapsed.is_zero() {
                    0.0
                } else {
                    stalled.as_secs_f64() / elapsed.as_secs_f64()
                },
            };
            (report, samples)
        });
        if let Some(reg) = &self.registry {
            report.publish_metrics_labeled(reg, self.client.job());
            reg.counter(
                dsi_obs::names::TRAINER_SAMPLES_TOTAL,
                &[("job", self.client.job())],
            )
            .add(samples);
        }
        (report, samples)
    }
}

/// Records the trainer-side `Consume` span: the GPU service time of one
/// batch, parented under the delivering client's `Deliver` span. No-op
/// without a registry or for unsampled tensors.
fn record_consume(
    registry: &Option<dsi_obs::Registry>,
    trace: dsi_obs::TraceContext,
    start_ns: u64,
) {
    let Some(reg) = registry else { return };
    if !trace.is_sampled() {
        return;
    }
    reg.record_span(dsi_obs::TraceSpan {
        trace_id: trace.trace_id,
        span_id: dsi_obs::next_span_id(),
        parent_id: trace.span_id,
        kind: dsi_obs::SpanKind::Consume,
        start_ns,
        end_ns: dsi_obs::now_ns(),
        split: 0,
        worker: 0,
        seq: 0,
        flags: 0,
    });
}

/// Sleeps short durations accurately enough for the tests.
fn spin_sleep(d: Duration) {
    if d > Duration::from_millis(2) {
        std::thread::sleep(d);
    } else {
        let end = Instant::now() + d;
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpp::{DppSession, SessionSpec};
    use dsi_types::{FeatureId, PartitionId, Projection, Sample, SessionId, SparseList, TableId};
    use warehouse::{Table, TableConfig};

    fn build_table(rows: u64) -> Table {
        let cluster = tectonic::TectonicCluster::new(tectonic::ClusterConfig::small());
        let opts = dwrf::WriterOptions {
            rows_per_stripe: 32,
            ..Default::default()
        };
        let table = Table::create(
            cluster,
            TableConfig::new(TableId(1), "live").with_writer_options(opts),
        )
        .unwrap();
        let samples: Vec<Sample> = (0..rows)
            .map(|i| {
                let mut s = Sample::new(i as f32);
                s.set_dense(FeatureId(1), i as f32);
                s.set_sparse(FeatureId(2), SparseList::from_ids(vec![i % 13]));
                s
            })
            .collect();
        table.write_partition(PartitionId::new(0), samples).unwrap();
        table
    }

    fn spec() -> SessionSpec {
        SessionSpec::builder(SessionId(1))
            .partitions(PartitionId::new(0)..PartitionId::new(1))
            .projection(Projection::new(vec![FeatureId(1), FeatureId(2)]))
            .batch_size(32)
            .dense_ids(vec![FeatureId(1)])
            .sparse_ids(vec![FeatureId(2)])
            .buffer_capacity(4)
            .build()
    }

    #[test]
    fn live_trainer_consumes_session() {
        let table = build_table(256);
        let session = DppSession::launch(table, spec(), 2).unwrap();
        // A slow GPU (low demand): preprocessing keeps up, stalls near 0.
        let demand = GpuDemand::new(3.2e6, 100.0); // 32k samples/s
        let mut trainer = LiveTrainer::new(session.client(), demand);
        let (report, samples) = trainer.train(u64::MAX);
        assert_eq!(samples, 256);
        assert_eq!(report.batches, 8);
        session.shutdown();
        // After warm-up the buffer should hide most production time; allow
        // generous slack for CI machines.
        assert!(
            report.stall_fraction < 0.9,
            "stall {:.3}",
            report.stall_fraction
        );
    }

    #[test]
    fn live_trainer_publishes_stall_metrics() {
        use dsi_obs::names;
        let table = build_table(128);
        let session = DppSession::launch(table, spec(), 2).unwrap();
        let reg = dsi_obs::Registry::new();
        session.attach_registry(&reg);
        let demand = GpuDemand::new(3.2e6, 100.0);
        let mut trainer = LiveTrainer::new(session.client(), demand)
            .with_time_scale(0.1)
            .with_registry(&reg);
        let (report, samples) = trainer.train(u64::MAX);
        session.shutdown();
        // Trainer metrics carry the session's `job` label.
        let job = [("job", "sess1")];
        assert_eq!(
            reg.counter_value(names::TRAINER_SAMPLES_TOTAL, &job),
            samples
        );
        assert_eq!(
            reg.counter_value(names::TRAINER_BATCHES_TOTAL, &job),
            report.batches
        );
        assert!(
            (reg.gauge_value(names::TRAINER_STALL_FRACTION, &job) - report.stall_fraction).abs()
                < 1e-12
        );
    }

    #[test]
    fn consume_spans_terminate_traces_in_both_modes() {
        for prefetched in [false, true] {
            let table = build_table(128);
            let mut s = spec();
            s.trace = dsi_trace::TraceConfig::all();
            let reg = dsi_obs::Registry::new();
            let session = DppSession::launch_observed_chaos(table, s, 2, Some(&reg), None).unwrap();
            let demand = GpuDemand::new(3.2e6, 100.0);
            let mut trainer = LiveTrainer::new(session.client(), demand)
                .with_time_scale(0.01)
                .with_registry(&reg);
            let (_, samples) = if prefetched {
                trainer.train_prefetched(u64::MAX, 2)
            } else {
                trainer.train(u64::MAX)
            };
            assert_eq!(samples, 128);
            session.shutdown();

            let spans = reg.trace_spans();
            dsi_trace::validate(&spans).expect("traces stay well-formed through Consume");
            let consumes: Vec<_> = spans
                .iter()
                .filter(|sp| sp.kind == dsi_obs::SpanKind::Consume)
                .collect();
            assert!(
                !consumes.is_empty(),
                "prefetched={prefetched}: trainer recorded no Consume spans"
            );
            // Every Consume parents under a Deliver span of the same trace.
            for c in &consumes {
                assert!(
                    spans.iter().any(|sp| sp.kind == dsi_obs::SpanKind::Deliver
                        && sp.span_id == c.parent_id
                        && sp.trace_id == c.trace_id),
                    "Consume span must chain to a Deliver span"
                );
            }
        }
    }

    #[test]
    fn prefetched_training_matches_sequential_consumption() {
        let table = build_table(256);
        let mut s = spec();
        s.read_ahead = 2; // worker-side pipeline on too
        let session = DppSession::launch(table, s, 2).unwrap();
        let demand = GpuDemand::new(3.2e6, 100.0);
        let mut trainer = LiveTrainer::new(session.client(), demand).with_time_scale(0.1);
        let (report, samples) = trainer.train_prefetched(u64::MAX, 4);
        assert_eq!(samples, 256);
        assert_eq!(report.batches, 8);
        session.shutdown();
    }

    #[test]
    fn prefetched_max_batches_caps_consumption() {
        let table = build_table(256);
        let session = DppSession::launch(table, spec(), 2).unwrap();
        let demand = GpuDemand::new(3.2e6, 100.0);
        let mut trainer = LiveTrainer::new(session.client(), demand).with_time_scale(0.1);
        let (report, _) = trainer.train_prefetched(3, 2);
        assert_eq!(report.batches, 3);
        session.shutdown();
    }

    #[test]
    fn max_batches_caps_consumption() {
        let table = build_table(256);
        let session = DppSession::launch(table, spec(), 2).unwrap();
        let demand = GpuDemand::new(3.2e6, 100.0);
        let mut trainer = LiveTrainer::new(session.client(), demand).with_time_scale(0.1);
        let (report, _) = trainer.train(3);
        assert_eq!(report.batches, 3);
        session.shutdown();
    }
}
