//! Synthetic workload and dataset generation calibrated to production DLRM
//! characteristics.
//!
//! The paper's evaluation is a characterization of three production
//! recommendation models (RM1–3) and their datasets. Production traces are
//! unavailable outside Meta, so this crate generates the closest synthetic
//! equivalents: [`profiles`] carries every published per-RM parameter
//! (Tables III–V, VIII, IX), and the generators below produce datasets and
//! job workloads whose *distributions* match the published shapes.
//!
//! * [`profiles`] — RM1/RM2/RM3 calibrated parameters;
//! * [`popularity`] — Zipf feature popularity and per-job feature
//!   projections (drives Fig. 7's reuse CDF);
//! * [`dataset`] — deterministic sample generation for any schema;
//! * [`lifecycle`] — the feature lifecycle model (Table II);
//! * [`growth`] — dataset size / ingestion bandwidth growth (Fig. 2).
//!
//! # Example
//!
//! ```
//! use synth::{RmProfile, SampleGenerator};
//!
//! let profile = RmProfile::rm1();
//! let schema = profile.build_schema(100); // 100 scaled-down features
//! let mut generator = SampleGenerator::new(&schema, 42);
//! let sample = generator.next_sample();
//! assert!(sample.feature_count() > 0);
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod growth;
pub mod lifecycle;
pub mod popularity;
pub mod profiles;

pub use dataset::SampleGenerator;
pub use growth::GrowthModel;
pub use lifecycle::{LifecycleModel, LifecycleSnapshot};
pub use popularity::{JobProjectionSampler, ZipfSampler};
pub use profiles::{RmClass, RmProfile};
