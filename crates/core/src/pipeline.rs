//! Intra-worker software pipelining of the extract → transform → load
//! stages.
//!
//! The sequential worker loop in `service.rs` alternates between waiting
//! on storage (fetch + decode) and burning CPU (transform + batch), so
//! each resource idles while the other works. With
//! [`crate::session::SessionSpec::read_ahead`] `> 0` a worker instead
//! runs three concurrent stages over bounded channels:
//!
//! ```text
//!   fetch+decode ──bounded(read_ahead)──▶ transform ──bounded(2)──▶ load/deliver
//!   (storage I/O)                         (CPU)                     (worker thread)
//! ```
//!
//! The fetch stage is the only one that *requests* work from the Master,
//! the load stage is the only one that *acknowledges* or delivers it, and
//! the transform stage is stateless (it ships its accounting downstream
//! as a [`WorkerReport`] delta), so the exactly-once envelope protocol is
//! unchanged: a split is still in flight from `request_split` until the
//! client acks its last tensor, wherever it sits in the pipe.

use crate::client::Envelope;
use crate::master::Master;
use crate::service::{fire_worker_chaos, ChaosSlot, WorkerFate};
use crate::worker::{Worker, WorkerReport};
use crossbeam::channel::{bounded, RecvTimeoutError, Sender};
use dsi_obs::{names, next_span_id, now_ns, SpanKind, TraceContext, TraceSpan};
use dsi_types::{Batch, Sample};
use dwrf::IoPlan;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use warehouse::Split;

/// How the fetch stage stopped feeding the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EndReason {
    /// The Master handed out `None`: every split is assigned or done.
    Exhausted,
    /// The drain flag was observed between splits.
    Drained,
    /// `read_split` failed; the split must be requeued elsewhere.
    ReadFailed,
    /// The Master rejected the request (worker deregistered concurrently).
    MasterGone,
}

/// A split fetched and decoded, waiting for the transform stage.
struct Fetched {
    split: Split,
    rows: Vec<Sample>,
    plan: IoPlan,
    /// Trace context of the split's `Schedule` span (NONE when unsampled);
    /// each stage parents its span under it as the item crosses channels.
    trace: TraceContext,
    /// When decode finished — the gap until the transform stage picks the
    /// item up is time the stages genuinely overlapped.
    ready_at: Instant,
}

/// A transformed split, waiting for the load stage.
struct Transformed {
    split: Split,
    batch: Batch,
    delta: WorkerReport,
    trace: TraceContext,
}

/// Records a stage span under the split's schedule context. `start_ns` is
/// captured by the caller just before the stage ran.
#[allow(clippy::too_many_arguments)]
fn record_stage_span(
    reg: &dsi_obs::Registry,
    ctx: TraceContext,
    span_id: u64,
    kind: SpanKind,
    start_ns: u64,
    split: u64,
    worker: u64,
) {
    reg.record_span(TraceSpan {
        trace_id: ctx.trace_id,
        span_id,
        parent_id: ctx.span_id,
        kind,
        start_ns,
        end_ns: now_ns(),
        split,
        worker,
        seq: 0,
        flags: 0,
    });
}

/// Main-thread poll slice while waiting on the transform stage; bounds how
/// stale a kill/drain observation can get when the pipe is idle.
const POLL_SLICE: Duration = Duration::from_millis(5);

/// Runs one worker as a three-stage pipeline. Drop-in replacement for the
/// sequential `worker_loop` with identical Master/Client semantics;
/// selected by `spec.read_ahead > 0`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pipelined_worker_loop(
    master: Master,
    mut worker: Worker,
    tx: Sender<Envelope>,
    kill: Arc<AtomicBool>,
    drain: Arc<AtomicBool>,
    read_ahead: usize,
    obs: Arc<Mutex<Option<dsi_obs::Registry>>>,
    chaos: ChaosSlot,
) -> WorkerReport {
    let id = worker.id();
    let (fetch_tx, fetch_rx) = bounded::<Fetched>(read_ahead.max(1));
    let (t_tx, t_rx) = bounded::<Transformed>(2);
    let end_reason: Arc<Mutex<Option<EndReason>>> = Arc::new(Mutex::new(None));

    // ---- stage 1: fetch + decode ----
    let fetch = {
        let master = master.clone();
        let scan = worker.scan_clone();
        let kill = Arc::clone(&kill);
        let drain = Arc::clone(&drain);
        let end_reason = Arc::clone(&end_reason);
        let obs = Arc::clone(&obs);
        std::thread::spawn(move || loop {
            if kill.load(Ordering::SeqCst) {
                return;
            }
            if drain.load(Ordering::SeqCst) {
                *end_reason.lock() = Some(EndReason::Drained);
                return;
            }
            match master.request_split_ctx(id) {
                Ok(Some((split, ctx))) => {
                    // Traced reads hang the storage subtree under a fresh
                    // Extract span; the context rides the channel with the
                    // item so later stages stay causally linked.
                    let reg = if ctx.is_sampled() {
                        obs.lock().clone()
                    } else {
                        None
                    };
                    let read = if let Some(reg) = &reg {
                        let extract_id = next_span_id();
                        let t0 = now_ns();
                        let extract_ctx = TraceContext {
                            trace_id: ctx.trace_id,
                            span_id: extract_id,
                        };
                        let r = scan.read_split_traced(&split, extract_ctx, reg);
                        if r.is_ok() {
                            record_stage_span(
                                reg,
                                ctx,
                                extract_id,
                                SpanKind::Extract,
                                t0,
                                split.index,
                                id.0,
                            );
                        }
                        r
                    } else {
                        scan.read_split(&split)
                    };
                    match read {
                        Ok((rows, plan)) => {
                            let item = Fetched {
                                split,
                                rows,
                                plan,
                                trace: ctx,
                                ready_at: Instant::now(),
                            };
                            if fetch_tx.send(item).is_err() {
                                return; // downstream gone; it decides why
                            }
                        }
                        Err(_) => {
                            *end_reason.lock() = Some(EndReason::ReadFailed);
                            return;
                        }
                    }
                }
                Ok(None) => {
                    *end_reason.lock() = Some(EndReason::Exhausted);
                    return;
                }
                Err(_) => {
                    *end_reason.lock() = Some(EndReason::MasterGone);
                    return;
                }
            }
        })
    };

    // ---- stage 2: transform ----
    let transform = {
        let spec = worker.spec_arc();
        let exec = worker.exec_arc();
        let cost = worker.cost_model();
        let obs = Arc::clone(&obs);
        // Sessions share registries under the fleet control plane, so the
        // per-worker pipeline gauges carry the job label like every other
        // session-scoped metric.
        let job: Arc<str> = master.session().to_string().into();
        std::thread::spawn(move || {
            while let Ok(f) = fetch_rx.recv() {
                // Re-read the slot per split so a registry attached after
                // launch still sees this worker's pipeline telemetry.
                let reg = obs.lock().clone();
                if let Some(reg) = &reg {
                    let labels = [("job", job.as_ref())];
                    // Depth of the decode read-ahead buffer *behind* this
                    // item: how far fetch has run ahead of transform.
                    reg.gauge(names::FASTPATH_PREFETCH_DEPTH, &labels)
                        .set(fetch_rx.len() as f64);
                    reg.histogram(names::FASTPATH_STAGE_OVERLAP_SECONDS, &labels)
                        .record(f.ready_at.elapsed().as_secs_f64());
                }
                let t1 = now_ns();
                // Per-split flush downstream means the carry is always
                // empty here, so handing transform a fresh one is exact.
                let (batch, delta) = Worker::transform_stage(
                    &spec,
                    &exec,
                    &cost,
                    &f.split,
                    Batch::new(),
                    f.rows,
                    &f.plan,
                );
                if f.trace.is_sampled() {
                    if let Some(reg) = &reg {
                        record_stage_span(
                            reg,
                            f.trace,
                            next_span_id(),
                            SpanKind::Transform,
                            t1,
                            f.split.index,
                            id.0,
                        );
                    }
                }
                let out = Transformed {
                    split: f.split,
                    batch,
                    delta,
                    trace: f.trace,
                };
                if t_tx.send(out).is_err() {
                    return; // main thread gone (kill or shutdown)
                }
            }
        })
    };

    // ---- stage 3: load + deliver (this thread) ----
    loop {
        if kill.load(Ordering::SeqCst) {
            // Hard crash: return without joining — upstream threads unblock
            // when their send sees the dropped receiver. No deregistration,
            // no acknowledgement; the health monitor requeues our splits.
            return worker.report();
        }
        match t_rx.recv_timeout(POLL_SLICE) {
            Ok(t) => {
                // Chaos fires on the load stage, the only stage owned by
                // the worker's main thread: a crash here abandons every
                // split still in the pipe, all of which the injected
                // `fail_worker` requeues (they are in flight at this id).
                if let WorkerFate::Crash = fire_worker_chaos(&chaos, &master, id) {
                    return worker.report();
                }
                let t2 = now_ns();
                let mut tensors = worker.load_stage(t.batch, t.delta);
                // Per-split flush keeps replay exact under failures (no
                // cross-split rows inside any delivered tensor).
                tensors.extend(worker.flush());
                // All of a split's envelopes carry the Load span as their
                // parent, so wire/client spans attach per delivered tensor.
                let mut deliver = TraceContext::NONE;
                if t.trace.is_sampled() {
                    if let Some(reg) = obs.lock().clone() {
                        let load_id = next_span_id();
                        record_stage_span(
                            &reg,
                            t.trace,
                            load_id,
                            SpanKind::Load,
                            t2,
                            t.split.index,
                            id.0,
                        );
                        deliver = TraceContext {
                            trace_id: t.trace.trace_id,
                            span_id: load_id,
                        };
                    }
                }
                if kill.load(Ordering::SeqCst) {
                    return worker.report();
                }
                if tensors.is_empty() {
                    let _ = master.complete_split(id, t.split.index);
                    continue;
                }
                let total = tensors.len();
                for (seq, tensor) in tensors.into_iter().enumerate() {
                    let env = Envelope {
                        split: t.split.index,
                        seq: seq as u32,
                        last: seq + 1 == total,
                        worker: id,
                        trace_id: deliver.trace_id,
                        parent_span: deliver.span_id,
                        tensor,
                    };
                    if tx.send(env).is_err() {
                        // Session shut down under us.
                        master.deregister_worker(id);
                        return worker.report();
                    }
                }
                // Completion is acknowledged by the Client that consumes
                // the split's last tensor — not here.
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => {
                // Transform exited because fetch closed its channel and the
                // in-flight items are all delivered; settle with the Master
                // the same way the sequential loop does.
                match *end_reason.lock() {
                    Some(EndReason::Exhausted) | Some(EndReason::Drained) => {
                        master.drain_worker(id);
                    }
                    Some(EndReason::ReadFailed) => master.fail_worker(id),
                    Some(EndReason::MasterGone) | None => {}
                }
                break;
            }
        }
    }
    let _ = fetch.join();
    let _ = transform.join();
    worker.report()
}
