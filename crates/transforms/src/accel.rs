//! The GPU-offload throughput model for preprocessing acceleration (§VII).
//!
//! Preprocessing can run on the training GPU, the trainer host CPU,
//! disaggregated CPUs, or disaggregated accelerators; the paper measured
//! GPU/CPU speedups of **11.9× for SigridHash** and only **1.3× for
//! Bucketize**, and notes that deriving one feature takes 3–5 distinct
//! kernels whose launch overheads are non-negligible. This model prices an
//! offloaded plan accordingly.

use crate::cost::OpCost;
use crate::op::TransformOp;
use crate::plan::TransformPlan;
use serde::{Deserialize, Serialize};

/// Where preprocessing runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// On the trainer host CPU (the insufficient baseline of Table VII).
    HostCpu,
    /// On the training GPU itself (risks contending with training).
    TrainingGpu,
    /// On disaggregated general-purpose CPU nodes (DPP's choice).
    DisaggCpu,
    /// On dedicated preprocessing accelerators (open research).
    DisaggAccelerator,
}

/// GPU-offload cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelModel {
    /// Kernel launch overhead in CPU-cycle equivalents (≈5 µs at 2.5 GHz).
    pub launch_overhead_cycles: f64,
    /// Fraction of training GPU cycles preprocessing may steal before
    /// degrading training throughput.
    pub gpu_contention_budget: f64,
}

impl Default for AccelModel {
    fn default() -> Self {
        Self {
            launch_overhead_cycles: 12_500.0,
            gpu_contention_budget: 0.10,
        }
    }
}

impl AccelModel {
    /// Measured/estimated GPU-over-CPU speedup for one op.
    ///
    /// SigridHash (11.9×) and Bucketize (1.3×) are the paper's measured
    /// points (V100 vs 20 CPU threads); the rest interpolate by how
    /// data-parallel and branch-free the op is.
    pub fn gpu_speedup(op: &TransformOp) -> f64 {
        match op {
            TransformOp::SigridHash { .. } => 11.9,
            TransformOp::Bucketize { .. } => 1.3,
            // Pure elementwise math: very GPU-friendly.
            TransformOp::BoxCox { .. }
            | TransformOp::Logit { .. }
            | TransformOp::Clamp { .. }
            | TransformOp::ComputeScore { .. }
            | TransformOp::GetLocalHour { .. } => 8.0,
            // Hash-per-element generation: GPU-friendly.
            TransformOp::Cartesian { .. }
            | TransformOp::NGram { .. }
            | TransformOp::Enumerate { .. }
            | TransformOp::PositiveModulus { .. } => 6.0,
            // Irregular set/lookup work: poorly suited.
            TransformOp::IdListTransform { .. } | TransformOp::MapId { .. } => 1.5,
            TransformOp::Onehot { .. } => 4.0,
            // Truncation is memcpy-bound; offload gains little.
            TransformOp::FirstX { .. } => 2.0,
            TransformOp::Sampling { .. } => 1.0,
        }
    }

    /// Effective speedup of running `plan` on a GPU for a mini-batch of
    /// `batch_size` samples with `elements_per_sample` mean elements:
    /// per-op speedups weighted by cycles, discounted by one kernel launch
    /// per op per batch.
    pub fn effective_plan_speedup(
        &self,
        plan: &TransformPlan,
        batch_size: u64,
        elements_per_sample: f64,
    ) -> f64 {
        if plan.is_empty() || batch_size == 0 {
            return 1.0;
        }
        let cost_model = OpCost::default();
        let mut cpu_cycles = 0.0;
        let mut gpu_cycles = 0.0;
        for op in plan.ops() {
            let class = OpCost::class_of(op);
            let per_element = cost_model.cycles_per_element(class);
            let op_cycles = per_element * elements_per_sample * batch_size as f64;
            cpu_cycles += op_cycles;
            gpu_cycles += op_cycles / Self::gpu_speedup(op) + self.launch_overhead_cycles;
        }
        cpu_cycles / gpu_cycles
    }

    /// Whether offloading to the training GPU fits in the contention
    /// budget, given preprocessing would need `preproc_gpu_fraction` of the
    /// GPU.
    pub fn fits_training_gpu(&self, preproc_gpu_fraction: f64) -> bool {
        preproc_gpu_fraction <= self.gpu_contention_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_types::FeatureId;

    fn hash_plan(n_ops: usize) -> TransformPlan {
        TransformPlan::new(
            (0..n_ops)
                .map(|i| TransformOp::SigridHash {
                    input: FeatureId(i as u64),
                    salt: i as u64,
                    modulus: 1000,
                })
                .collect(),
        )
    }

    #[test]
    fn paper_measured_speedups() {
        assert_eq!(
            AccelModel::gpu_speedup(&TransformOp::SigridHash {
                input: FeatureId(1),
                salt: 0,
                modulus: 10
            }),
            11.9
        );
        assert_eq!(
            AccelModel::gpu_speedup(&TransformOp::Bucketize {
                input: FeatureId(1),
                borders: vec![],
                output: FeatureId(2)
            }),
            1.3
        );
    }

    #[test]
    fn large_batches_amortize_launch_overhead() {
        let model = AccelModel::default();
        let plan = hash_plan(4);
        let small = model.effective_plan_speedup(&plan, 8, 25.0);
        let large = model.effective_plan_speedup(&plan, 8192, 25.0);
        assert!(large > small);
        assert!(
            large > 8.0,
            "large-batch speedup {large:.1} should approach 11.9"
        );
        assert!(
            small < 3.0,
            "small-batch speedup {small:.1} should be launch-bound"
        );
    }

    #[test]
    fn empty_plan_has_unit_speedup() {
        let model = AccelModel::default();
        assert_eq!(
            model.effective_plan_speedup(&TransformPlan::empty(), 100, 10.0),
            1.0
        );
        assert_eq!(model.effective_plan_speedup(&hash_plan(1), 0, 10.0), 1.0);
    }

    #[test]
    fn contention_budget() {
        let model = AccelModel::default();
        assert!(model.fits_training_gpu(0.05));
        assert!(!model.fits_training_gpu(0.5));
    }

    #[test]
    fn bucketize_heavy_plan_barely_benefits() {
        let model = AccelModel::default();
        let plan = TransformPlan::new(
            (0..4)
                .map(|i| TransformOp::Bucketize {
                    input: FeatureId(i),
                    borders: (0..16).map(f64::from).collect(),
                    output: FeatureId(100 + i),
                })
                .collect(),
        );
        let s = model.effective_plan_speedup(&plan, 8192, 25.0);
        assert!(s < 1.35, "bucketize plan speedup {s:.2}");
    }
}
