//! Property tests: the zero-copy fastpath decode must be bitwise
//! equivalent to the legacy copying decode over random schemas, writer
//! configurations (compression, encryption, flattening, dedup), row
//! counts, projections, and coalescing policies — and the two modes must
//! keep their copy-accounting invariants (fastpath never memcpys an
//! in-memory source; the legacy path copies every read and every wanted
//! window).

use dsi_types::{FeatureId, Projection, Sample, SparseList};
use dwrf::{
    CoalescePolicy, DecodeMode, FileReader, FileWriter, SliceSource, StreamOrder, WriterOptions,
};
use proptest::collection::vec;
use proptest::prelude::*;

const DENSE_IDS: std::ops::Range<u64> = 0..6;
const SPARSE_IDS: std::ops::Range<u64> = 6..12;

/// One generated row: label, dense values, and per-feature sparse payload
/// pool indices (drawing payloads from a small pool gives the dedup
/// encoder real duplicates to fold).
fn row_strategy() -> impl Strategy<Value = (f32, Vec<f32>, Vec<u8>)> {
    (
        -1.0f32..1.0,
        vec(
            (-100.0f32..100.0).prop_map(|v| v),
            0..DENSE_IDS.end as usize,
        ),
        vec(any::<u8>(), 0..(SPARSE_IDS.end - SPARSE_IDS.start) as usize),
    )
}

fn payload_pool() -> Vec<SparseList> {
    (0..8u64)
        .map(|p| {
            if p % 2 == 0 {
                SparseList::from_ids((0..p + 1).map(|k| p * 1_000 + k * 17).collect())
            } else {
                SparseList::from_scored(
                    (0..p + 1).map(|k| p * 999 + k).collect(),
                    (0..p + 1).map(|k| k as f32 * 0.25).collect(),
                )
            }
        })
        .collect()
}

fn build_rows(raw: &[(f32, Vec<f32>, Vec<u8>)]) -> Vec<Sample> {
    let pool = payload_pool();
    raw.iter()
        .map(|(label, dense, sparse_picks)| {
            let mut s = Sample::new(*label);
            for (i, v) in dense.iter().enumerate() {
                s.set_dense(FeatureId(DENSE_IDS.start + i as u64), *v);
            }
            for (i, pick) in sparse_picks.iter().enumerate() {
                let payload = pool[*pick as usize % pool.len()].clone();
                s.set_sparse(FeatureId(SPARSE_IDS.start + i as u64), payload);
            }
            s
        })
        .collect()
}

fn options_strategy() -> impl Strategy<Value = WriterOptions> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        1usize..48,
        prop_oneof![
            Just(StreamOrder::ById),
            Just(StreamOrder::Popularity(vec![
                FeatureId(7),
                FeatureId(2),
                FeatureId(9),
            ])),
        ],
    )
        .prop_map(
            |(flattened, compressed, encrypted, dedup, rows_per_stripe, order)| WriterOptions {
                flattened,
                compressed,
                encrypted,
                rows_per_stripe,
                order,
                dedup,
                ..Default::default()
            },
        )
}

fn readers(file: &dwrf::DwrfFile) -> (FileReader, FileReader) {
    let fast = FileReader::open(file.bytes().clone())
        .unwrap()
        .with_decode_mode(DecodeMode::Fastpath);
    let slow = FileReader::open(file.bytes().clone())
        .unwrap()
        .with_decode_mode(DecodeMode::Copying);
    (fast, slow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fastpath_decode_is_bitwise_identical_to_copying(
        raw in vec(row_strategy(), 1..120),
        opts in options_strategy(),
    ) {
        let rows = build_rows(&raw);
        let mut w = FileWriter::new(opts);
        for s in &rows {
            w.push(s.clone());
        }
        let file = w.finish().unwrap();
        let (fast, slow) = readers(&file);
        let fast_rows = fast.read_all_unprojected().unwrap();
        let slow_rows = slow.read_all_unprojected().unwrap();
        prop_assert_eq!(&fast_rows, &slow_rows, "decode modes diverged");
        // The decoder canonicalizes unscored sparse lists into explicit
        // uniform scores, so compare round-trip structure rather than the
        // raw input: row count, labels, dense maps, and sparse ids.
        prop_assert_eq!(fast_rows.len(), rows.len());
        for (got, want) in fast_rows.iter().zip(&rows) {
            prop_assert_eq!(got.label(), want.label());
            for (id, v) in want.dense_iter() {
                prop_assert_eq!(got.dense(id), Some(v), "dense {:?}", id);
            }
            prop_assert_eq!(got.dense_count(), want.dense_count());
            prop_assert_eq!(got.sparse_count(), want.sparse_count());
            for (id, list) in want.sparse_iter() {
                let decoded = got.sparse(id).expect("sparse feature survived");
                prop_assert_eq!(decoded.ids(), list.ids(), "sparse {:?}", id);
            }
        }
    }

    #[test]
    fn projected_stripe_reads_match_across_modes_and_policies(
        raw in vec(row_strategy(), 1..100),
        opts in options_strategy(),
        picks in vec(any::<u8>(), 1..6),
        window in prop_oneof![
            Just(CoalescePolicy::None),
            Just(CoalescePolicy::default_window()),
            (1u64..4096).prop_map(CoalescePolicy::Window),
        ],
    ) {
        let rows = build_rows(&raw);
        let mut w = FileWriter::new(opts);
        for s in &rows {
            w.push(s.clone());
        }
        let file = w.finish().unwrap();
        let ids: Vec<FeatureId> = picks
            .iter()
            .map(|p| FeatureId(*p as u64 % SPARSE_IDS.end))
            .collect();
        let projection = Projection::new(ids);
        let (fast, slow) = readers(&file);
        for stripe in 0..fast.num_stripes() {
            let mut fast_src = SliceSource::new(file.bytes().clone());
            let mut slow_src = SliceSource::new(file.bytes().clone());
            let (fast_rows, fast_plan) = fast
                .read_stripe_from(stripe, Some(&projection), window, &mut fast_src)
                .unwrap();
            let (slow_rows, slow_plan) = slow
                .read_stripe_from(stripe, Some(&projection), window, &mut slow_src)
                .unwrap();
            prop_assert_eq!(fast_rows, slow_rows, "stripe {} diverged", stripe);
            // Copy accounting: zero-copy over an in-memory source never
            // memcpys; the legacy path copies each read plus each wanted
            // stream window it materializes.
            prop_assert_eq!(fast_plan.copied_bytes, 0);
            prop_assert_eq!(
                slow_plan.copied_bytes,
                slow_plan.read_bytes + slow_plan.wanted_bytes
            );
            // Both modes plan the same IO.
            prop_assert_eq!(fast_plan.read_bytes, slow_plan.read_bytes);
            prop_assert_eq!(fast_plan.wanted_bytes, slow_plan.wanted_bytes);
        }
    }
}
