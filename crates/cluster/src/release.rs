//! The collaborative model-release process (§IV-A, Fig. 4).
//!
//! Hundreds of ranking engineers iterate on one production model: ideas are
//! **explored** in many small jobs on <5% of the table, the promising ones
//! **combined** into tens-to-hundreds of large combo jobs inside a short
//! window, and the best **release candidates** train on fresh data. Because
//! compute is scarce relative to per-job demand, engineers launch combo
//! jobs asynchronously as slots free up and kill laggards — producing the
//! large temporal skew and high kill/fail rates of Fig. 4.

use dsi_types::rng::SplitMix64;
use dsi_types::JobId;
use serde::{Deserialize, Serialize};

/// Phase a job belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobKind {
    /// Small idea-exploration job (<5% of the table).
    Explore,
    /// Large combination job inside the combo window.
    Combo,
    /// Final release-candidate job on fresh data.
    ReleaseCandidate,
}

/// Final status of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobStatus {
    /// Ran to completion.
    Completed,
    /// Crashed or diverged.
    Failed,
    /// Killed by its owner for lackluster metrics.
    Killed,
}

/// One training job in a release iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Job identity.
    pub id: JobId,
    /// Phase.
    pub kind: JobKind,
    /// Submission day within the iteration.
    pub submit_day: f64,
    /// Runtime in days.
    pub duration_days: f64,
    /// Outcome.
    pub status: JobStatus,
    /// Fraction of the table's samples the job reads.
    pub table_fraction: f64,
    /// Relative compute units consumed.
    pub compute_units: f64,
}

impl Job {
    /// Day the job ends.
    pub fn end_day(&self) -> f64 {
        self.submit_day + self.duration_days
    }
}

/// Release-process generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReleaseConfig {
    /// Exploratory jobs per iteration.
    pub explore_jobs: u32,
    /// Combo jobs per iteration (Fig. 4 shows 82 for RM1).
    pub combo_jobs: u32,
    /// Release candidates per iteration.
    pub release_candidates: u32,
    /// Length of the combo window in days.
    pub combo_window_days: f64,
    /// Median combo duration in days.
    pub combo_median_days: f64,
    /// Probability a combo job fails.
    pub fail_rate: f64,
    /// Probability a combo job is killed for poor metrics.
    pub kill_rate: f64,
}

impl Default for ReleaseConfig {
    fn default() -> Self {
        Self {
            explore_jobs: 600,
            combo_jobs: 82,
            release_candidates: 4,
            combo_window_days: 14.0,
            combo_median_days: 4.0,
            fail_rate: 0.18,
            kill_rate: 0.25,
        }
    }
}

/// Generates the jobs of release iterations.
#[derive(Debug, Clone)]
pub struct ReleaseProcess {
    config: ReleaseConfig,
}

impl ReleaseProcess {
    /// Creates a generator.
    pub fn new(config: ReleaseConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ReleaseConfig {
        &self.config
    }

    /// Generates one iteration's jobs deterministically from `seed`.
    pub fn generate_iteration(&self, seed: u64) -> Vec<Job> {
        let mut rng = SplitMix64::new(seed);
        let c = &self.config;
        let mut jobs = Vec::new();
        let mut next_id = 0u64;
        let push = |jobs: &mut Vec<Job>, job: Job| jobs.push(job);

        // Explore: small, cheap, spread over the whole iteration.
        for _ in 0..c.explore_jobs {
            let duration = rng.next_lognormal(0.5, 0.6);
            push(
                &mut jobs,
                Job {
                    id: JobId(next_id),
                    kind: JobKind::Explore,
                    submit_day: rng.next_f64() * c.combo_window_days * 2.0,
                    duration_days: duration,
                    status: if rng.chance(0.15) {
                        JobStatus::Killed
                    } else {
                        JobStatus::Completed
                    },
                    table_fraction: 0.01 + rng.next_f64() * 0.04, // < 5%
                    compute_units: duration * 1.0,
                },
            );
            next_id += 1;
        }

        // Combo: large, launched asynchronously inside the window as slots
        // free — arrivals skew early but straggle throughout (Fig. 4).
        for _ in 0..c.combo_jobs {
            // Early-biased arrival: cubed uniform leans hard toward day 0.
            let u = rng.next_f64();
            let submit = u * u * u * c.combo_window_days;
            let status = if rng.chance(c.fail_rate) {
                JobStatus::Failed
            } else if rng.chance(c.kill_rate) {
                JobStatus::Killed
            } else {
                JobStatus::Completed
            };
            // Killed/failed jobs die early; completed ones run long, some
            // past 10 days.
            let duration = match status {
                JobStatus::Completed => rng.next_lognormal(c.combo_median_days, 0.5),
                JobStatus::Failed => rng.next_lognormal(c.combo_median_days * 0.4, 0.8),
                JobStatus::Killed => rng.next_lognormal(c.combo_median_days * 0.6, 0.7),
            };
            push(
                &mut jobs,
                Job {
                    id: JobId(next_id),
                    kind: JobKind::Combo,
                    submit_day: submit,
                    duration_days: duration,
                    status,
                    table_fraction: 0.7 + rng.next_f64() * 0.3,
                    compute_units: duration * 40.0,
                },
            );
            next_id += 1;
        }

        // Release candidates: few, large, after the combo window.
        for _ in 0..c.release_candidates {
            let duration = rng.next_lognormal(c.combo_median_days * 1.5, 0.3);
            push(
                &mut jobs,
                Job {
                    id: JobId(next_id),
                    kind: JobKind::ReleaseCandidate,
                    submit_day: c.combo_window_days + rng.next_f64() * 3.0,
                    duration_days: duration,
                    status: JobStatus::Completed,
                    table_fraction: 0.9,
                    compute_units: duration * 50.0,
                },
            );
            next_id += 1;
        }
        jobs
    }

    /// Concurrent combo jobs running on each day of the iteration — the
    /// parallelism the fleet must absorb at peak.
    pub fn combo_concurrency(jobs: &[Job], horizon_days: u32) -> Vec<u32> {
        (0..horizon_days)
            .map(|d| {
                let day = d as f64;
                jobs.iter()
                    .filter(|j| {
                        j.kind == JobKind::Combo && j.submit_day <= day && j.end_day() > day
                    })
                    .count() as u32
            })
            .collect()
    }
}

impl Default for ReleaseProcess {
    fn default() -> Self {
        Self::new(ReleaseConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn combos(jobs: &[Job]) -> Vec<&Job> {
        jobs.iter().filter(|j| j.kind == JobKind::Combo).collect()
    }

    #[test]
    fn iteration_has_configured_job_counts() {
        let jobs = ReleaseProcess::default().generate_iteration(1);
        let c = ReleaseConfig::default();
        assert_eq!(
            jobs.len() as u32,
            c.explore_jobs + c.combo_jobs + c.release_candidates
        );
        assert_eq!(combos(&jobs).len() as u32, c.combo_jobs);
    }

    #[test]
    fn fig4_durations_are_skewed_with_long_tail() {
        let jobs = ReleaseProcess::default().generate_iteration(7);
        let mut durations: Vec<f64> = combos(&jobs).iter().map(|j| j.duration_days).collect();
        durations.sort_by(f64::total_cmp);
        let median = durations[durations.len() / 2];
        let max = *durations.last().unwrap();
        assert!(max > 10.0, "some combo should exceed 10 days, max {max:.1}");
        assert!(max / median > 2.0, "durations should be skewed");
    }

    #[test]
    fn fig4_many_jobs_fail_or_are_killed() {
        let jobs = ReleaseProcess::default().generate_iteration(3);
        let cs = combos(&jobs);
        let unfinished = cs
            .iter()
            .filter(|j| j.status != JobStatus::Completed)
            .count();
        let frac = unfinished as f64 / cs.len() as f64;
        assert!(
            (0.2..0.7).contains(&frac),
            "{:.2} of combo jobs should fail/be killed",
            frac
        );
    }

    #[test]
    fn fig4_arrivals_are_temporally_skewed() {
        let jobs = ReleaseProcess::default().generate_iteration(5);
        let cs = combos(&jobs);
        let window = ReleaseConfig::default().combo_window_days;
        let early = cs.iter().filter(|j| j.submit_day < window / 2.0).count();
        assert!(
            early as f64 / cs.len() as f64 > 0.6,
            "arrivals should lean early: {early}/{}",
            cs.len()
        );
    }

    #[test]
    fn explore_jobs_use_small_table_fractions() {
        let jobs = ReleaseProcess::default().generate_iteration(2);
        assert!(jobs
            .iter()
            .filter(|j| j.kind == JobKind::Explore)
            .all(|j| j.table_fraction < 0.05));
        assert!(jobs
            .iter()
            .filter(|j| j.kind == JobKind::Combo)
            .all(|j| j.table_fraction >= 0.7));
    }

    #[test]
    fn concurrency_peaks_inside_the_window() {
        let jobs = ReleaseProcess::default().generate_iteration(11);
        let conc = ReleaseProcess::combo_concurrency(&jobs, 30);
        let peak = *conc.iter().max().unwrap();
        let peak_day = conc.iter().position(|&c| c == peak).unwrap();
        assert!(peak >= 10, "peak concurrency {peak}");
        assert!(peak_day < 15, "peak should fall inside the window");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = ReleaseProcess::default();
        assert_eq!(p.generate_iteration(9), p.generate_iteration(9));
        assert_ne!(p.generate_iteration(9), p.generate_iteration(10));
    }
}
