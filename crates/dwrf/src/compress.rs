//! An LZ77-style block compressor for DWRF streams.
//!
//! Streams are compressed before encryption. The codec favors encode speed
//! over ratio (storage bytes in the paper's tables are "compressed sizes",
//! and extraction cost includes decompression, so the work must be real).
//!
//! Format: a 1-byte mode tag (`0` = stored, `1` = LZ), then for LZ blocks a
//! varint uncompressed length followed by a token stream. Each token is a
//! control byte: `0x00..=0x7f` means a literal run of `ctl + 1` bytes;
//! `0x80..=0xff` means a match of length `(ctl & 0x7f) + MIN_MATCH` at a
//! varint back-distance.

use crate::encoding::{read_varint, write_varint};
use dsi_types::{DsiError, Result};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 0x7f + MIN_MATCH;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`, returning the encoded block.
///
/// Falls back to a stored block when compression does not help.
pub fn compress(input: &[u8]) -> Vec<u8> {
    if input.len() < MIN_MATCH * 2 {
        return stored_block(input);
    }
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.push(1u8);
    write_varint(&mut out, input.len() as u64);

    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0;
    let mut literal_start = 0;
    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = table[h];
        table[h] = i;
        if candidate != usize::MAX
            && candidate < i
            && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH]
        {
            // Extend the match.
            let mut len = MIN_MATCH;
            while i + len < input.len()
                && len < MAX_MATCH
                && input[candidate + len] == input[i + len]
            {
                len += 1;
            }
            flush_literals(&mut out, &input[literal_start..i]);
            let dist = i - candidate;
            out.push(0x80 | (len - MIN_MATCH) as u8);
            write_varint(&mut out, dist as u64);
            // Index a few positions inside the match to keep the table warm.
            let end = i + len;
            let mut j = i + 1;
            while j + MIN_MATCH <= input.len() && j < end {
                table[hash4(&input[j..])] = j;
                j += 2;
            }
            i = end;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, &input[literal_start..]);

    if out.len() > input.len() {
        stored_block(input)
    } else {
        out
    }
}

fn stored_block(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() + 1);
    out.push(0u8);
    out.extend_from_slice(input);
    out
}

fn flush_literals(out: &mut Vec<u8>, mut lits: &[u8]) {
    while !lits.is_empty() {
        let n = lits.len().min(0x80);
        out.push((n - 1) as u8);
        out.extend_from_slice(&lits[..n]);
        lits = &lits[n..];
    }
}

/// If `block` is a stored (uncompressed) block, returns the byte range of
/// its payload within `block`. Zero-copy readers slice this range out of
/// the shared stripe buffer instead of decompressing into fresh scratch.
pub fn stored_payload_range(block: &[u8]) -> Option<std::ops::Range<usize>> {
    (block.first() == Some(&0)).then_some(1..block.len())
}

/// Decompresses a block produced by [`compress`].
///
/// # Errors
///
/// Returns [`DsiError::Corrupt`] on malformed input.
pub fn decompress(block: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    decompress_into(block, &mut out)?;
    Ok(out)
}

/// Decompresses a block produced by [`compress`] into `out` (cleared
/// first), so pooled scratch buffers can absorb the output allocation.
///
/// # Errors
///
/// Returns [`DsiError::Corrupt`] on malformed input.
pub fn decompress_into(block: &[u8], out: &mut Vec<u8>) -> Result<()> {
    out.clear();
    let (&mode, rest) = block
        .split_first()
        .ok_or_else(|| DsiError::corrupt("empty compressed block"))?;
    match mode {
        0 => {
            out.extend_from_slice(rest);
            Ok(())
        }
        1 => {
            let mut pos = 0;
            let expect = read_varint(rest, &mut pos)? as usize;
            out.reserve(expect);
            while pos < rest.len() {
                let ctl = rest[pos];
                pos += 1;
                if ctl & 0x80 == 0 {
                    let n = ctl as usize + 1;
                    if pos + n > rest.len() {
                        return Err(DsiError::corrupt("truncated literal run"));
                    }
                    out.extend_from_slice(&rest[pos..pos + n]);
                    pos += n;
                } else {
                    let len = (ctl & 0x7f) as usize + MIN_MATCH;
                    let dist = read_varint(rest, &mut pos)? as usize;
                    if dist == 0 || dist > out.len() {
                        return Err(DsiError::corrupt("match distance out of range"));
                    }
                    let start = out.len() - dist;
                    // Overlapping copies are legal (repeat patterns).
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
            }
            if out.len() != expect {
                return Err(DsiError::corrupt(format!(
                    "decompressed {} bytes, expected {expect}",
                    out.len()
                )));
            }
            Ok(())
        }
        _ => Err(DsiError::corrupt("unknown compression mode")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_types::rng::SplitMix64;

    fn round_trip(data: &[u8]) {
        let enc = compress(data);
        let dec = decompress(&enc).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn empty_and_tiny() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_data_compresses() {
        let data: Vec<u8> = b"featurefeaturefeature".repeat(100);
        let enc = compress(&data);
        assert!(
            enc.len() < data.len() / 3,
            "len {} vs {}",
            enc.len(),
            data.len()
        );
        round_trip(&data);
    }

    #[test]
    fn random_data_stored_without_blowup() {
        let mut r = SplitMix64::new(1);
        let data: Vec<u8> = (0..4096).map(|_| r.next_u64() as u8).collect();
        let enc = compress(&data);
        assert!(enc.len() <= data.len() + 1);
        round_trip(&data);
    }

    #[test]
    fn overlapping_match_round_trip() {
        // "abab" repeated produces distance-2 overlapping matches.
        let data = b"ab".repeat(500);
        round_trip(&data);
    }

    #[test]
    fn structured_columnar_like_data() {
        // Simulates varint-heavy columnar content: small ints with runs.
        let mut data = Vec::new();
        for i in 0u32..2000 {
            data.extend_from_slice(&(i % 17).to_le_bytes());
        }
        let enc = compress(&data);
        assert!(enc.len() < data.len());
        round_trip(&data);
    }

    #[test]
    fn stored_payload_range_identifies_stored_blocks() {
        let stored = compress(&[7u8; 4]); // too short to match: stored
        let range = stored_payload_range(&stored).expect("stored block");
        assert_eq!(&stored[range], &[7u8; 4]);
        let lz = compress(&b"featurefeaturefeature".repeat(50));
        assert!(stored_payload_range(&lz).is_none());
        assert!(stored_payload_range(&[]).is_none());
    }

    #[test]
    fn decompress_into_reuses_and_clears_scratch() {
        let data = b"ab".repeat(300);
        let enc = compress(&data);
        let mut scratch = vec![0xee; 17];
        decompress_into(&enc, &mut scratch).unwrap();
        assert_eq!(scratch, data);
    }

    #[test]
    fn corrupt_inputs_error() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[9, 1, 2]).is_err());
        // LZ block claiming length but with bad match distance.
        let mut bad = vec![1u8];
        write_varint(&mut bad, 8);
        bad.push(0x80); // match of MIN_MATCH at distance...
        write_varint(&mut bad, 99); // ...out of range
        assert!(decompress(&bad).is_err());
    }
}
