//! The `PipelineReport`: a pretty-printed characterization of one DSI
//! run, mirroring the tables the paper uses to describe production
//! workloads — per-stage time/cycle shares (datacenter tax), storage
//! read amplification and per-node IOPS spread, cache effectiveness,
//! and the trainer's data-stall fraction.

use std::fmt;

use crate::names;
use crate::registry::{MetricValue, Registry};
use crate::span::{STAGE_CYCLES_TOTAL, STAGE_SECONDS};

/// One row of the per-stage breakdown.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Hierarchical stage path (`extract`, `load/tls`, ...).
    pub stage: String,
    /// Spans recorded for this stage.
    pub spans: u64,
    /// Total wall seconds attributed to the stage.
    pub seconds: f64,
    /// Simulated cycles attributed to the stage.
    pub cycles: u64,
}

/// Per-storage-node totals.
#[derive(Debug, Clone)]
pub struct NodeRow {
    /// Node label.
    pub node: String,
    /// I/O operations served.
    pub ios: u64,
    /// Bytes served.
    pub bytes: u64,
}

/// Per-job (tenant) fleet-control-plane totals, keyed by the `job` label
/// the reconciler stamps on every `dsi_fleet_*` series.
#[derive(Debug, Clone, Default)]
pub struct FleetRow {
    /// Job (session) label, e.g. `sess3`.
    pub job: String,
    /// Tenant label, e.g. `t7`.
    pub tenant: String,
    /// Workers currently allocated to the job.
    pub allocated: u64,
    /// Workers the fair-share allocator wants the job to have.
    pub desired: u64,
    /// Workers short of the job's full demand under contention.
    pub deficit: u64,
    /// Workers preempted away from this job so far.
    pub preemptions: u64,
}

/// Collected characterization numbers for one run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Per-stage rows, sorted by descending seconds.
    pub stages: Vec<StageRow>,
    /// Per-node storage rows, sorted by node label.
    pub nodes: Vec<NodeRow>,
    /// ETL pairs joined.
    pub etl_joined: u64,
    /// ETL orphan events.
    pub etl_orphans: u64,
    /// ETL expired-negative samples.
    pub etl_expired: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Cache hit rate in `[0,1]`.
    pub cache_hit_rate: f64,
    /// Bytes physically read from storage.
    pub read_bytes: u64,
    /// Bytes the readers actually wanted.
    pub wanted_bytes: u64,
    /// Per-page checksum failures detected by storage reads.
    pub tectonic_checksum_failures: u64,
    /// Bad replicas repaired in place after a verified read.
    pub tectonic_read_repairs: u64,
    /// Reads served by a non-first-choice replica.
    pub tectonic_failovers: u64,
    /// Chunks re-replicated by the rebuild worker.
    pub tectonic_rebuilt_chunks: u64,
    /// Disk IOs charged to rebuild traffic.
    pub tectonic_rebuild_ios: u64,
    /// Storage nodes currently declared dead by the heartbeat detector.
    pub tectonic_dead_nodes: u64,
    /// Chunks currently below their target live replica count.
    pub tectonic_under_replicated: u64,
    /// Samples produced by workers.
    pub worker_samples: u64,
    /// Batches produced by workers.
    pub worker_batches: u64,
    /// Batches consumed by the trainer.
    pub trainer_batches: u64,
    /// Trainer data-stall fraction in `[0,1]`.
    pub stall_fraction: f64,
    /// Trainer wall seconds observed.
    pub trainer_elapsed: f64,
    /// DedupSets formed (storage writes + worker transforms).
    pub dedup_sets: u64,
    /// Logical rows covered by DedupSets.
    pub dedup_rows: u64,
    /// Storage bytes duplicate rows did not re-store.
    pub dedup_bytes_saved: u64,
    /// Transform op applications replaced by canonical fan-out.
    pub dedup_reuse_hits: u64,
    /// Observed rows per canonical payload (1.0 = no duplication).
    pub dedup_ratio: f64,
    /// Data frames shipped over the wire transport (0 = in-process run).
    pub wire_frames: u64,
    /// Serialized envelope bytes before compression/encryption.
    pub wire_payload_bytes: u64,
    /// Bytes actually written to the socket (headers + wire payload).
    pub wire_tx_bytes: u64,
    /// Nanoseconds spent serializing envelopes.
    pub wire_serialize_nanos: u64,
    /// Nanoseconds spent in the stream cipher (encrypt + decrypt).
    pub wire_encrypt_nanos: u64,
    /// Nanoseconds spent verifying/decompressing/deserializing frames.
    pub wire_deserialize_nanos: u64,
    /// Client reconnects to worker wire servers.
    pub wire_reconnects: u64,
    /// Per-tenant fleet rows (empty when no reconciler ran).
    pub fleet: Vec<FleetRow>,
    /// Reconcile ticks executed by the fleet control plane.
    pub fleet_reconciles: u64,
    /// Total wall seconds spent inside reconcile ticks.
    pub fleet_reconcile_seconds: f64,
}

impl PipelineReport {
    /// Gathers a report from the registry's current state.
    pub fn collect(registry: &Registry) -> Self {
        let mut report = Self::default();
        let mut stages: Vec<StageRow> = Vec::new();
        for (key, value) in registry.snapshot() {
            let label = |want: &str| {
                key.labels
                    .iter()
                    .find(|(k, _)| k == want)
                    .map(|(_, v)| v.clone())
            };
            match (key.name.as_str(), &value) {
                (STAGE_SECONDS, MetricValue::Histogram(s)) => {
                    if let Some(stage) = label("stage") {
                        match stages.iter_mut().find(|r| r.stage == stage) {
                            Some(row) => {
                                row.spans = s.count;
                                row.seconds = s.sum;
                            }
                            None => stages.push(StageRow {
                                stage,
                                spans: s.count,
                                seconds: s.sum,
                                cycles: 0,
                            }),
                        }
                    }
                }
                (STAGE_CYCLES_TOTAL, MetricValue::Counter(c)) => {
                    if let Some(stage) = label("stage") {
                        match stages.iter_mut().find(|r| r.stage == stage) {
                            Some(row) => row.cycles = *c,
                            None => stages.push(StageRow {
                                stage,
                                spans: 0,
                                seconds: 0.0,
                                cycles: *c,
                            }),
                        }
                    }
                }
                (names::STORAGE_NODE_IOS_TOTAL, MetricValue::Counter(c)) => {
                    if let Some(node) = label("node") {
                        match report.nodes.iter_mut().find(|r| r.node == node) {
                            Some(row) => row.ios = *c,
                            None => report.nodes.push(NodeRow {
                                node,
                                ios: *c,
                                bytes: 0,
                            }),
                        }
                    }
                }
                (names::STORAGE_NODE_BYTES_TOTAL, MetricValue::Counter(c)) => {
                    if let Some(node) = label("node") {
                        match report.nodes.iter_mut().find(|r| r.node == node) {
                            Some(row) => row.bytes = *c,
                            None => report.nodes.push(NodeRow {
                                node,
                                ios: 0,
                                bytes: *c,
                            }),
                        }
                    }
                }
                (names::ETL_JOINED_TOTAL, MetricValue::Counter(c)) => report.etl_joined = *c,
                (names::ETL_ORPHAN_EVENTS_TOTAL, MetricValue::Counter(c)) => {
                    report.etl_orphans = *c
                }
                (names::ETL_EXPIRED_NEGATIVE_TOTAL, MetricValue::Counter(c)) => {
                    report.etl_expired = *c
                }
                (names::CACHE_HITS_TOTAL, MetricValue::Counter(c)) => report.cache_hits += *c,
                (names::CACHE_MISSES_TOTAL, MetricValue::Counter(c)) => report.cache_misses += *c,
                (names::CACHE_HIT_RATE, MetricValue::Gauge(v)) => report.cache_hit_rate = *v,
                (names::DWRF_READ_BYTES_TOTAL, MetricValue::Counter(c)) => report.read_bytes += *c,
                (names::DWRF_WANTED_BYTES_TOTAL, MetricValue::Counter(c)) => {
                    report.wanted_bytes += *c
                }
                (names::WORKER_STORAGE_RX_BYTES_TOTAL, MetricValue::Counter(c)) => {
                    report.read_bytes += *c
                }
                (names::WORKER_STORAGE_WANTED_BYTES_TOTAL, MetricValue::Counter(c)) => {
                    report.wanted_bytes += *c
                }
                (names::WORKER_SAMPLES_TOTAL, MetricValue::Counter(c)) => {
                    report.worker_samples += *c
                }
                (names::WORKER_BATCHES_TOTAL, MetricValue::Counter(c)) => {
                    report.worker_batches += *c
                }
                (names::TRAINER_BATCHES_TOTAL, MetricValue::Counter(c)) => {
                    report.trainer_batches += *c
                }
                (names::TRAINER_STALL_FRACTION, MetricValue::Gauge(v)) => {
                    report.stall_fraction = *v
                }
                (names::TRAINER_ELAPSED_SECONDS, MetricValue::Gauge(v)) => {
                    report.trainer_elapsed = *v
                }
                (names::DEDUP_SETS_TOTAL, MetricValue::Counter(c)) => report.dedup_sets = *c,
                (names::DEDUP_ROWS_TOTAL, MetricValue::Counter(c)) => report.dedup_rows = *c,
                (names::DEDUP_BYTES_SAVED_TOTAL, MetricValue::Counter(c)) => {
                    report.dedup_bytes_saved = *c
                }
                (names::DEDUP_TRANSFORM_REUSE_HITS_TOTAL, MetricValue::Counter(c)) => {
                    report.dedup_reuse_hits = *c
                }
                (names::DEDUP_RATIO, MetricValue::Gauge(v)) => report.dedup_ratio = *v,
                (names::TECTONIC_CHECKSUM_FAILURES_TOTAL, MetricValue::Counter(c)) => {
                    report.tectonic_checksum_failures += *c
                }
                (names::TECTONIC_READ_REPAIRS_TOTAL, MetricValue::Counter(c)) => {
                    report.tectonic_read_repairs += *c
                }
                (names::TECTONIC_FAILOVERS_TOTAL, MetricValue::Counter(c)) => {
                    report.tectonic_failovers += *c
                }
                (names::TECTONIC_REBUILT_CHUNKS_TOTAL, MetricValue::Counter(c)) => {
                    report.tectonic_rebuilt_chunks += *c
                }
                (names::TECTONIC_REBUILD_IOS_TOTAL, MetricValue::Counter(c)) => {
                    report.tectonic_rebuild_ios += *c
                }
                (names::TECTONIC_DEAD_NODES, MetricValue::Gauge(v)) => {
                    report.tectonic_dead_nodes += *v as u64
                }
                (names::TECTONIC_UNDER_REPLICATED_CHUNKS, MetricValue::Gauge(v)) => {
                    report.tectonic_under_replicated += *v as u64
                }
                (names::WIRE_FRAMES_TOTAL, MetricValue::Counter(c)) => report.wire_frames += *c,
                (names::WIRE_PAYLOAD_BYTES_TOTAL, MetricValue::Counter(c)) => {
                    report.wire_payload_bytes += *c
                }
                (names::WIRE_TX_BYTES_TOTAL, MetricValue::Counter(c)) => report.wire_tx_bytes += *c,
                (names::WIRE_SERIALIZE_NANOS_TOTAL, MetricValue::Counter(c)) => {
                    report.wire_serialize_nanos += *c
                }
                (names::WIRE_ENCRYPT_NANOS_TOTAL, MetricValue::Counter(c)) => {
                    report.wire_encrypt_nanos += *c
                }
                (names::WIRE_DESERIALIZE_NANOS_TOTAL, MetricValue::Counter(c)) => {
                    report.wire_deserialize_nanos += *c
                }
                (names::WIRE_RECONNECTS_TOTAL, MetricValue::Counter(c)) => {
                    report.wire_reconnects += *c
                }
                (
                    names::FLEET_ALLOCATED_WORKERS
                    | names::FLEET_DESIRED_WORKERS
                    | names::FLEET_FAIR_SHARE_DEFICIT,
                    MetricValue::Gauge(v),
                ) => {
                    if let Some(job) = label("job") {
                        let tenant = label("tenant").unwrap_or_default();
                        let row = fleet_row(&mut report.fleet, job, tenant);
                        match key.name.as_str() {
                            names::FLEET_ALLOCATED_WORKERS => row.allocated = *v as u64,
                            names::FLEET_DESIRED_WORKERS => row.desired = *v as u64,
                            _ => row.deficit = *v as u64,
                        }
                    }
                }
                (names::FLEET_PREEMPTIONS_TOTAL, MetricValue::Counter(c)) => {
                    if let Some(job) = label("job") {
                        let tenant = label("tenant").unwrap_or_default();
                        fleet_row(&mut report.fleet, job, tenant).preemptions = *c;
                    }
                }
                (names::FLEET_RECONCILE_SECONDS, MetricValue::Histogram(s)) => {
                    report.fleet_reconciles = s.count;
                    report.fleet_reconcile_seconds = s.sum;
                }
                _ => {}
            }
        }
        stages.sort_by(|a, b| {
            b.seconds
                .partial_cmp(&a.seconds)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| b.cycles.cmp(&a.cycles))
        });
        report.stages = stages;
        report.nodes.sort_by(
            |a, b| match (a.node.parse::<u64>(), b.node.parse::<u64>()) {
                (Ok(x), Ok(y)) => x.cmp(&y),
                _ => a.node.cmp(&b.node),
            },
        );
        report.fleet.sort_by(|a, b| a.job.cmp(&b.job));
        report
    }

    /// Total workers preempted across every tenant.
    pub fn fleet_preemptions(&self) -> u64 {
        self.fleet.iter().map(|r| r.preemptions).sum()
    }

    /// Read amplification: bytes read divided by bytes wanted (1.0 when
    /// nothing was wanted).
    pub fn overread_ratio(&self) -> f64 {
        if self.wanted_bytes == 0 {
            1.0
        } else {
            self.read_bytes as f64 / self.wanted_bytes as f64
        }
    }

    /// Share of total cycles spent in "datacenter tax" stages (any stage
    /// path containing `tls` or `deserialize`).
    pub fn tax_cycle_share(&self) -> f64 {
        let total: u64 = self.stages.iter().map(|r| r.cycles).sum();
        if total == 0 {
            return 0.0;
        }
        let tax: u64 = self
            .stages
            .iter()
            .filter(|r| {
                r.stage
                    .split('/')
                    .any(|s| s == crate::span::stage::TLS || s == crate::span::stage::DESERIALIZE)
            })
            .map(|r| r.cycles)
            .sum();
        tax as f64 / total as f64
    }

    /// Whether a wire transport carried the data plane in this run. When
    /// true, the measured `wire_*` tax supersedes the analytic
    /// [`PipelineReport::tax_cycle_share`] figure.
    pub fn wire_active(&self) -> bool {
        self.wire_frames > 0
    }

    /// Whether any durability machinery fired in this run: checksum
    /// failures detected, replicas repaired, reads failed over, chunks
    /// rebuilt, or residual dead/under-replicated state.
    pub fn durability_active(&self) -> bool {
        self.tectonic_checksum_failures
            + self.tectonic_read_repairs
            + self.tectonic_failovers
            + self.tectonic_rebuilt_chunks
            + self.tectonic_rebuild_ios
            + self.tectonic_dead_nodes
            + self.tectonic_under_replicated
            > 0
    }

    /// Measured datacenter-tax seconds actually paid on the wire:
    /// serialize + cipher + deserialize time.
    pub fn wire_tax_seconds(&self) -> f64 {
        (self.wire_serialize_nanos + self.wire_encrypt_nanos + self.wire_deserialize_nanos) as f64
            / 1e9
    }

    /// Wire compression ratio: serialized payload bytes divided by bytes
    /// on the wire (1.0 when nothing was sent).
    pub fn wire_compression_ratio(&self) -> f64 {
        if self.wire_tx_bytes == 0 {
            1.0
        } else {
            self.wire_payload_bytes as f64 / self.wire_tx_bytes as f64
        }
    }
}

/// Find-or-insert the fleet row for `job`, back-filling the tenant label
/// (the gauge and counter series carry it redundantly).
fn fleet_row(rows: &mut Vec<FleetRow>, job: String, tenant: String) -> &mut FleetRow {
    let idx = match rows.iter().position(|r| r.job == job) {
        Some(i) => i,
        None => {
            rows.push(FleetRow {
                job,
                ..FleetRow::default()
            });
            rows.len() - 1
        }
    };
    if rows[idx].tenant.is_empty() {
        rows[idx].tenant = tenant;
    }
    &mut rows[idx]
}

fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== DSI pipeline characterization ==")?;

        let total_secs: f64 = self.stages.iter().map(|r| r.seconds).sum();
        let total_cycles: u64 = self.stages.iter().map(|r| r.cycles).sum();
        writeln!(f, "\n-- stage breakdown (wall time / simulated cycles) --")?;
        writeln!(
            f,
            "{:<32} {:>8} {:>12} {:>7} {:>14} {:>7}",
            "stage", "spans", "seconds", "time%", "cycles", "cyc%"
        )?;
        for row in &self.stages {
            let time_pct = if total_secs > 0.0 {
                100.0 * row.seconds / total_secs
            } else {
                0.0
            };
            let cyc_pct = if total_cycles > 0 {
                100.0 * row.cycles as f64 / total_cycles as f64
            } else {
                0.0
            };
            writeln!(
                f,
                "{:<32} {:>8} {:>12.6} {:>6.1}% {:>14} {:>6.1}%",
                row.stage, row.spans, row.seconds, time_pct, row.cycles, cyc_pct
            )?;
        }
        if self.wire_active() {
            // A real wire carried the data plane: report the measured tax
            // instead of the analytic cycle model.
            writeln!(
                f,
                "datacenter tax (measured on wire): {:.6}s = serialize {:.6}s + cipher {:.6}s + deserialize {:.6}s",
                self.wire_tax_seconds(),
                self.wire_serialize_nanos as f64 / 1e9,
                self.wire_encrypt_nanos as f64 / 1e9,
                self.wire_deserialize_nanos as f64 / 1e9,
            )?;
        } else if total_cycles > 0 {
            writeln!(
                f,
                "datacenter tax (tls+deserialize): {:.1}% of cycles",
                100.0 * self.tax_cycle_share()
            )?;
        }

        if self.etl_joined + self.etl_orphans + self.etl_expired > 0 {
            writeln!(f, "\n-- streaming ETL --")?;
            writeln!(
                f,
                "joined: {}  orphan events: {}  expired->negative: {}",
                self.etl_joined, self.etl_orphans, self.etl_expired
            )?;
        }

        writeln!(f, "\n-- storage --")?;
        writeln!(
            f,
            "bytes read: {}  bytes wanted: {}  over-read ratio: {:.3}x",
            human_bytes(self.read_bytes),
            human_bytes(self.wanted_bytes),
            self.overread_ratio()
        )?;
        if !self.nodes.is_empty() {
            let max_ios = self.nodes.iter().map(|n| n.ios).max().unwrap_or(0);
            let min_ios = self.nodes.iter().map(|n| n.ios).min().unwrap_or(0);
            writeln!(
                f,
                "storage nodes: {}  IOPS spread min/max: {}/{}",
                self.nodes.len(),
                min_ios,
                max_ios
            )?;
            for n in &self.nodes {
                writeln!(
                    f,
                    "  node {:<8} ios: {:>10}  bytes: {}",
                    n.node,
                    n.ios,
                    human_bytes(n.bytes)
                )?;
            }
        }
        writeln!(
            f,
            "cache: hits {}  misses {}  hit rate {:.1}%",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hit_rate
        )?;

        if self.durability_active() {
            writeln!(f, "\n-- storage durability --")?;
            writeln!(
                f,
                "checksum failures: {}  read repairs: {}  failovers: {}",
                self.tectonic_checksum_failures,
                self.tectonic_read_repairs,
                self.tectonic_failovers
            )?;
            writeln!(
                f,
                "rebuilt chunks: {}  rebuild IOs: {}  dead nodes: {}  under-replicated: {}",
                self.tectonic_rebuilt_chunks,
                self.tectonic_rebuild_ios,
                self.tectonic_dead_nodes,
                self.tectonic_under_replicated
            )?;
        }

        if self.dedup_sets + self.dedup_rows + self.dedup_reuse_hits > 0 {
            writeln!(f, "\n-- dedup (RecD) --")?;
            writeln!(
                f,
                "sets: {}  rows: {}  ratio: {:.2}x  bytes saved: {}  reuse hits: {}",
                self.dedup_sets,
                self.dedup_rows,
                self.dedup_ratio,
                human_bytes(self.dedup_bytes_saved),
                self.dedup_reuse_hits
            )?;
        }

        if self.wire_active() {
            writeln!(f, "\n-- wire transport (measured datacenter tax) --")?;
            writeln!(
                f,
                "frames: {}  payload: {}  on wire: {}  compression: {:.2}x  reconnects: {}",
                self.wire_frames,
                human_bytes(self.wire_payload_bytes),
                human_bytes(self.wire_tx_bytes),
                self.wire_compression_ratio(),
                self.wire_reconnects
            )?;
        }

        if !self.fleet.is_empty() {
            writeln!(f, "\n-- fleet control plane (multi-tenant) --")?;
            writeln!(
                f,
                "jobs: {}  reconciles: {}  reconcile time: {:.6}s  preemptions: {}",
                self.fleet.len(),
                self.fleet_reconciles,
                self.fleet_reconcile_seconds,
                self.fleet_preemptions()
            )?;
            for r in &self.fleet {
                writeln!(
                    f,
                    "  job {:<8} tenant {:<6} allocated {:>3} / desired {:>3}  deficit {:>3}  preempted {}",
                    r.job, r.tenant, r.allocated, r.desired, r.deficit, r.preemptions
                )?;
            }
        }

        writeln!(f, "\n-- preprocessing / training --")?;
        writeln!(
            f,
            "worker samples: {}  worker batches: {}  trainer batches: {}",
            self.worker_samples, self.worker_batches, self.trainer_batches
        )?;
        let batches_per_sec = if self.trainer_elapsed > 0.0 {
            self.trainer_batches as f64 / self.trainer_elapsed
        } else {
            0.0
        };
        writeln!(
            f,
            "data-stall fraction: {:.1}%  trainer throughput: {:.2} batches/s",
            100.0 * self.stall_fraction,
            batches_per_sec
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{add_stage_cycles, observe_stage_seconds, stage};

    #[test]
    fn collect_groups_stage_time_and_cycles() {
        let r = Registry::new();
        observe_stage_seconds(&r, stage::EXTRACT, 2.0);
        observe_stage_seconds(&r, stage::TRANSFORM, 1.0);
        add_stage_cycles(&r, stage::EXTRACT, 400);
        add_stage_cycles(&r, stage::TLS, 100);
        let report = PipelineReport::collect(&r);
        assert_eq!(report.stages.len(), 3);
        assert_eq!(report.stages[0].stage, "extract");
        assert_eq!(report.stages[0].cycles, 400);
        assert!((report.tax_cycle_share() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn node_rows_merge_ios_and_bytes_and_sort_numerically() {
        let r = Registry::new();
        r.counter(names::STORAGE_NODE_BYTES_TOTAL, &[("node", "0")])
            .add(100);
        r.counter(names::STORAGE_NODE_IOS_TOTAL, &[("node", "0")])
            .add(3);
        r.counter(names::STORAGE_NODE_IOS_TOTAL, &[("node", "10")])
            .add(1);
        r.counter(names::STORAGE_NODE_IOS_TOTAL, &[("node", "2")])
            .add(2);
        let report = PipelineReport::collect(&r);
        assert_eq!(report.nodes.len(), 3);
        assert_eq!(report.nodes[0].node, "0");
        assert_eq!(report.nodes[0].ios, 3);
        assert_eq!(report.nodes[0].bytes, 100);
        assert_eq!(report.nodes[1].node, "2");
        assert_eq!(report.nodes[2].node, "10");
    }

    #[test]
    fn durability_section_collects_and_displays() {
        let r = Registry::new();
        r.counter(names::TECTONIC_CHECKSUM_FAILURES_TOTAL, &[])
            .add(2);
        r.counter(names::TECTONIC_READ_REPAIRS_TOTAL, &[]).add(2);
        r.counter(names::TECTONIC_FAILOVERS_TOTAL, &[]).add(5);
        r.counter(names::TECTONIC_REBUILT_CHUNKS_TOTAL, &[]).add(7);
        r.counter(names::TECTONIC_REBUILD_IOS_TOTAL, &[]).add(28);
        r.gauge(names::TECTONIC_DEAD_NODES, &[]).set(1.0);
        r.gauge(names::TECTONIC_UNDER_REPLICATED_CHUNKS, &[])
            .set(3.0);
        let report = PipelineReport::collect(&r);
        assert_eq!(report.tectonic_checksum_failures, 2);
        assert_eq!(report.tectonic_read_repairs, 2);
        assert_eq!(report.tectonic_failovers, 5);
        assert_eq!(report.tectonic_rebuilt_chunks, 7);
        assert_eq!(report.tectonic_rebuild_ios, 28);
        assert_eq!(report.tectonic_dead_nodes, 1);
        assert_eq!(report.tectonic_under_replicated, 3);
        assert!(report.durability_active());
        let text = report.to_string();
        assert!(text.contains("-- storage durability --"));
        assert!(text.contains("read repairs: 2"));
        assert!(text.contains("dead nodes: 1  under-replicated: 3"));

        // Healthy runs print no durability section.
        let healthy = PipelineReport::collect(&Registry::new());
        assert!(!healthy.durability_active());
        assert!(!healthy.to_string().contains("storage durability"));
    }

    #[test]
    fn dedup_section_collects_and_displays() {
        let r = Registry::new();
        r.counter(names::DEDUP_SETS_TOTAL, &[]).add(4);
        r.counter(names::DEDUP_ROWS_TOTAL, &[]).add(16);
        r.counter(names::DEDUP_BYTES_SAVED_TOTAL, &[]).add(2048);
        r.counter(names::DEDUP_TRANSFORM_REUSE_HITS_TOTAL, &[])
            .add(12);
        r.gauge(names::DEDUP_RATIO, &[]).set(4.0);
        let report = PipelineReport::collect(&r);
        assert_eq!(report.dedup_sets, 4);
        assert_eq!(report.dedup_rows, 16);
        assert_eq!(report.dedup_bytes_saved, 2048);
        assert_eq!(report.dedup_reuse_hits, 12);
        assert!((report.dedup_ratio - 4.0).abs() < 1e-12);
        let text = report.to_string();
        assert!(text.contains("-- dedup (RecD) --"));
        assert!(text.contains("ratio: 4.00x"));

        // Dedup-off runs print no dedup section.
        let off = PipelineReport::collect(&Registry::new()).to_string();
        assert!(!off.contains("dedup (RecD)"));
    }

    #[test]
    fn overread_ratio_handles_zero_wanted() {
        let report = PipelineReport::default();
        assert_eq!(report.overread_ratio(), 1.0);
    }

    #[test]
    fn wire_section_supersedes_analytic_tax() {
        let r = Registry::new();
        add_stage_cycles(&r, stage::EXTRACT, 400);
        add_stage_cycles(&r, stage::TLS, 100);
        r.counter(names::WIRE_FRAMES_TOTAL, &[]).add(12);
        r.counter(names::WIRE_PAYLOAD_BYTES_TOTAL, &[]).add(4096);
        r.counter(names::WIRE_TX_BYTES_TOTAL, &[]).add(2048);
        r.counter(names::WIRE_SERIALIZE_NANOS_TOTAL, &[]).add(1_000);
        r.counter(names::WIRE_ENCRYPT_NANOS_TOTAL, &[]).add(2_000);
        r.counter(names::WIRE_DESERIALIZE_NANOS_TOTAL, &[])
            .add(3_000);
        r.counter(names::WIRE_RECONNECTS_TOTAL, &[]).add(1);
        let report = PipelineReport::collect(&r);
        assert!(report.wire_active());
        assert_eq!(report.wire_frames, 12);
        assert!((report.wire_tax_seconds() - 6e-6).abs() < 1e-12);
        assert!((report.wire_compression_ratio() - 2.0).abs() < 1e-12);
        let text = report.to_string();
        assert!(text.contains("wire transport (measured datacenter tax)"));
        assert!(text.contains("datacenter tax (measured on wire)"));
        // The analytic cycle-share line is replaced, not duplicated.
        assert!(!text.contains("% of cycles"));

        // In-process runs keep the analytic line and print no wire section.
        let r2 = Registry::new();
        add_stage_cycles(&r2, stage::TLS, 100);
        let off = PipelineReport::collect(&r2).to_string();
        assert!(off.contains("% of cycles"));
        assert!(!off.contains("wire transport"));
    }

    #[test]
    fn fleet_section_collects_per_tenant_rows() {
        let r = Registry::new();
        for (job, tenant, alloc, desired, deficit, preempt) in [
            ("sess1", "t1", 3.0, 3.0, 0.0, 0u64),
            ("sess2", "t2", 1.0, 1.0, 5.0, 2u64),
        ] {
            let labels = [("job", job), ("tenant", tenant)];
            r.gauge(names::FLEET_ALLOCATED_WORKERS, &labels).set(alloc);
            r.gauge(names::FLEET_DESIRED_WORKERS, &labels).set(desired);
            r.gauge(names::FLEET_FAIR_SHARE_DEFICIT, &labels)
                .set(deficit);
            r.counter(names::FLEET_PREEMPTIONS_TOTAL, &labels)
                .advance_to(preempt);
        }
        r.histogram(names::FLEET_RECONCILE_SECONDS, &[]).record(0.5);
        r.histogram(names::FLEET_RECONCILE_SECONDS, &[])
            .record(0.25);
        let report = PipelineReport::collect(&r);
        assert_eq!(report.fleet.len(), 2);
        assert_eq!(report.fleet[0].job, "sess1");
        assert_eq!(report.fleet[0].tenant, "t1");
        assert_eq!(report.fleet[0].allocated, 3);
        assert_eq!(report.fleet[1].deficit, 5);
        assert_eq!(report.fleet[1].preemptions, 2);
        assert_eq!(report.fleet_preemptions(), 2);
        assert_eq!(report.fleet_reconciles, 2);
        assert!((report.fleet_reconcile_seconds - 0.75).abs() < 1e-12);
        let text = report.to_string();
        assert!(text.contains("fleet control plane (multi-tenant)"));
        assert!(text.contains("tenant t2"));

        // Single-session runs with no reconciler print no fleet section.
        let off = PipelineReport::collect(&Registry::new()).to_string();
        assert!(!off.contains("fleet control plane"));
    }

    #[test]
    fn labeled_series_accumulate_across_jobs() {
        // Two sessions sharing one registry publish job-labeled worker and
        // wire counters; the report sums them instead of keeping whichever
        // series iterated last.
        let r = Registry::new();
        for (job, samples, frames) in [("sess1", 100u64, 7u64), ("sess2", 40, 5)] {
            let labels = [("job", job)];
            r.counter(names::WORKER_SAMPLES_TOTAL, &labels)
                .advance_to(samples);
            r.counter(names::WIRE_FRAMES_TOTAL, &labels)
                .advance_to(frames);
        }
        let report = PipelineReport::collect(&r);
        assert_eq!(report.worker_samples, 140);
        assert_eq!(report.wire_frames, 12);
    }

    #[test]
    fn display_includes_headline_numbers() {
        let r = Registry::new();
        observe_stage_seconds(&r, stage::EXTRACT, 1.5);
        r.counter(names::CACHE_HITS_TOTAL, &[]).add(9);
        r.counter(names::CACHE_MISSES_TOTAL, &[]).add(1);
        r.gauge(names::CACHE_HIT_RATE, &[]).set(0.9);
        r.counter(names::STORAGE_NODE_IOS_TOTAL, &[("node", "n0")])
            .add(17);
        r.gauge(names::TRAINER_STALL_FRACTION, &[]).set(0.25);
        let text = PipelineReport::collect(&r).to_string();
        assert!(text.contains("== DSI pipeline characterization =="));
        assert!(text.contains("extract"));
        assert!(text.contains("hit rate 90.0%"));
        assert!(text.contains("data-stall fraction: 25.0%"));
        assert!(text.contains("node n0"));
    }
}
