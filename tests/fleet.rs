//! Multi-tenant fleet control-plane integration: several training jobs
//! (distinct tenants, distinct priorities) share one worker fleet under
//! the reconciler, and every job must still deliver its epoch exactly
//! once with batches bitwise-identical to a solo run over the same data.
//!
//! The suite covers the four control-plane guarantees:
//!
//! 1. concurrent tenants converge to their fair shares and all complete
//!    (exactly-once + bitwise vs solo),
//! 2. a high-priority job submitted mid-run preempts lower-priority
//!    workers through the graceful-drain protocol — and the preempted
//!    jobs still finish,
//! 3. a fault storm targeted at one tenant never breaks another
//!    tenant's invariants (cross-job blast-radius isolation),
//! 4. reconciliation is idempotent: a converged fleet plans nothing,
//!    before and after a preemption episode (no oscillation).

use dsi::chaos::{with_watchdog, EpochTrace, FaultEvent};
use dsi::obs::names as obs_names;
use dsi::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

const ROWS_PER_DAY: u64 = 64;
const ROWS_PER_STRIPE: usize = 16;
const WATCHDOG: Duration = Duration::from_secs(120);

/// A deterministic table of `days` partitions; row contents depend only
/// on the row id, so any two runs over it are bitwise-comparable.
fn build_table(table_id: u64, days: u32) -> Table {
    let cluster = TectonicCluster::new(ClusterConfig::small());
    let opts = dwrf::WriterOptions {
        rows_per_stripe: ROWS_PER_STRIPE,
        ..Default::default()
    };
    let table = Table::create(
        cluster,
        TableConfig::new(TableId(table_id), "fleet").with_writer_options(opts),
    )
    .unwrap();
    for day in 0..days {
        let samples: Vec<Sample> = (0..ROWS_PER_DAY)
            .map(|i| {
                let row = day as u64 * ROWS_PER_DAY + i;
                let mut s = Sample::new(row as f32);
                s.set_dense(FeatureId(1), (row * 3) as f32);
                s.set_sparse(FeatureId(2), SparseList::from_ids(vec![row % 13, row % 7]));
                s
            })
            .collect();
        table
            .write_partition(PartitionId::new(day), samples)
            .unwrap();
    }
    table
}

fn session_spec(id: u64, days: u32, transport: Transport) -> SessionSpec {
    SessionSpec::builder(SessionId(id))
        .partitions(PartitionId::new(0)..PartitionId::new(days))
        .projection(Projection::new(vec![FeatureId(1), FeatureId(2)]))
        .batch_size(ROWS_PER_STRIPE)
        .dense_ids(vec![FeatureId(1)])
        .sparse_ids(vec![FeatureId(2)])
        .buffer_capacity(4)
        .transport(transport)
        .build()
}

/// Fault-free solo run of `spec` over `table`: the bitwise baseline.
fn solo_trace(table: &Table, spec: &SessionSpec) -> EpochTrace {
    let session = DppSession::launch(table.clone(), spec.clone(), 2).unwrap();
    let mut client = session.client();
    let mut trace = EpochTrace::new();
    while let Some(tensor) = client.next_batch() {
        trace.push(&tensor);
    }
    assert!(session.is_complete());
    session.shutdown();
    trace
}

/// Drives the fleet until every listed job completes: one reconcile tick
/// per loop iteration, draining each job's client in between. Returns the
/// per-job tensor traces and every action the reconciler executed.
fn drive_to_completion(
    driver: &FleetDriver,
    jobs: &[SessionId],
) -> (HashMap<SessionId, EpochTrace>, Vec<FleetAction>) {
    let mut clients: Vec<(SessionId, Client)> = jobs
        .iter()
        .map(|&id| (id, driver.client(id).expect("job submitted")))
        .collect();
    let mut traces: HashMap<SessionId, EpochTrace> =
        jobs.iter().map(|&id| (id, EpochTrace::new())).collect();
    let mut actions = Vec::new();
    let mut idle = 0u32;
    loop {
        actions.extend(driver.tick());
        let mut progressed = false;
        for (id, client) in clients.iter_mut() {
            while let Some(tensor) = client.try_next_batch() {
                traces.get_mut(id).unwrap().push(&tensor);
                progressed = true;
            }
        }
        if jobs.iter().all(|&id| driver.is_complete(id)) {
            break;
        }
        if progressed {
            idle = 0;
        } else {
            idle += 1;
            assert!(idle < 2_000, "fleet made no progress for 10s");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    actions.extend(driver.tick()); // publish final statuses
    (traces, actions)
}

#[test]
fn three_tenants_share_one_fleet_exactly_once_and_bitwise() {
    with_watchdog(WATCHDOG, "three tenants on one fleet".into(), || {
        const DAYS: u32 = 3;
        let table = build_table(1, DAYS);
        let reg = Registry::new();
        let driver = FleetDriver::new(FleetConfig {
            nodes: 2,
            slots_per_node: 3,
        });
        driver.attach_registry(&reg);

        // Distinct tenants, distinct priorities, shared 6-slot fleet.
        let jobs = [(1u64, 1u32), (2, 2), (3, 3)];
        for &(id, priority) in &jobs {
            let spec = JobSpec::new(
                session_spec(id, DAYS, Transport::InProcess),
                TenantId(id),
                priority,
                1,
                4,
            );
            driver.submit(spec, table.clone()).unwrap();
        }
        let ids: Vec<SessionId> = jobs.iter().map(|&(id, _)| SessionId(id)).collect();
        let (traces, _) = drive_to_completion(&driver, &ids);

        // Every job completed exactly once, bitwise-identical to a solo
        // run of the same spec over the same table.
        let rows_per_job = DAYS as usize * ROWS_PER_DAY as usize;
        for &id in &ids {
            let status = driver.registry().status(id).unwrap();
            assert_eq!(status.phase, JobPhase::Completed, "job {id}");
            let solo = solo_trace(&table, &session_spec(id.0, DAYS, Transport::InProcess));
            let fleet_trace = &traces[&id];
            assert_eq!(fleet_trace.samples(), rows_per_job, "job {id}");
            assert_eq!(
                fleet_trace.sorted(),
                solo.sorted(),
                "job {id} diverged from its solo run"
            );
        }

        // Per-tenant observability: shutting the sessions down publishes
        // the merged worker reports under each job's label; no tenant's
        // series collides with another's.
        for &id in &ids {
            driver.remove(id).unwrap().shutdown();
        }
        for &id in &ids {
            let job = id.to_string();
            assert_eq!(
                reg.counter_value(obs_names::WORKER_SAMPLES_TOTAL, &[("job", job.as_str())]),
                rows_per_job as u64,
                "job {id} worker samples"
            );
        }
        let report = PipelineReport::collect(&reg);
        assert_eq!(report.fleet.len(), 3, "one fleet row per tenant");
        assert_eq!(report.worker_samples, 3 * rows_per_job as u64);
        assert!(report.fleet_reconciles > 0);
        let text = report.to_string();
        assert!(text.contains("fleet control plane (multi-tenant)"));
    });
}

#[test]
fn high_priority_submission_preempts_lower_priority_workers() {
    with_watchdog(WATCHDOG, "mid-run preemption".into(), || {
        const DAYS: u32 = 6; // 24 splits/job: plenty of epoch left mid-run
        let table = build_table(1, DAYS);
        let driver = FleetDriver::new(FleetConfig {
            nodes: 2,
            slots_per_node: 3,
        });

        // Two equal low-priority jobs converge to 3 + 3 on the 6-slot fleet.
        for id in [1u64, 2] {
            let spec = JobSpec::new(
                session_spec(id, DAYS, Transport::InProcess),
                TenantId(id),
                1,
                1,
                6,
            );
            driver.submit(spec, table.clone()).unwrap();
        }
        driver.tick(); // cold start: spawn to targets
        let settle = driver.tick(); // observe the spawned fleet
        assert!(settle.is_empty(), "converged fleet re-planned: {settle:?}");
        for id in [1u64, 2] {
            let status = driver.registry().status(SessionId(id)).unwrap();
            assert_eq!(status.allocated_workers, 3, "job {id} fair share");
        }

        // Consume a little of each epoch so preemption lands mid-run.
        let mut a = driver.client(SessionId(1)).unwrap();
        let mut b = driver.client(SessionId(2)).unwrap();
        let mut trace_a = EpochTrace::new();
        let mut trace_b = EpochTrace::new();
        for _ in 0..4 {
            trace_a.push(&a.next_batch_deadline(Duration::from_secs(5)).unwrap());
            trace_b.push(&b.next_batch_deadline(Duration::from_secs(5)).unwrap());
        }

        // A high-priority job arrives: weighted fair share drops both
        // low-priority jobs to their floors (1 each) and gives it 4.
        let spec_c = JobSpec::new(
            session_spec(3, DAYS, Transport::InProcess),
            TenantId(3),
            4,
            2,
            4,
        );
        driver.submit(spec_c, table.clone()).unwrap();
        let actions = driver.tick();
        let preempted: usize = actions
            .iter()
            .filter_map(|action| match action {
                FleetAction::Preempt {
                    victim,
                    beneficiary,
                    count,
                } => {
                    assert_eq!(*beneficiary, SessionId(3));
                    assert!(
                        *victim == SessionId(1) || *victim == SessionId(2),
                        "only low-priority jobs may be preempted, got {victim}"
                    );
                    Some(*count)
                }
                _ => None,
            })
            .sum();
        assert_eq!(
            preempted, 4,
            "4 slots preempted for the arrival: {actions:?}"
        );

        // Drive everyone to completion; the preempted jobs still finish.
        let ids = [SessionId(1), SessionId(2), SessionId(3)];
        let mut c = driver.client(SessionId(3)).unwrap();
        let mut trace_c = EpochTrace::new();
        let mut idle = 0u32;
        loop {
            driver.tick();
            let mut progressed = false;
            for (client, trace) in [
                (&mut a, &mut trace_a),
                (&mut b, &mut trace_b),
                (&mut c, &mut trace_c),
            ] {
                while let Some(tensor) = client.try_next_batch() {
                    trace.push(&tensor);
                    progressed = true;
                }
            }
            if ids.iter().all(|&id| driver.is_complete(id)) {
                break;
            }
            if progressed {
                idle = 0;
            } else {
                idle += 1;
                assert!(idle < 2_000, "fleet made no progress for 10s");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        driver.tick();

        let rows_per_job = DAYS as usize * ROWS_PER_DAY as usize;
        for (id, trace) in [(1u64, &trace_a), (2, &trace_b), (3, &trace_c)] {
            assert_eq!(trace.samples(), rows_per_job, "job sess{id}");
            let solo = solo_trace(&table, &session_spec(id, DAYS, Transport::InProcess));
            assert_eq!(trace.sorted(), solo.sorted(), "job sess{id} bitwise");
        }
        let preemptions: u64 = [1u64, 2]
            .iter()
            .map(|&id| driver.registry().status(SessionId(id)).unwrap().preemptions)
            .sum();
        assert_eq!(preemptions, 4, "status ledger records the preemptions");
        assert_eq!(
            driver.registry().status(SessionId(3)).unwrap().preemptions,
            0,
            "the high-priority job was never a victim"
        );
    });
}

#[test]
fn tenant_a_fault_storm_leaves_tenant_b_untouched() {
    with_watchdog(WATCHDOG, "cross-tenant blast radius".into(), || {
        const DAYS: u32 = 3;
        let table = build_table(1, DAYS);
        let reg = Registry::new();
        let driver = FleetDriver::new(FleetConfig {
            nodes: 2,
            slots_per_node: 2,
        });
        driver.attach_registry(&reg);

        // A dense, finite storm aimed at tenant A only: every 2nd split
        // kills A's worker, every 3rd wire frame drops A's connection.
        // All faults are data-preserving, so even A must stay exactly-once.
        let mut events = Vec::new();
        for nth in (2..=24).step_by(2) {
            events.push(FaultEvent::new(
                HookPoint::WorkerSplit,
                nth,
                FaultKind::WorkerCrash,
            ));
        }
        for nth in (3..=36).step_by(3) {
            events.push(FaultEvent::new(
                HookPoint::WireFrame,
                nth,
                FaultKind::ConnDrop,
            ));
        }
        let injector = FaultInjector::new(FaultPlan::named(events));
        injector.attach_registry(reg.clone());

        let tcp = Transport::Tcp(WireConfig::plaintext());
        let spec_a = JobSpec::new(session_spec(1, DAYS, tcp), TenantId(1), 2, 1, 2);
        let spec_b = JobSpec::new(session_spec(2, DAYS, tcp), TenantId(2), 2, 1, 2);
        driver
            .submit_with_chaos(spec_a, table.clone(), Some(Arc::clone(&injector)))
            .unwrap();
        driver.submit(spec_b, table.clone()).unwrap();

        let ids = [SessionId(1), SessionId(2)];
        let (traces, _) = drive_to_completion(&driver, &ids);
        assert!(injector.injected_count() > 0, "the storm actually fired");

        // Tenant B: bitwise-identical to its solo run, zero reconnects.
        let solo_b = solo_trace(&table, &session_spec(2, DAYS, tcp));
        assert_eq!(
            traces[&SessionId(2)].sorted(),
            solo_b.sorted(),
            "tenant B diverged under tenant A's storm"
        );
        assert_eq!(
            reg.counter_value(obs_names::WIRE_RECONNECTS_TOTAL, &[("job", "sess2")]),
            0,
            "tenant B saw connection churn"
        );

        // Tenant A survived its own storm exactly-once (labels are the
        // row ids: every row delivered, none twice).
        let rows_per_job = DAYS as usize * ROWS_PER_DAY as usize;
        assert_eq!(traces[&SessionId(1)].samples(), rows_per_job);
        let solo_a = solo_trace(&table, &session_spec(1, DAYS, tcp));
        assert_eq!(
            traces[&SessionId(1)].sorted(),
            solo_a.sorted(),
            "tenant A lost exactly-once under its storm"
        );
    });
}

#[test]
fn reconciler_converges_and_does_not_oscillate() {
    with_watchdog(WATCHDOG, "reconciler idempotence".into(), || {
        const DAYS: u32 = 3;
        let table = build_table(1, DAYS);
        let driver = FleetDriver::new(FleetConfig {
            nodes: 2,
            slots_per_node: 2,
        });
        // Nothing consumes the clients, so workers fill their buffers and
        // park: the observed world is frozen between ticks.
        for id in [1u64, 2] {
            let spec = JobSpec::new(
                session_spec(id, DAYS, Transport::InProcess),
                TenantId(id),
                1,
                1,
                6,
            );
            driver.submit(spec, table.clone()).unwrap();
        }
        let cold = driver.tick();
        assert_eq!(
            cold.iter()
                .filter(|a| matches!(a, FleetAction::Spawn { .. }))
                .count(),
            4,
            "cold start fills the fleet: {cold:?}"
        );
        for round in 0..5 {
            let actions = driver.tick();
            assert!(
                actions.is_empty(),
                "converged fleet re-planned on tick {round}: {actions:?}"
            );
        }

        // A heavier job arrives; one preemption episode, then stillness.
        let spec_c = JobSpec::new(
            session_spec(3, DAYS, Transport::InProcess),
            TenantId(3),
            5,
            0,
            4,
        );
        driver.submit(spec_c, table.clone()).unwrap();
        let episode = driver.tick();
        assert!(
            episode
                .iter()
                .any(|a| matches!(a, FleetAction::Preempt { .. })),
            "arrival should preempt: {episode:?}"
        );
        for round in 0..5 {
            let actions = driver.tick();
            assert!(
                actions.is_empty(),
                "post-preemption fleet re-planned on tick {round}: {actions:?}"
            );
        }

        // In-flight drains are never re-drained: the victims show as
        // draining (they hold undelivered batches), not as surplus.
        let seen: HashSet<&'static str> = episode.iter().map(|a| a.kind()).collect();
        assert!(seen.contains("preempt"));
        for id in [1u64, 2, 3] {
            driver.remove(SessionId(id)).unwrap().shutdown();
        }
    });
}

#[test]
fn autotuned_job_delivers_exactly_once_and_tuner_steers_demand() {
    with_watchdog(
        WATCHDOG,
        "autotuned job under the reconciler".into(),
        || {
            const DAYS: u32 = 3;
            let table = build_table(1, DAYS);
            let reg = Registry::new();
            let driver = FleetDriver::new(FleetConfig {
                nodes: 2,
                slots_per_node: 3,
            });
            driver.attach_registry(&reg);

            // One autotuned job next to one statically-scaled neighbor: the
            // tuner's demand still goes through fair-share arbitration.
            for id in [1u64, 2] {
                let spec = JobSpec::new(
                    session_spec(id, DAYS, Transport::InProcess),
                    TenantId(id),
                    1,
                    1,
                    4,
                );
                driver.submit(spec, table.clone()).unwrap();
            }
            let tuned = SessionId(1);
            let policy = OnlineTuner::new(TunerConfig {
                bounds: KnobBounds {
                    workers: (1, 4),
                    read_ahead: (0, 2),
                    // Mid-run batch changes would alter the delivered tensor
                    // shapes; exactly-once bitwise comparison requires the
                    // batch axis frozen (see the chaos suite).
                    batch_size: (ROWS_PER_STRIPE, ROWS_PER_STRIPE),
                    parallelism: (1, 1),
                },
                ..TunerConfig::default()
            });
            assert!(driver.enable_autotune(tuned, Box::new(policy)));
            assert!(
                !driver.enable_autotune(SessionId(99), Box::new(AutoScaler::default())),
                "unknown job refuses a tuner"
            );

            let ids = [tuned, SessionId(2)];
            let (traces, _) = drive_to_completion(&driver, &ids);

            // The tuner held demand inside both its own and the spec's fences.
            let knobs = driver.autotuned_knobs(tuned).expect("tuner installed");
            assert!((1..=4).contains(&knobs.workers), "{knobs:?}");
            assert_eq!(knobs.batch_size, ROWS_PER_STRIPE, "frozen axis held");

            // Both tenants delivered exactly once, bitwise vs their solo runs.
            let rows_per_job = DAYS as usize * ROWS_PER_DAY as usize;
            for &id in &ids {
                let solo = solo_trace(&table, &session_spec(id.0, DAYS, Transport::InProcess));
                assert_eq!(traces[&id].samples(), rows_per_job, "job {id}");
                assert_eq!(
                    traces[&id].sorted(),
                    solo.sorted(),
                    "job {id} diverged from its solo run"
                );
            }
            for &id in &ids {
                driver.remove(id).unwrap().shutdown();
            }
        },
    );
}
