//! dsi-tune: closed-loop online tuning for the DPP data pipeline.
//!
//! The paper's DPP auto-scales one resource — worker count — with a
//! fixed-rule watermark controller (§III-B1). This crate generalizes
//! that into InTune-style joint tuning (ROADMAP item 4): a
//! [`TunerPolicy`](dpp::TunerPolicy) reads the live `dsi-obs` signal
//! stream (trainer stall fraction, client fetch tail + starvation,
//! fastpath pool health, per-stage span seconds) and moves *all* the
//! pipeline knobs — workers, read-ahead depth, batch size, per-stage
//! parallelism — under guarded exploration that never crosses hard
//! bounds and reverts moves that fail to pay off.
//!
//! Three layers:
//!
//! - [`policy`]: the [`OnlineTuner`] bandit/hill-climbing policy.
//! - [`sim`]: deterministic virtual-time pipeline scenarios
//!   (extract-bound, transform-bound, trainer-bound, diurnal) on which
//!   the tuner and the static scaler compete for the bench suite.
//! - [`live`]: [`LiveTuner`], the actuation adapter that applies a
//!   policy's decisions to a running [`DppSession`](dpp::DppSession).

#![warn(missing_docs)]

pub mod live;
pub mod policy;
pub mod sim;

pub use live::{KnobDelta, LiveTuner};
pub use policy::{OnlineTuner, TunerConfig};
pub use sim::{run_scenario, Scenario, TunePoint, TuneTrace};
