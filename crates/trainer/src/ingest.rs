//! Dedup-aware trainer ingestion accounting.
//!
//! When DPP ships RecD-deduplicated batches, sparse rows shared within a
//! session arrive once — duplicate rows are 4-byte back-references — so the
//! trainer's datacenter tax (Fig. 8) is paid on the deduped wire volume,
//! and embedding-table lookups for duplicate rows reuse the canonical row's
//! fetched indices instead of re-reading HBM. This module accounts for both
//! effects on top of the regular [`crate::loading`] model; the tensors the
//! model consumes are still the full, expanded batches (training math is
//! unchanged — asserted bit-identical by the pipeline integration tests).

use dsi_types::MiniBatchTensor;
use hwsim::{DatacenterTax, ResourceVector};
use serde::{Deserialize, Serialize};

/// Cumulative shared-tensor accounting for a dedup-aware trainer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DedupIngest {
    /// Batches accepted.
    pub batches: u64,
    /// Logical rows accepted (what the model trains on).
    pub rows: u64,
    /// Rows carrying their own sparse payload (canonical rows).
    pub canonical_rows: u64,
    /// Bytes actually crossing the wire (deduped encoding).
    pub wire_bytes: u64,
    /// Bytes the expanded tensors occupy (what a dedup-off run ships).
    pub full_bytes: u64,
    /// Embedding-lookup input rows served by the canonical row's sparse
    /// ids instead of a fresh tensor row (one per duplicate row per
    /// sparse tensor).
    pub lookup_reuse_hits: u64,
}

impl DedupIngest {
    /// Accepts one batch, detecting shared sparse rows and accumulating
    /// wire/lookup savings.
    pub fn accept(&mut self, tensor: &MiniBatchTensor) {
        let refs = dedup::shared_row_refs(tensor);
        let canonicals = refs
            .iter()
            .enumerate()
            .filter(|&(r, &rf)| rf as usize == r)
            .count() as u64;
        let rows = tensor.batch_size() as u64;
        self.batches += 1;
        self.rows += rows;
        self.canonical_rows += canonicals;
        self.wire_bytes += dedup::deduped_tensor_bytes(tensor, &refs) as u64;
        self.full_bytes += tensor.payload_bytes() as u64;
        self.lookup_reuse_hits += (rows - canonicals) * tensor.sparse.len() as u64;
    }

    /// Wire bytes the shared-row encoding avoided shipping.
    pub fn bytes_saved(&self) -> u64 {
        self.full_bytes.saturating_sub(self.wire_bytes)
    }

    /// Observed logical rows per canonical sparse row.
    pub fn ratio(&self) -> f64 {
        if self.canonical_rows == 0 {
            return 1.0;
        }
        self.rows as f64 / self.canonical_rows as f64
    }

    /// Mean per-sample host loading demand at the deduped wire volume —
    /// drop-in for [`crate::loading::loading_cost`] times the full byte
    /// rate in Fig. 8 sweeps.
    pub fn per_sample_loading_demand(&self, tax: &DatacenterTax) -> ResourceVector {
        if self.rows == 0 {
            return ResourceVector::default();
        }
        tax.rx_cost(self.wire_bytes as f64 / self.rows as f64)
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &DedupIngest) {
        self.batches += other.batches;
        self.rows += other.rows;
        self.canonical_rows += other.canonical_rows;
        self.wire_bytes += other.wire_bytes;
        self.full_bytes += other.full_bytes;
        self.lookup_reuse_hits += other.lookup_reuse_hits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_types::{Batch, FeatureId, Sample, SparseList};

    fn sessionized_batch(sessions: usize, members: usize) -> MiniBatchTensor {
        let samples: Vec<Sample> = (0..sessions * members)
            .map(|i| {
                let session = (i / members) as u64;
                let mut s = Sample::new(i as f32);
                s.set_dense(FeatureId(1), i as f32 * 0.5);
                s.set_sparse(
                    FeatureId(2),
                    SparseList::from_ids((0..16).map(|k| session * 100 + k).collect()),
                );
                s
            })
            .collect();
        Batch::from_samples(samples).materialize(&[FeatureId(1)], &[FeatureId(2)])
    }

    #[test]
    fn shared_rows_cut_wire_bytes_and_lookups() {
        let mut ingest = DedupIngest::default();
        ingest.accept(&sessionized_batch(4, 8));
        assert_eq!(ingest.rows, 32);
        assert_eq!(ingest.canonical_rows, 4);
        assert_eq!(ingest.lookup_reuse_hits, 28);
        assert!((ingest.ratio() - 8.0).abs() < 1e-9);
        assert!(
            ingest.wire_bytes * 2 < ingest.full_bytes,
            "wire {} vs full {}",
            ingest.wire_bytes,
            ingest.full_bytes
        );
        let tax = DatacenterTax::production();
        let deduped = ingest.per_sample_loading_demand(&tax);
        let full = tax.rx_cost(ingest.full_bytes as f64 / ingest.rows as f64);
        assert!(deduped.cpu_cycles < full.cpu_cycles);
        assert!(deduped.nic_rx_bytes < full.nic_rx_bytes);
    }

    #[test]
    fn unduplicated_batches_pay_full_cost() {
        let mut ingest = DedupIngest::default();
        ingest.accept(&sessionized_batch(8, 1));
        assert_eq!(ingest.rows, ingest.canonical_rows);
        assert_eq!(ingest.lookup_reuse_hits, 0);
        assert_eq!(ingest.bytes_saved(), 0);
        assert_eq!(ingest.ratio(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DedupIngest::default();
        a.accept(&sessionized_batch(2, 4));
        let mut b = DedupIngest::default();
        b.accept(&sessionized_batch(1, 4));
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.batches, 2);
        assert_eq!(merged.rows, 12);
        assert_eq!(merged.canonical_rows, 3);
    }
}
