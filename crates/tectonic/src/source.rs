//! Adapter letting DWRF readers fetch file bytes through the cluster.

use crate::cluster::TectonicCluster;
use dsi_types::Result;
use dwrf::{ChunkSource, SourceChunk};

/// Trace attachment for a chunk source: each `read` records a
/// `TectonicIo` span under the parent (storage-read) context.
#[derive(Debug, Clone)]
pub(crate) struct SourceTrace {
    registry: dsi_obs::Registry,
    ctx: dsi_obs::TraceContext,
    split: u64,
}

impl SourceTrace {
    pub(crate) fn attach(
        registry: &dsi_obs::Registry,
        ctx: dsi_obs::TraceContext,
        split: u64,
    ) -> Option<Self> {
        ctx.is_sampled().then(|| Self {
            registry: registry.clone(),
            ctx,
            split,
        })
    }

    pub(crate) fn record_io(&self, start_ns: u64) {
        self.registry.record_span(dsi_obs::TraceSpan {
            trace_id: self.ctx.trace_id,
            span_id: dsi_obs::next_span_id(),
            parent_id: self.ctx.span_id,
            kind: dsi_obs::SpanKind::TectonicIo,
            start_ns,
            end_ns: dsi_obs::now_ns(),
            split: self.split,
            worker: 0,
            seq: 0,
            flags: 0,
        });
    }
}

/// A [`ChunkSource`] that reads one Tectonic file, charging simulated IO on
/// the storage nodes that serve it.
#[derive(Debug, Clone)]
pub struct TectonicSource {
    cluster: TectonicCluster,
    path: String,
    trace: Option<SourceTrace>,
}

impl TectonicSource {
    /// Creates a source over `path` in `cluster`.
    pub fn new(cluster: TectonicCluster, path: impl Into<String>) -> Self {
        Self {
            cluster,
            path: path.into(),
            trace: None,
        }
    }

    /// Attaches a trace context: every chunk read then records a
    /// `TectonicIo` span under `ctx` (no-op when `ctx` is unsampled).
    pub fn with_trace(
        mut self,
        registry: &dsi_obs::Registry,
        ctx: dsi_obs::TraceContext,
        split: u64,
    ) -> Self {
        self.trace = SourceTrace::attach(registry, ctx, split);
        self
    }

    /// The file path this source reads.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl ChunkSource for TectonicSource {
    fn read(&mut self, offset: u64, len: u64) -> Result<SourceChunk> {
        let start_ns = dsi_obs::now_ns();
        let chunk = self.cluster.read_view(&self.path, offset, len)?;
        if let Some(trace) = &self.trace {
            trace.record_io(start_ns);
        }
        Ok(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use dsi_types::{FeatureId, Projection, Sample, SparseList};
    use dwrf::{CoalescePolicy, FileReader, FileWriter, WriterOptions};

    #[test]
    fn dwrf_reads_through_tectonic() {
        // Write a DWRF file, store it in Tectonic, read it back through the
        // cluster with a projection, and confirm IO telemetry accrued.
        let mut w = FileWriter::new(WriterOptions::default());
        for i in 0..50u64 {
            let mut s = Sample::new(i as f32);
            s.set_dense(FeatureId(1), i as f32);
            s.set_sparse(FeatureId(2), SparseList::from_ids(vec![i]));
            w.push(s);
        }
        let file = w.finish().unwrap();

        let cluster = TectonicCluster::new(ClusterConfig::small());
        cluster.append("tbl/p0/f0", file.bytes().clone()).unwrap();

        let reader = FileReader::from_footer(file.footer().clone());
        let mut src = TectonicSource::new(cluster.clone(), "tbl/p0/f0");
        let proj = Projection::new(vec![FeatureId(2)]);
        let (rows, plan) = reader
            .read_stripe_from(0, Some(&proj), CoalescePolicy::default_window(), &mut src)
            .unwrap();
        assert_eq!(rows.len(), 50);
        assert_eq!(rows[7].sparse(FeatureId(2)).unwrap().ids(), &[7]);
        assert!(rows[7].dense(FeatureId(1)).is_none());
        assert!(plan.wanted_bytes > 0);
        let stats = cluster.total_stats();
        assert!(stats.bytes >= plan.read_bytes);
        assert!(stats.busy_ns > 0);
    }

    #[test]
    fn traced_reads_record_tectonic_io_spans() {
        let mut w = FileWriter::new(WriterOptions::default());
        for i in 0..30u64 {
            let mut s = Sample::new(i as f32);
            s.set_dense(FeatureId(1), i as f32);
            w.push(s);
        }
        let file = w.finish().unwrap();
        let cluster = TectonicCluster::new(ClusterConfig::small());
        cluster.append("tbl/p0/t", file.bytes().clone()).unwrap();

        let reg = dsi_obs::Registry::new();
        let ctx = dsi_obs::TraceContext {
            trace_id: 0xBEEF,
            span_id: 42,
        };
        let reader = FileReader::from_footer(file.footer().clone());
        let mut src = TectonicSource::new(cluster, "tbl/p0/t").with_trace(&reg, ctx, 3);
        let proj = Projection::new(vec![FeatureId(1)]);
        reader
            .read_stripe_from(0, Some(&proj), CoalescePolicy::default_window(), &mut src)
            .unwrap();
        let spans = reg.trace_spans();
        assert!(!spans.is_empty(), "every chunk read records a span");
        for s in &spans {
            assert_eq!(s.kind, dsi_obs::SpanKind::TectonicIo);
            assert_eq!(s.trace_id, 0xBEEF);
            assert_eq!(s.parent_id, 42);
            assert_eq!(s.split, 3);
        }

        // Unsampled context: no spans recorded.
        let reg2 = dsi_obs::Registry::new();
        let src2 = TectonicSource::new(
            crate::cluster::TectonicCluster::new(ClusterConfig::small()),
            "x",
        )
        .with_trace(&reg2, dsi_obs::TraceContext::NONE, 0);
        assert!(src2.trace.is_none());
    }

    #[test]
    fn path_accessor() {
        let cluster = TectonicCluster::new(ClusterConfig::small());
        let src = TectonicSource::new(cluster, "a/b");
        assert_eq!(src.path(), "a/b");
    }
}
