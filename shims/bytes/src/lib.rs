//! Offline shim of the `bytes` crate.
//!
//! This workspace vendors minimal, dependency-free stand-ins for the
//! handful of external crates it uses, because the build environment has
//! no network access to a registry. Only the API surface the workspace
//! actually exercises is provided: [`Bytes`] as an `Arc`-backed,
//! zero-copy-sliceable immutable byte container.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer with zero-copy slicing.
///
/// Clones share one allocation; [`Bytes::slice`] returns a view over the
/// same allocation with adjusted bounds, matching the semantics of the
/// real `bytes::Bytes` for the operations this workspace uses.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view. Panics if the range is out of bounds, like
    /// the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(begin <= end, "slice {begin}..{end} inverted");
        assert!(end <= len, "slice {begin}..{end} out of bounds of {len}");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the view out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.len() > 32 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_is_zero_copy_and_bounded() {
        let b = Bytes::from((0u8..100).collect::<Vec<u8>>());
        let s = b.slice(10..20);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 10);
        let ss = s.slice(5..);
        assert_eq!(ss.as_slice(), &[15, 16, 17, 18, 19]);
        assert_eq!(b.len(), 100);
    }

    #[test]
    fn clones_share_and_compare_by_content() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(0..4);
    }
}
