//! Per-model DSI provisioning and power roll-ups (Fig. 1).
//!
//! Fig. 1 shows the headline result: for some production models, the
//! storage and preprocessing legs of the DSI pipeline consume **more power
//! than the GPU trainers themselves**. This module derives that breakdown
//! from first principles: trainer count → tensor demand → DPP workers
//! (Table IX) and storage nodes (IOPS-bound provisioning, §VII).

use hwsim::{PowerBreakdown, PowerModel};
use serde::{Deserialize, Serialize};
use synth::RmProfile;
use tectonic::{ProvisionPlan, StorageNodeClass};

/// Provisioned node counts and power for one model's training deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProvisioning {
    /// Model name.
    pub model: String,
    /// Trainer nodes.
    pub trainers: f64,
    /// DPP worker nodes.
    pub preproc_nodes: f64,
    /// Storage nodes.
    pub storage_nodes: f64,
    /// Throughput-to-storage gap on the storage leg.
    pub storage_gap: f64,
    /// Power breakdown.
    pub power: PowerBreakdown,
}

/// Provisions the DSI pipeline for `trainers` trainer nodes of one model.
///
/// * Preprocessing scales by Table IX's workers-per-trainer ratio.
/// * Storage must serve the fleet's aggregate *raw* read demand (tensor
///   demand amplified by the extract-side data reduction) at Table VI's
///   mean IO size, over the model's used partitions, with 3× replication.
pub fn provision_model(
    profile: &RmProfile,
    trainers: f64,
    mean_io_size: u64,
    power: &PowerModel,
) -> ModelProvisioning {
    let preproc_nodes = trainers * profile.workers_per_trainer;
    // Raw storage demand: each worker pulls `worker_storage_rx` compressed
    // bytes/s at saturation.
    let storage_demand = preproc_nodes * profile.worker_storage_rx;
    let plan = ProvisionPlan::for_workload(
        &StorageNodeClass::hdd(),
        profile.used_partitions,
        3,
        storage_demand,
        mean_io_size,
    );
    ModelProvisioning {
        model: profile.class.to_string(),
        trainers,
        preproc_nodes,
        storage_nodes: plan.nodes_provisioned,
        storage_gap: plan.throughput_to_storage_gap,
        power: power.breakdown(plan.nodes_provisioned, preproc_nodes, trainers),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_dsi_power_can_exceed_training_power() {
        let power = PowerModel::production();
        // RM3: 55 workers per trainer — DSI dominates.
        let rm3 = provision_model(&RmProfile::rm3(), 16.0, 23_200, &power);
        assert!(
            rm3.power.dsi_fraction() > 0.5,
            "RM3 DSI share {:.2}",
            rm3.power.dsi_fraction()
        );
        // RM2: ~9 workers per trainer — training dominates.
        let rm2 = provision_model(&RmProfile::rm2(), 16.0, 23_200, &power);
        assert!(
            rm2.power.dsi_fraction() < rm3.power.dsi_fraction(),
            "RM2 {:.2} vs RM3 {:.2}",
            rm2.power.dsi_fraction(),
            rm3.power.dsi_fraction()
        );
    }

    #[test]
    fn preproc_nodes_scale_with_table_ix() {
        let p = provision_model(&RmProfile::rm1(), 10.0, 23_200, &PowerModel::production());
        assert!((p.preproc_nodes - 241.6).abs() < 0.1);
    }

    #[test]
    fn storage_leg_is_iops_bound_for_rm1() {
        let p = provision_model(&RmProfile::rm1(), 64.0, 23_200, &PowerModel::production());
        assert!(
            p.storage_gap > 1.0,
            "storage should be IOPS-bound, gap {:.2}",
            p.storage_gap
        );
        assert!(p.storage_nodes > 0.0);
    }

    #[test]
    fn power_scales_linearly_with_trainers() {
        let power = PowerModel::production();
        let small = provision_model(&RmProfile::rm1(), 8.0, 23_200, &power);
        let large = provision_model(&RmProfile::rm1(), 16.0, 23_200, &power);
        assert!((large.power.preproc_w / small.power.preproc_w - 2.0).abs() < 1e-9);
        assert!((large.power.training_w / small.power.training_w - 2.0).abs() < 1e-9);
    }
}
