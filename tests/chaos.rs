//! Deterministic chaos suite: seeded fault schedules injected across
//! every pipeline layer, with invariant checkers asserting exactly-once
//! delivery and bitwise batch equality against a fault-free run.
//!
//! Every test here follows the same shape:
//!
//! 1. build a fresh world (Tectonic cluster + DWRF table, optionally an
//!    SSD cache tier),
//! 2. run one training epoch under a [`FaultPlan`] whose events fire at
//!    nth-operation points of the injector's per-hook virtual clocks,
//! 3. compare the consumed tensor-fingerprint multiset against a
//!    fault-free baseline of the *same* world, and check that the obs
//!    registry accounted for every injected fault.
//!
//! Reproduce any failure with the printed plan dump:
//!
//! ```text
//! FaultPlan { seed: 7, events: 3 }
//!   [0] hook=tectonic_read nth=20 fault=io_error
//!   ...
//! ```

use dpp::{SessionCheckpoint, SessionSpec};
use dsi::chaos::{
    check_durability, check_exactly_once, check_obs_accounting, note_injected, shrink_plan,
    with_watchdog, ChaosConfig, DurabilityStats, EpochTrace, FaultEvent, InvariantReport,
};
use dsi::prelude::*;
use dsi::types::{NodeId, WorkerId};
use std::sync::Arc;
use std::time::Duration;

const DAYS: u32 = 3;
const ROWS_PER_DAY: u64 = 64;
const TOTAL_ROWS: usize = (DAYS as usize) * (ROWS_PER_DAY as usize);
/// 16-row stripes and 16-row batches: 4 splits/partition, 12 splits,
/// one tensor per split (per-split flush), 12 tensors per epoch.
const ROWS_PER_STRIPE: usize = 16;
const TOTAL_TENSORS: usize = TOTAL_ROWS / ROWS_PER_STRIPE;
const WATCHDOG: Duration = Duration::from_secs(90);

/// A fresh storage world: cluster handle kept so node-level faults and
/// the chaos injector can reach below the table abstraction.
struct World {
    cluster: TectonicCluster,
    table: Table,
}

fn build_world() -> World {
    let cluster = TectonicCluster::new(ClusterConfig::small());
    let opts = WriterOptions {
        rows_per_stripe: ROWS_PER_STRIPE,
        ..Default::default()
    };
    let table = Table::create(
        cluster.clone(),
        TableConfig::new(TableId(1), "chaos").with_writer_options(opts),
    )
    .unwrap();
    for day in 0..DAYS {
        let samples: Vec<Sample> = (0..ROWS_PER_DAY)
            .map(|i| {
                let row = day as u64 * ROWS_PER_DAY + i;
                let mut s = Sample::new(row as f32);
                s.set_dense(FeatureId(1), (row * 3) as f32);
                s.set_sparse(FeatureId(2), SparseList::from_ids(vec![row % 13, row % 7]));
                s
            })
            .collect();
        table
            .write_partition(PartitionId::new(day), samples)
            .unwrap();
    }
    World { cluster, table }
}

#[derive(Clone, Copy)]
struct EpochOpts {
    read_ahead: usize,
    with_cache: bool,
    fastpath: bool,
    workers: usize,
    transport: Transport,
    trace: bool,
}

impl Default for EpochOpts {
    fn default() -> Self {
        Self {
            read_ahead: 0,
            with_cache: false,
            fastpath: true,
            workers: 3,
            transport: Transport::InProcess,
            trace: false,
        }
    }
}

fn chaos_spec(opts: EpochOpts) -> SessionSpec {
    SessionSpec::builder(SessionId(7))
        .partitions(PartitionId::new(0)..PartitionId::new(DAYS))
        .projection(Projection::new(vec![FeatureId(1), FeatureId(2)]))
        .batch_size(ROWS_PER_STRIPE)
        .dense_ids(vec![FeatureId(1)])
        .sparse_ids(vec![FeatureId(2)])
        .buffer_capacity(4)
        .read_ahead(opts.read_ahead)
        .fastpath(opts.fastpath)
        .transport(opts.transport)
        .trace(if opts.trace {
            TraceConfig::all()
        } else {
            TraceConfig::off()
        })
        .build()
}

/// Everything one epoch run produced, for invariant checking.
struct EpochRun {
    trace: EpochTrace,
    injector: Arc<FaultInjector>,
    registry: Registry,
    durability: DurabilityStats,
}

/// Snapshots the cluster's durability machinery into the plain-number
/// form the chaos invariant checkers consume.
fn durability_snapshot(cluster: &TectonicCluster) -> DurabilityStats {
    let d = cluster.durability();
    DurabilityStats {
        under_replicated: d.under_replicated,
        rebuild_queue_depth: d.rebuild_queue_depth,
        dead_nodes: d.dead_nodes,
        checksum_failures: d.checksum_failures,
        read_repairs: d.read_repairs,
        rebuilt_chunks: d.rebuilt_chunks,
    }
}

/// Launch with bounded retries: an IO fault scheduled early enough can
/// hit split planning, failing the launch with a typed error. The job
/// scheduler's response is to relaunch the session — the scheduled event
/// already fired (events fire at most once), so the retry proceeds.
fn launch_with_retry(
    world: &World,
    spec: &SessionSpec,
    workers: usize,
    injector: &Arc<FaultInjector>,
    from: Option<&SessionCheckpoint>,
    registry: Option<&Registry>,
) -> DppSession {
    let mut last = None;
    for _ in 0..8 {
        let attempt = match from {
            None => DppSession::launch_observed_chaos(
                world.table.clone(),
                spec.clone(),
                workers,
                registry,
                Some(Arc::clone(injector)),
            ),
            Some(ckpt) => DppSession::resume_observed_session(
                world.table.clone(),
                spec.clone(),
                ckpt,
                workers,
                registry,
                Some(Arc::clone(injector)),
            ),
        };
        match attempt {
            Ok(session) => return session,
            Err(e) => last = Some(e),
        }
    }
    panic!(
        "session launch failed after retries: {last:?}\n{}",
        injector.plan()
    );
}

/// Kills + replaces the lowest-id live worker (chaos `worker_kill`).
fn kill_one_worker(session: &DppSession) {
    for id in 0..128u64 {
        if session.crash_and_replace(WorkerId(id)).is_ok() {
            return;
        }
    }
}

/// Runs one epoch of the session under `injector`, firing harness-level
/// faults (master kill+restore, client reconnect, node failure, eviction
/// storm, worker kill) on the [`HookPoint::Harness`] virtual clock, which
/// ticks once per consumed batch on this single harness thread.
fn drive_epoch(injector: Arc<FaultInjector>, opts: EpochOpts) -> EpochRun {
    let registry = Registry::new();
    injector.attach_registry(registry.clone());
    let world = build_world();
    world.cluster.attach_chaos(Arc::clone(&injector));
    let cache = opts.with_cache.then(|| {
        let cache = tectonic::SsdCache::new(ByteSize::mib(64));
        world.table.attach_cache(cache.clone());
        cache
    });
    let spec = chaos_spec(opts);
    // Traced epochs need the registry attached *before* the first worker
    // spawns, or the earliest splits race worker startup and go untraced.
    let observed = opts.trace.then_some(&registry);
    let mut session = launch_with_retry(&world, &spec, opts.workers, &injector, None, observed);
    session.attach_registry(&registry);
    let mut client = session.client();
    let mut trace = EpochTrace::new();
    let mut batches: u64 = 0;
    let mut idle = 0u32;
    loop {
        match client.next_batch_deadline(Duration::from_millis(100)) {
            Some(tensor) => {
                trace.push(&tensor);
                batches += 1;
                idle = 0;
                for kind in injector.fire(HookPoint::Harness) {
                    match kind {
                        FaultKind::ClientReconnect => {
                            // Trainer-side disconnect: the replacement
                            // client shares consumption progress, so
                            // replayed tensors still dedup.
                            client = session.client();
                        }
                        FaultKind::WorkerKill => kill_one_worker(&session),
                        FaultKind::EvictionStorm => {
                            if let Some(cache) = &cache {
                                cache.evict_all();
                            }
                        }
                        FaultKind::NodeFail => {
                            // Up to R-1 storage nodes down at once: recover
                            // the oldest casualty beyond that cap so every
                            // chunk keeps at least one live replica.
                            let mut downed = world.cluster.failed_nodes();
                            while downed.len() >= tectonic::REPLICATION_FACTOR - 1 {
                                world.cluster.recover_node(downed.remove(0));
                            }
                            let victim = batches % world.cluster.node_count() as u64;
                            world.cluster.fail_node(NodeId(victim));
                            // The heartbeat detector declares the victim
                            // dead after K missed beats and queues its
                            // chunks; drain the queue under a small IOPS
                            // budget so rebuild traffic contends with the
                            // epoch's own foreground reads.
                            for _ in 0..tectonic::DEFAULT_HEARTBEAT_K {
                                world.cluster.heartbeat_tick();
                            }
                            while world.cluster.pump_rebuild(8).remaining > 0 {}
                        }
                        FaultKind::MasterKillRestore => {
                            let ckpt = session.checkpoint_session();
                            session.shutdown();
                            session = launch_with_retry(
                                &world,
                                &spec,
                                opts.workers,
                                &injector,
                                Some(&ckpt),
                                observed,
                            );
                            session.attach_registry(&registry);
                            client = session.client();
                        }
                        _ => {}
                    }
                }
            }
            None => {
                if session.is_complete() {
                    break;
                }
                // Injected crashes can fell the whole fleet; the chaos
                // harness (standing in for the control plane) restores
                // capacity once no worker thread is left.
                if session.live_worker_threads() == 0 {
                    session.spawn_worker();
                }
                idle += 1;
                assert!(
                    idle < 300,
                    "no progress for 30s under plan:\n{}",
                    injector.plan()
                );
            }
        }
    }
    injector.publish_metrics();
    world.cluster.publish_metrics(&registry);
    let durability = durability_snapshot(&world.cluster);
    session.shutdown();
    EpochRun {
        trace,
        injector,
        registry,
        durability,
    }
}

fn run_epoch(plan: FaultPlan, opts: EpochOpts) -> EpochRun {
    let injector = FaultInjector::new(plan);
    let context = injector.plan().to_string();
    with_watchdog(WATCHDOG, context, move || drive_epoch(injector, opts))
}

fn run_baseline(opts: EpochOpts) -> EpochRun {
    with_watchdog(WATCHDOG, "fault-free baseline".into(), move || {
        drive_epoch(FaultInjector::disarmed(), opts)
    })
}

/// Runs `plan` and its fault-free baseline over identical worlds and
/// checks every invariant, returning the (deterministic) report text.
fn check_plan(plan: FaultPlan, opts: EpochOpts) -> String {
    let baseline = run_baseline(opts);
    assert_eq!(baseline.trace.len(), TOTAL_TENSORS);
    assert_eq!(baseline.trace.samples(), TOTAL_ROWS);
    let faulty = run_epoch(plan, opts);
    let mut report = InvariantReport::new();
    note_injected(&mut report, &faulty.injector);
    check_exactly_once(&mut report, &faulty.trace, &baseline.trace);
    check_obs_accounting(&mut report, &faulty.injector, &faulty.registry);
    check_durability(&mut report, &faulty.durability);
    assert!(
        report.ok(),
        "invariants violated under plan:\n{}\n{report}",
        faulty.injector.plan()
    );
    report.render()
}

/// Asserts that `plan` injected every one of `labels` at least once when
/// run under `opts`, and that all invariants held.
fn check_plan_injects(plan: FaultPlan, opts: EpochOpts, labels: &[&str]) -> String {
    let rendered = check_plan(plan, opts);
    for label in labels {
        assert!(
            rendered.contains(label),
            "fault class {label} never injected:\n{rendered}"
        );
    }
    rendered
}

// ---------------------------------------------------------------------
// Hook budget headroom: nth values used by the named schedules below
// must stay within the op counts a fault-free epoch actually produces.
// ---------------------------------------------------------------------

#[test]
fn fault_free_epoch_produces_op_headroom_for_named_schedules() {
    let run = run_baseline(EpochOpts::default());
    let reads = run.injector.ops(HookPoint::TectonicRead);
    let splits = run.injector.ops(HookPoint::WorkerSplit);
    let batches = run.injector.ops(HookPoint::Harness);
    // One charged (coalesced) cluster read per split: named schedules
    // below must keep TectonicRead nth <= 12 to reliably fire.
    assert!(reads >= TOTAL_TENSORS as u64, "tectonic read ops: {reads}");
    assert!(splits >= TOTAL_TENSORS as u64, "worker split ops: {splits}");
    assert_eq!(batches, TOTAL_TENSORS as u64, "harness ops: {batches}");
    assert_eq!(run.injector.injected_count(), 0);
}

// ---------------------------------------------------------------------
// Flagship: many fault classes on one schedule, fastpath pipeline on.
// ---------------------------------------------------------------------

/// The flagship schedule: 8 distinct fault classes across storage,
/// workers, clients, and the master — all data-preserving, so the epoch
/// must still deliver every tensor exactly once, bit-identical.
fn flagship_plan() -> FaultPlan {
    FaultPlan::named(vec![
        FaultEvent::new(HookPoint::TectonicRead, 4, FaultKind::IoError),
        FaultEvent::new(
            HookPoint::TectonicRead,
            9,
            FaultKind::SlowIo { micros: 250 },
        ),
        FaultEvent::new(
            HookPoint::WorkerSplit,
            2,
            FaultKind::WorkerHang { micros: 400 },
        ),
        FaultEvent::new(HookPoint::WorkerSplit, 5, FaultKind::WorkerCrash),
        FaultEvent::new(
            HookPoint::WorkerSplit,
            9,
            FaultKind::SlowTransform { micros: 200 },
        ),
        FaultEvent::new(HookPoint::Harness, 3, FaultKind::NodeFail),
        FaultEvent::new(HookPoint::Harness, 5, FaultKind::WorkerKill),
        FaultEvent::new(HookPoint::Harness, 7, FaultKind::ClientReconnect),
        FaultEvent::new(HookPoint::Harness, 9, FaultKind::MasterKillRestore),
    ])
}

#[test]
fn flagship_eight_fault_classes_exactly_once_under_pipeline() {
    let plan = flagship_plan();
    assert!(
        plan.distinct_classes() >= 5,
        "flagship must span >=5 classes"
    );
    let opts = EpochOpts {
        read_ahead: 2, // kill the master while the 3-stage pipeline runs
        ..EpochOpts::default()
    };
    check_plan_injects(
        plan,
        opts,
        &[
            "io_error",
            "slow_io",
            "worker_hang",
            "worker_crash",
            "slow_transform",
            "node_fail",
            "worker_kill",
            "client_reconnect",
            "master_kill_restore",
        ],
    );
}

#[test]
fn flagship_schedule_replays_to_identical_report() {
    let opts = EpochOpts {
        read_ahead: 2,
        ..EpochOpts::default()
    };
    let first = check_plan(flagship_plan(), opts);
    let second = check_plan(flagship_plan(), opts);
    assert_eq!(first, second, "replaying the same seed diverged");
}

#[test]
fn flagship_schedule_holds_on_sequential_workers_too() {
    check_plan(flagship_plan(), EpochOpts::default());
}

// ---------------------------------------------------------------------
// Named regression schedules, one (or a few) per fault class.
// ---------------------------------------------------------------------

#[test]
fn regression_tectonic_io_error_on_first_read_of_the_epoch() {
    // nth=1 lands on the very first charged cluster read: the unlucky
    // worker fails before delivering anything, and the epoch must still
    // deliver exactly once.
    let plan = FaultPlan::named(vec![FaultEvent::new(
        HookPoint::TectonicRead,
        1,
        FaultKind::IoError,
    )]);
    check_plan_injects(plan, EpochOpts::default(), &["io_error"]);
}

#[test]
fn regression_tectonic_io_error_on_worker_read_requeues_split() {
    let plan = FaultPlan::named(vec![FaultEvent::new(
        HookPoint::TectonicRead,
        8,
        FaultKind::IoError,
    )]);
    check_plan_injects(plan, EpochOpts::default(), &["io_error"]);
}

#[test]
fn regression_slow_disk_only_stretches_the_virtual_clock() {
    let plan = FaultPlan::named(vec![
        FaultEvent::new(
            HookPoint::TectonicRead,
            3,
            FaultKind::SlowIo { micros: 5_000 },
        ),
        FaultEvent::new(
            HookPoint::TectonicRead,
            10,
            FaultKind::SlowIo { micros: 5_000 },
        ),
    ]);
    check_plan_injects(plan, EpochOpts::default(), &["slow_io"]);
}

#[test]
fn regression_corrupt_chunk_is_detected_and_split_replayed_fastpath() {
    // Corruption of read bytes trips the DWRF stream checksum: the read
    // fails with a typed error (never silent wrong data), the worker is
    // failed, and the split replays from pristine replicas.
    let plan = FaultPlan::named(vec![FaultEvent::new(
        HookPoint::TectonicRead,
        7,
        FaultKind::CorruptChunk { xor: 0xA5 },
    )]);
    check_plan_injects(plan, EpochOpts::default(), &["corrupt_chunk"]);
}

#[test]
fn regression_corrupt_chunk_is_detected_and_split_replayed_copying() {
    let plan = FaultPlan::named(vec![FaultEvent::new(
        HookPoint::TectonicRead,
        7,
        FaultKind::CorruptChunk { xor: 0xA5 },
    )]);
    let opts = EpochOpts {
        fastpath: false,
        ..EpochOpts::default()
    };
    check_plan_injects(plan, opts, &["corrupt_chunk"]);
}

#[test]
fn regression_worker_crash_storm_fells_whole_fleet_and_harness_respawns() {
    // Three crashes against three workers: the harness must detect the
    // empty fleet and restore capacity without losing exactly-once.
    let plan = FaultPlan::named(vec![
        FaultEvent::new(HookPoint::WorkerSplit, 2, FaultKind::WorkerCrash),
        FaultEvent::new(HookPoint::WorkerSplit, 3, FaultKind::WorkerCrash),
        FaultEvent::new(HookPoint::WorkerSplit, 4, FaultKind::WorkerCrash),
    ]);
    check_plan_injects(plan, EpochOpts::default(), &["worker_crash"]);
}

#[test]
fn regression_worker_crash_inside_fastpath_pipeline_requeues_in_pipe_splits() {
    // With read_ahead > 0 a crash at the load stage abandons splits
    // sitting in the fetch/transform channels; all must replay.
    let plan = FaultPlan::named(vec![
        FaultEvent::new(HookPoint::WorkerSplit, 3, FaultKind::WorkerCrash),
        FaultEvent::new(HookPoint::WorkerSplit, 6, FaultKind::WorkerCrash),
    ]);
    let opts = EpochOpts {
        read_ahead: 3,
        ..EpochOpts::default()
    };
    check_plan_injects(plan, opts, &["worker_crash"]);
}

#[test]
fn regression_worker_hang_and_slow_transform_delay_but_never_lose() {
    let plan = FaultPlan::named(vec![
        FaultEvent::new(
            HookPoint::WorkerSplit,
            1,
            FaultKind::WorkerHang { micros: 2_000 },
        ),
        FaultEvent::new(
            HookPoint::WorkerSplit,
            4,
            FaultKind::SlowTransform { micros: 1_000 },
        ),
    ]);
    check_plan_injects(
        plan,
        EpochOpts::default(),
        &["worker_hang", "slow_transform"],
    );
}

#[test]
fn regression_client_disconnect_reconnect_preserves_progress() {
    let plan = FaultPlan::named(vec![
        FaultEvent::new(HookPoint::Harness, 2, FaultKind::ClientReconnect),
        FaultEvent::new(HookPoint::Harness, 6, FaultKind::ClientReconnect),
    ]);
    check_plan_injects(plan, EpochOpts::default(), &["client_reconnect"]);
}

#[test]
fn regression_worker_kill_races_split_completion_ack() {
    // The request_split/complete_split race this schedule regresses: a
    // worker is killed right as batches are being consumed, so a split's
    // final-tensor ack can race the kill's fail_worker requeue. The
    // replayed duplicate must re-ack, or the split stays in flight and
    // the epoch livelocks (caught by the watchdog).
    let plan = FaultPlan::named(vec![
        FaultEvent::new(HookPoint::Harness, 1, FaultKind::WorkerKill),
        FaultEvent::new(HookPoint::Harness, 2, FaultKind::WorkerKill),
        FaultEvent::new(HookPoint::Harness, 3, FaultKind::WorkerKill),
        FaultEvent::new(HookPoint::Harness, 4, FaultKind::WorkerKill),
    ]);
    check_plan_injects(plan, EpochOpts::default(), &["worker_kill"]);
}

#[test]
fn regression_eviction_storm_refetches_from_hdd_bit_identically() {
    let plan = FaultPlan::named(vec![
        FaultEvent::new(HookPoint::Harness, 2, FaultKind::EvictionStorm),
        FaultEvent::new(HookPoint::Harness, 5, FaultKind::EvictionStorm),
    ]);
    let opts = EpochOpts {
        with_cache: true,
        ..EpochOpts::default()
    };
    check_plan_injects(plan, opts, &["eviction_storm"]);
}

#[test]
fn regression_node_failures_survive_via_replication() {
    let plan = FaultPlan::named(vec![
        FaultEvent::new(HookPoint::Harness, 1, FaultKind::NodeFail),
        FaultEvent::new(HookPoint::Harness, 4, FaultKind::NodeFail),
        FaultEvent::new(HookPoint::Harness, 7, FaultKind::NodeFail),
    ]);
    check_plan_injects(plan, EpochOpts::default(), &["node_fail"]);
}

#[test]
fn regression_master_kill_restore_mid_epoch_sequential() {
    let plan = FaultPlan::named(vec![FaultEvent::new(
        HookPoint::Harness,
        4,
        FaultKind::MasterKillRestore,
    )]);
    check_plan_injects(plan, EpochOpts::default(), &["master_kill_restore"]);
}

#[test]
fn regression_double_master_kill_restore_under_pipeline() {
    let plan = FaultPlan::named(vec![
        FaultEvent::new(HookPoint::Harness, 3, FaultKind::MasterKillRestore),
        FaultEvent::new(HookPoint::Harness, 8, FaultKind::MasterKillRestore),
    ]);
    let opts = EpochOpts {
        read_ahead: 2,
        ..EpochOpts::default()
    };
    check_plan_injects(plan, opts, &["master_kill_restore"]);
}

// ---------------------------------------------------------------------
// Wire transport: faults on the TCP data plane.
// ---------------------------------------------------------------------

#[test]
fn regression_wire_connection_drops_replay_unacked_envelopes() {
    // Severed sockets, a torn frame mid-write, and a slow socket on the
    // worker->client wire: the client reconnects, the server replays its
    // unacked envelope window, and the exactly-once dedup absorbs every
    // replayed duplicate — the epoch still matches the baseline bitwise.
    let plan = FaultPlan::named(vec![
        FaultEvent::new(HookPoint::WireFrame, 2, FaultKind::ConnDrop),
        FaultEvent::new(HookPoint::WireFrame, 5, FaultKind::PartialFrame),
        FaultEvent::new(
            HookPoint::WireFrame,
            8,
            FaultKind::SlowSocket { micros: 300 },
        ),
        FaultEvent::new(HookPoint::WireFrame, 11, FaultKind::ConnDrop),
    ]);
    let opts = EpochOpts {
        transport: Transport::Tcp(WireConfig::plaintext()),
        ..EpochOpts::default()
    };
    check_plan_injects(plan, opts, &["conn_drop", "partial_frame", "slow_socket"]);
}

#[test]
fn regression_wire_drops_compose_with_worker_kill_and_master_restart() {
    // Wire faults racing control-plane chaos over an encrypted transport:
    // killing a worker tears down its wire server mid-replay, and the
    // master restart rebuilds every socket from the checkpoint.
    let plan = FaultPlan::named(vec![
        FaultEvent::new(HookPoint::WireFrame, 3, FaultKind::ConnDrop),
        FaultEvent::new(HookPoint::WireFrame, 7, FaultKind::PartialFrame),
        FaultEvent::new(HookPoint::Harness, 3, FaultKind::WorkerKill),
        FaultEvent::new(HookPoint::Harness, 6, FaultKind::MasterKillRestore),
    ]);
    let opts = EpochOpts {
        transport: Transport::Tcp(WireConfig::encrypted(0x007E_57ED)),
        ..EpochOpts::default()
    };
    check_plan_injects(
        plan,
        opts,
        &[
            "conn_drop",
            "partial_frame",
            "worker_kill",
            "master_kill_restore",
        ],
    );
}

#[test]
fn composed_chaos_traces_stay_valid_with_replays_as_sibling_spans() {
    // The composed control+data-plane schedule (wire drop, worker kill,
    // master kill+restore) with 100% trace sampling: every retry path in
    // the pipeline must keep the span tree structurally sound. Trace ids
    // are deterministic per (session, split), so a replayed split — from
    // whichever fault — lands in the SAME trace as its first attempt, as
    // sibling spans, never as an orphan or a second trace.
    let plan = FaultPlan::named(vec![
        FaultEvent::new(HookPoint::WireFrame, 3, FaultKind::ConnDrop),
        FaultEvent::new(HookPoint::Harness, 3, FaultKind::WorkerKill),
        FaultEvent::new(HookPoint::Harness, 6, FaultKind::MasterKillRestore),
    ]);
    let opts = EpochOpts {
        transport: Transport::Tcp(WireConfig::plaintext()),
        trace: true,
        ..EpochOpts::default()
    };
    let run = run_epoch(plan, opts);
    assert_eq!(run.trace.len(), TOTAL_TENSORS, "epoch lost tensors");
    assert!(
        run.injector.injected_count() >= 3,
        "composed schedule under-fired:\n{}",
        run.injector.plan()
    );
    let spans = run.registry.trace_spans();
    assert_eq!(run.registry.trace_dropped(), 0, "span ring overflowed");
    if let Err(errors) = dsi::trace::validate(&spans) {
        panic!(
            "structurally invalid traces under chaos:\n  {}",
            errors.join("\n  ")
        );
    }
    // Full sampling + observed launch/resume: every split's trace is
    // present and complete down to delivery.
    let schedules = dsi::trace::schedule_counts(&spans);
    assert_eq!(
        schedules.len(),
        TOTAL_TENSORS,
        "expected one trace per split"
    );
    for &trace_id in schedules.keys() {
        assert!(
            spans
                .iter()
                .any(|s| s.trace_id == trace_id && s.kind == dsi::obs::SpanKind::Deliver),
            "trace {trace_id:#x} never reached the client"
        );
    }
    // Replay evidence: a worker kill or master restore re-schedules the
    // in-flight split (a second parent-0 Schedule sibling in the same
    // trace), and wire drops replay envelopes (FLAG_REPLAY siblings).
    let rescheduled = schedules.values().filter(|&&n| n > 1).count();
    let replay_flagged = spans.iter().filter(|s| s.is_replay()).count();
    assert!(
        rescheduled + replay_flagged > 0,
        "no replayed split visible as a sibling span:\n{}",
        run.injector.plan()
    );
    let report = dsi::trace::analyze(&spans);
    assert_eq!(report.traces, TOTAL_TENSORS, "analyzer lost traces");
    assert!(report.end_to_end_p50_ms > 0.0, "degenerate end-to-end p50");
}

// ---------------------------------------------------------------------
// Corruption must never reach the trainer.
// ---------------------------------------------------------------------

#[test]
fn corrupted_blocks_never_reach_the_trainer() {
    // Feed a chaos epoch straight into the live trainer: with chunk
    // corruption injected on the read path, the trainer must still see
    // every sample exactly once — corruption surfaces as a typed decode
    // error inside DPP, the split replays, and only verified bytes flow.
    let injector = FaultInjector::new(FaultPlan::named(vec![
        FaultEvent::new(
            HookPoint::TectonicRead,
            5,
            FaultKind::CorruptChunk { xor: 0xFF },
        ),
        FaultEvent::new(
            HookPoint::TectonicRead,
            10,
            FaultKind::SlowIo { micros: 300 },
        ),
        FaultEvent::new(
            HookPoint::WorkerSplit,
            4,
            FaultKind::WorkerHang { micros: 500 },
        ),
    ]));
    let samples = with_watchdog(WATCHDOG, injector.plan().to_string(), move || {
        let world = build_world();
        world.cluster.attach_chaos(Arc::clone(&injector));
        let spec = chaos_spec(EpochOpts::default());
        let session = launch_with_retry(&world, &spec, 3, &injector, None, None);
        let client = session.client();
        let mut trainer =
            LiveTrainer::new(client, GpuDemand::new(3.2e6, 100.0)).with_time_scale(0.1);
        let (_stalls, samples) = trainer.train(u64::MAX);
        assert!(injector.injected_count() >= 1, "corruption never injected");
        session.shutdown();
        samples
    });
    assert_eq!(samples, TOTAL_ROWS as u64);
}

// ---------------------------------------------------------------------
// Durability: replica loss and at-rest corruption mid-epoch.
// ---------------------------------------------------------------------

#[test]
fn durability_kill_one_storage_node_mid_epoch_over_tcp_pipeline() {
    // A storage node dies while the 3-stage pipeline streams batches over
    // TCP: the heartbeat detector declares it dead, its chunks rebuild
    // under a bounded IOPS budget, and the epoch loses nothing.
    let plan = FaultPlan::named(vec![FaultEvent::new(
        HookPoint::Harness,
        3,
        FaultKind::NodeFail,
    )]);
    let opts = EpochOpts {
        read_ahead: 2,
        transport: Transport::Tcp(WireConfig::plaintext()),
        ..EpochOpts::default()
    };
    check_plan_injects(plan, opts, &["node_fail"]);
}

#[test]
fn durability_kill_r_minus_one_storage_nodes_mid_epoch_over_tcp_pipeline() {
    // Three node kills in quick succession keep R-1 = 2 nodes dead at
    // once (the harness caps concurrency there so a live replica always
    // survives). Every tensor must still arrive exactly once, bitwise
    // identical, and the rebuild queue must be drained by epoch end.
    let plan = FaultPlan::named(vec![
        FaultEvent::new(HookPoint::Harness, 2, FaultKind::NodeFail),
        FaultEvent::new(HookPoint::Harness, 4, FaultKind::NodeFail),
        FaultEvent::new(HookPoint::Harness, 6, FaultKind::NodeFail),
    ]);
    let opts = EpochOpts {
        read_ahead: 2,
        transport: Transport::Tcp(WireConfig::plaintext()),
        ..EpochOpts::default()
    };
    check_plan_injects(plan, opts, &["node_fail"]);
}

#[test]
fn durability_corrupt_replica_is_detected_failed_over_and_repaired() {
    // At-rest corruption planted on the very replica the next read
    // consults: the per-page checksum trips, the read fails over to a
    // clean replica, and read-repair rewrites the bad copy — all
    // transparent to the consumer, which still matches the baseline.
    let plan = FaultPlan::named(vec![
        FaultEvent::new(
            HookPoint::TectonicRead,
            3,
            FaultKind::CorruptReplica { xor: 0x5A },
        ),
        FaultEvent::new(
            HookPoint::TectonicRead,
            8,
            FaultKind::CorruptReplica { xor: 0xFF },
        ),
    ]);
    let baseline = run_baseline(EpochOpts::default());
    let faulty = run_epoch(plan, EpochOpts::default());
    let mut report = InvariantReport::new();
    note_injected(&mut report, &faulty.injector);
    check_exactly_once(&mut report, &faulty.trace, &baseline.trace);
    check_obs_accounting(&mut report, &faulty.injector, &faulty.registry);
    check_durability(&mut report, &faulty.durability);
    assert!(
        report.ok(),
        "invariants violated under plan:\n{}\n{report}",
        faulty.injector.plan()
    );
    assert!(
        faulty.durability.checksum_failures >= 1,
        "corruption was never detected: {:?}",
        faulty.durability
    );
    assert!(
        faulty.durability.read_repairs >= 1,
        "bad replica was never repaired: {:?}",
        faulty.durability
    );
}

#[test]
fn at_rest_corruption_never_reaches_the_trainer() {
    // Feed a chaos epoch straight into the live trainer with replicas
    // corrupted on disk: checksum verification catches every bad page
    // inside the storage layer, reads fail over and repair in place, and
    // the trainer consumes every sample without ever seeing a decode
    // error — unlike in-flight CorruptChunk, no split even replays.
    let injector = FaultInjector::new(FaultPlan::named(vec![
        FaultEvent::new(
            HookPoint::TectonicRead,
            4,
            FaultKind::CorruptReplica { xor: 0xFF },
        ),
        FaultEvent::new(
            HookPoint::TectonicRead,
            9,
            FaultKind::CorruptReplica { xor: 0x01 },
        ),
    ]));
    let (samples, durability) = with_watchdog(WATCHDOG, injector.plan().to_string(), move || {
        let world = build_world();
        world.cluster.attach_chaos(Arc::clone(&injector));
        let spec = chaos_spec(EpochOpts::default());
        let session = launch_with_retry(&world, &spec, 3, &injector, None, None);
        let client = session.client();
        let mut trainer =
            LiveTrainer::new(client, GpuDemand::new(3.2e6, 100.0)).with_time_scale(0.1);
        let (_stalls, samples) = trainer.train(u64::MAX);
        assert!(injector.injected_count() >= 1, "corruption never injected");
        session.shutdown();
        (samples, durability_snapshot(&world.cluster))
    });
    assert_eq!(samples, TOTAL_ROWS as u64);
    assert!(durability.checksum_failures >= 1, "{durability:?}");
    assert!(durability.read_repairs >= 1, "{durability:?}");
    let mut report = InvariantReport::new();
    check_durability(&mut report, &durability);
    assert!(report.ok(), "{report}");
}

#[test]
fn durability_rebuild_converges_under_bounded_iops_budget() {
    // Cluster-level convergence over real table data: kill a node, let
    // the heartbeat detector declare it dead, then drain the rebuild
    // queue in small budgeted pumps. Each pump starts at most `budget`
    // IOs (one in-flight chunk may overshoot by its own read+writes),
    // and at convergence every chunk is back to R live replicas.
    let world = build_world();
    // Kill the node holding the most chunks so the rebuild queue is
    // deep enough that a budget of 1 demonstrably takes several pumps.
    let mut held: std::collections::HashMap<NodeId, u64> = std::collections::HashMap::new();
    for path in world.cluster.list_files() {
        for replicas in world.cluster.stat(&path).unwrap().blocks {
            for n in replicas {
                *held.entry(n).or_insert(0) += 1;
            }
        }
    }
    let (victim, chunks_held) = held
        .into_iter()
        .max_by_key(|&(n, c)| (c, std::cmp::Reverse(n.0)))
        .unwrap();
    assert!(chunks_held >= 2, "world too small: {chunks_held} chunks");
    world.cluster.fail_node(victim);
    for _ in 0..tectonic::DEFAULT_HEARTBEAT_K {
        world.cluster.heartbeat_tick();
    }
    assert_eq!(world.cluster.dead_nodes(), vec![victim]);
    let budget = 1u64;
    let mut pumps = 0u64;
    loop {
        let p = world.cluster.pump_rebuild(budget);
        pumps += 1;
        assert!(
            p.ios <= budget + tectonic::REPLICATION_FACTOR as u64,
            "pump overshot its budget: {} IOs",
            p.ios
        );
        if p.remaining == 0 {
            break;
        }
        assert!(pumps < 10_000, "rebuild failed to converge");
    }
    assert!(pumps > 1, "budget {budget} drained the queue in one pump");
    let d = world.cluster.durability();
    assert_eq!(d.under_replicated, 0, "{d:?}");
    assert!(d.rebuilt_chunks > 0, "{d:?}");
    // Every block of every file is back at full replication on live nodes.
    for path in world.cluster.list_files() {
        let meta = world.cluster.stat(&path).unwrap();
        for (i, replicas) in meta.blocks.iter().enumerate() {
            let live = replicas.iter().filter(|&&n| n != victim).count();
            assert!(
                live >= tectonic::REPLICATION_FACTOR,
                "{path} block {i} has {live} live replicas"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Random schedules with shrinking to a minimal failing plan.
// ---------------------------------------------------------------------

/// Bounds for random schedules: nth budgets stay under the op counts a
/// fault-free epoch produces (see the headroom test above) so scheduled
/// events reliably fire. Scribe faults are exercised at the bus layer
/// (see `crates/scribe`); the epoch harness drives the other hooks.
fn random_cfg() -> ChaosConfig {
    ChaosConfig {
        events: 5,
        max_reads: 12,
        max_splits: 10,
        max_batches: 10,
        hooks: vec![
            HookPoint::TectonicRead,
            HookPoint::WorkerSplit,
            HookPoint::Harness,
        ],
        ..ChaosConfig::default()
    }
}

/// Dumps a failing plan where CI can pick it up as an artifact.
fn dump_failing_plan(plan: &FaultPlan, report: &str) -> String {
    let dir = std::path::Path::new("target/chaos");
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("failing-plan-seed-{}.txt", plan.seed));
    let body = format!("{plan}\n{report}");
    let _ = std::fs::write(&path, &body);
    path.display().to_string()
}

#[test]
fn random_schedules_hold_invariants_or_shrink_to_minimal_plan() {
    let opts = EpochOpts {
        with_cache: true,
        ..EpochOpts::default()
    };
    let verdict = |plan: &FaultPlan| -> Result<String, String> {
        let baseline = run_baseline(opts);
        let faulty = run_epoch(plan.clone(), opts);
        let mut report = InvariantReport::new();
        note_injected(&mut report, &faulty.injector);
        check_exactly_once(&mut report, &faulty.trace, &baseline.trace);
        check_obs_accounting(&mut report, &faulty.injector, &faulty.registry);
        check_durability(&mut report, &faulty.durability);
        if report.ok() {
            Ok(report.render())
        } else {
            Err(report.render())
        }
    };
    for seed in [11, 29, 47] {
        let plan = FaultPlan::random(seed, &random_cfg());
        if let Err(report) = verdict(&plan) {
            // Shrink to the minimal schedule that still violates the
            // invariant, dump it for CI, and fail with the dump.
            let minimal = shrink_plan(&plan, |p| verdict(p).is_err());
            let path = dump_failing_plan(&minimal, &report);
            panic!("seed {seed} violated invariants; minimal plan at {path}:\n{minimal}\n{report}");
        }
    }
}

#[test]
fn mutation_check_broken_invariant_shrinks_to_minimal_printed_plan() {
    // Mutation test for the shrinking + reporting machinery itself: an
    // intentionally broken invariant ("chaos must never inject anything")
    // must fail, and shrinking must reduce the schedule to a single event
    // whose printed dump reproduces the failure.
    let opts = EpochOpts::default();
    let broken_invariant_fails = |plan: &FaultPlan| -> bool {
        let run = run_epoch(plan.clone(), opts);
        run.injector.injected_count() > 0 // "broken": any injection fails
    };
    let plan = FaultPlan::named(vec![
        FaultEvent::new(
            HookPoint::WorkerSplit,
            2,
            FaultKind::WorkerHang { micros: 100 },
        ),
        FaultEvent::new(
            HookPoint::WorkerSplit,
            5,
            FaultKind::SlowTransform { micros: 100 },
        ),
        FaultEvent::new(
            HookPoint::TectonicRead,
            14,
            FaultKind::SlowIo { micros: 100 },
        ),
    ]);
    assert!(broken_invariant_fails(&plan), "mutation was not observable");
    let minimal = shrink_plan(&plan, broken_invariant_fails);
    assert_eq!(minimal.events.len(), 1, "not 1-minimal:\n{minimal}");
    let dump = minimal.to_string();
    assert!(dump.contains("FaultPlan { seed: 0, events: 1 }"), "{dump}");
    let path = dump_failing_plan(&minimal, "mutation-check: intentional");
    assert!(std::path::Path::new(&path).exists());
}

// ---------------------------------------------------------------------
// Closed-loop tuning under chaos: the online tuner actively rolls knob
// changes through the fleet while a storage node dies mid-epoch.
// ---------------------------------------------------------------------

#[test]
fn tuner_moves_knobs_while_node_dies_mid_epoch_exactly_once() {
    // The composed scenario ISSUE satellite 4 asks for: a LiveTuner is
    // ticking every batch — growing the fleet, deepening read-ahead,
    // rotating workers through the new spec — when NodeFail hits twice.
    // Each loss runs the full declaration path (K missed heartbeats →
    // chunks queued → budgeted rebuild) while the tuner keeps actuating.
    // Delivery must stay exactly-once and bitwise-identical to the
    // fault-free, untouched-knobs baseline. The batch-size axis is frozen
    // (a mid-run change would legitimately alter tensor shapes); workers
    // and read-ahead are the delivery-invariant knobs the tuner may move.
    let opts = EpochOpts {
        workers: 2,
        ..EpochOpts::default()
    };
    let baseline = run_baseline(opts);
    assert_eq!(baseline.trace.len(), TOTAL_TENSORS);

    let plan = FaultPlan::named(vec![
        FaultEvent::new(HookPoint::Harness, 3, FaultKind::NodeFail),
        FaultEvent::new(HookPoint::Harness, 6, FaultKind::NodeFail),
    ]);
    let injector = FaultInjector::new(plan);
    let context = injector.plan().to_string();
    let faulty = with_watchdog(WATCHDOG, context, move || {
        let registry = Registry::new();
        injector.attach_registry(registry.clone());
        let world = build_world();
        world.cluster.attach_chaos(Arc::clone(&injector));
        let spec = chaos_spec(opts);
        let session = launch_with_retry(&world, &spec, opts.workers, &injector, None, None);
        session.attach_registry(&registry);

        let policy = OnlineTuner::new(TunerConfig {
            bounds: KnobBounds {
                workers: (1, 5),
                read_ahead: (0, 2),
                batch_size: (ROWS_PER_STRIPE, ROWS_PER_STRIPE), // frozen
                parallelism: (1, 1),
            },
            ..TunerConfig::default()
        });
        let mut tuner = LiveTuner::new(Box::new(policy), &session);
        assert_eq!(tuner.knobs().batch_size, ROWS_PER_STRIPE);

        let mut client = session.client();
        let mut trace = EpochTrace::new();
        let mut batches: u64 = 0;
        let mut forced_moves = 0u32;
        let mut idle = 0u32;
        loop {
            match client.next_batch_deadline(Duration::from_millis(100)) {
                Some(tensor) => {
                    trace.push(&tensor);
                    batches += 1;
                    idle = 0;
                    for kind in injector.fire(HookPoint::Harness) {
                        if kind == FaultKind::NodeFail {
                            let mut downed = world.cluster.failed_nodes();
                            while downed.len() >= tectonic::REPLICATION_FACTOR - 1 {
                                world.cluster.recover_node(downed.remove(0));
                            }
                            let victim = batches % world.cluster.node_count() as u64;
                            world.cluster.fail_node(NodeId(victim));
                            for _ in 0..tectonic::DEFAULT_HEARTBEAT_K {
                                world.cluster.heartbeat_tick();
                            }
                            while world.cluster.pump_rebuild(8).remaining > 0 {}
                        }
                    }
                    // Forced knob motion bracketing the two node losses, so
                    // the tuner is provably mid-flight when they land; the
                    // policy also runs its own closed loop every batch.
                    match batches {
                        2 => {
                            let grown = Knobs {
                                workers: tuner.knobs().workers + 1,
                                read_ahead: 1,
                                ..tuner.knobs()
                            };
                            let d = tuner.apply(&session, grown);
                            assert_eq!(d.spawned, 1);
                            forced_moves += 1;
                        }
                        5 => {
                            // Depth-only move between the two losses: rolls
                            // a worker through the new spec via drain+spawn.
                            let deeper = Knobs {
                                read_ahead: 2,
                                ..tuner.knobs()
                            };
                            let d = tuner.apply(&session, deeper);
                            assert!(d.rotated || d.spawned > 0, "{d:?}");
                            forced_moves += 1;
                        }
                        8 => {
                            let slimmer = Knobs {
                                workers: tuner.knobs().workers.saturating_sub(1).max(1),
                                ..tuner.knobs()
                            };
                            tuner.apply(&session, slimmer);
                            forced_moves += 1;
                        }
                        _ => {
                            tuner.tick(&session, &registry);
                        }
                    }
                    assert_eq!(
                        tuner.knobs().batch_size,
                        ROWS_PER_STRIPE,
                        "frozen batch axis must never move"
                    );
                }
                None => {
                    if session.is_complete() {
                        break;
                    }
                    if session.live_worker_threads() == 0 {
                        session.spawn_worker();
                    }
                    idle += 1;
                    assert!(
                        idle < 300,
                        "no progress for 30s under plan:\n{}",
                        injector.plan()
                    );
                }
            }
        }
        assert_eq!(forced_moves, 3, "all three bracketed knob moves ran");
        injector.publish_metrics();
        world.cluster.publish_metrics(&registry);
        let durability = durability_snapshot(&world.cluster);
        session.shutdown();
        EpochRun {
            trace,
            injector,
            registry,
            durability,
        }
    });

    let mut report = InvariantReport::new();
    note_injected(&mut report, &faulty.injector);
    check_exactly_once(&mut report, &faulty.trace, &baseline.trace);
    check_obs_accounting(&mut report, &faulty.injector, &faulty.registry);
    check_durability(&mut report, &faulty.durability);
    assert!(
        report.ok(),
        "invariants violated under tuned chaos run:\n{}\n{report}",
        faulty.injector.plan()
    );
    assert!(
        report.render().contains("node_fail"),
        "node failure never injected:\n{}",
        report.render()
    );
}
