//! Scaled-down, fully-functional RM deployments for measurement.

use dedup::DedupConfig;
use dpp::{SessionSpec, Worker, WorkerReport};
use dsi_types::{FeatureId, PartitionId, Projection, Sample, SessionId, TableId};
use dwrf::{CoalescePolicy, StreamOrder, WriterOptions};
use synth::{JobProjectionSampler, RmClass, RmProfile, SampleGenerator};
use tectonic::{ClusterConfig, TectonicCluster};
use transforms::TransformPlan;
use warehouse::{Table, TableConfig};

/// Scale parameters for a lab deployment.
#[derive(Debug, Clone, Copy)]
pub struct LabConfig {
    /// Scaled-down logged feature count.
    pub features: u32,
    /// Date partitions to generate.
    pub days: u32,
    /// Rows per partition.
    pub rows_per_day: u64,
    /// DWRF rows per stripe.
    pub rows_per_stripe: usize,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for LabConfig {
    fn default() -> Self {
        Self {
            features: 300,
            days: 3,
            rows_per_day: 1200,
            rows_per_stripe: 200,
            seed: 0xd51,
        }
    }
}

impl LabConfig {
    /// A small config for fast tests.
    pub fn tiny() -> Self {
        Self {
            features: 60,
            days: 2,
            rows_per_day: 200,
            rows_per_stripe: 64,
            seed: 0xd51,
        }
    }
}

/// A fully-built scaled deployment of one RM's dataset plus measurement
/// helpers.
pub struct RmLab {
    /// The model profile this lab instantiates.
    pub profile: RmProfile,
    /// The warehouse table holding the generated dataset.
    pub table: Table,
    /// The per-job projection sampler.
    pub sampler: JobProjectionSampler,
    /// The lab's scale config.
    pub config: LabConfig,
}

impl RmLab {
    /// Builds the deployment: schema from the profile, synthetic samples,
    /// DWRF-encoded partitions in a fresh Tectonic cluster.
    pub fn build(class: RmClass, config: LabConfig) -> RmLab {
        Self::build_with_writer(class, config, None)
    }

    /// Like [`RmLab::build`] with explicit writer options (ablations).
    pub fn build_with_writer(
        class: RmClass,
        config: LabConfig,
        writer: Option<WriterOptions>,
    ) -> RmLab {
        Self::build_dedup(class, config, writer, None)
    }

    /// Full-control build for the dedup ablation: optional writer options
    /// and optional RecD session duplication in the generated dataset
    /// (members of a session share one sparse payload).
    pub fn build_dedup(
        class: RmClass,
        config: LabConfig,
        writer: Option<WriterOptions>,
        dedup: Option<DedupConfig>,
    ) -> RmLab {
        Self::build_custom(class, config, writer, dedup, None)
    }

    /// Full-control build: everything [`RmLab::build_dedup`] offers plus an
    /// explicit Tectonic cluster config (e.g. production-sized blocks so
    /// coalesced reads stay within one block).
    pub fn build_custom(
        class: RmClass,
        config: LabConfig,
        writer: Option<WriterOptions>,
        dedup: Option<DedupConfig>,
        cluster: Option<ClusterConfig>,
    ) -> RmLab {
        let profile = RmProfile::of(class);
        let schema = profile.build_schema(config.features);
        let sampler = JobProjectionSampler::new(&schema, &profile, config.seed);
        let cluster = TectonicCluster::new(cluster.unwrap_or(ClusterConfig {
            nodes: 8,
            block_size: 4 * 1024 * 1024,
            replication: 3,
            hdd: true,
        }));
        let opts = writer.unwrap_or(WriterOptions {
            rows_per_stripe: config.rows_per_stripe,
            ..Default::default()
        });
        let table = Table::create(
            cluster,
            TableConfig::new(TableId(class as u64 + 1), format!("{class}").to_lowercase())
                .with_schema(schema.clone())
                .with_writer_options(opts),
        )
        .expect("table creation is infallible");
        let mut generator = SampleGenerator::new(&schema, config.seed);
        if let Some(cfg) = dedup {
            // The RecD labs log ids at production width: sparse streams
            // carry 64-bit hashed ids, which is what gives them their
            // dominant byte share on disk (cf. the RM profiles, where
            // sparse payloads dwarf the float features). The small-domain
            // default would under-weight exactly the bytes dedup removes.
            generator = generator.with_duplication(cfg).with_hashed_ids();
        }
        for day in 0..config.days {
            let samples: Vec<Sample> = generator.take_samples(config.rows_per_day as usize);
            table
                .write_partition(PartitionId::new(day), samples)
                .expect("lab cluster has capacity");
        }
        RmLab {
            profile,
            table,
            sampler,
            config,
        }
    }

    /// A representative release-candidate job projection.
    pub fn rc_projection(&self) -> Projection {
        let mut rng = dsi_types::rng::SplitMix64::new(self.config.seed ^ 0xabc);
        self.sampler.sample_projection(&mut rng)
    }

    /// The production-shaped transform plan for a projection.
    pub fn transform_plan(&self, projection: &Projection) -> TransformPlan {
        let schema = self.table.schema();
        let sparse = schema.ids_of_kind(dsi_types::FeatureKind::Sparse);
        let dense = schema.ids_of_kind(dsi_types::FeatureKind::Dense);
        let derived_fraction = self.profile.model_derived_features as f64
            / (self.profile.model_dense_features + self.profile.model_sparse_features) as f64;
        TransformPlan::preset(projection, &sparse, &dense, derived_fraction, 1_000_000)
    }

    /// A full session spec for a projection (all partitions, preset plan).
    pub fn session_spec(&self, projection: Projection, batch_size: usize) -> SessionSpec {
        let plan = self.transform_plan(&projection);
        let schema = self.table.schema();
        let dense_ids: Vec<FeatureId> = schema
            .ids_of_kind(dsi_types::FeatureKind::Dense)
            .into_iter()
            .filter(|f| projection.contains(*f))
            .collect();
        let mut sparse_ids: Vec<FeatureId> = schema
            .ids_of_kind(dsi_types::FeatureKind::Sparse)
            .into_iter()
            .filter(|f| projection.contains(*f))
            .collect();
        sparse_ids.extend(plan.derived_feature_ids());
        SessionSpec::builder(SessionId(1))
            .partitions(PartitionId::new(0)..PartitionId::new(self.config.days))
            .projection(projection)
            .plan(plan)
            .batch_size(batch_size)
            .dense_ids(dense_ids)
            .sparse_ids(sparse_ids)
            .build()
    }

    /// Runs one Worker synchronously over the entire selection, returning
    /// its measured telemetry.
    pub fn measure_worker(&self, spec: &SessionSpec) -> WorkerReport {
        self.measure_worker_with_policy(spec, spec.policy)
    }

    /// Like [`RmLab::measure_worker`] with a coalescing-policy override.
    pub fn measure_worker_with_policy(
        &self,
        spec: &SessionSpec,
        policy: CoalescePolicy,
    ) -> WorkerReport {
        self.measure_worker_custom(spec, policy, None)
    }

    /// Full-control measurement: explicit coalescing policy and optional
    /// extract cost model (the co-design ablation prices the pre-flatmap
    /// in-memory format this way).
    pub fn measure_worker_custom(
        &self,
        spec: &SessionSpec,
        policy: CoalescePolicy,
        cost: Option<dpp::ExtractCostModel>,
    ) -> WorkerReport {
        let scan = self
            .table
            .scan(spec.partitions(), spec.projection.clone())
            .with_policy(policy);
        let mut worker = Worker::new(
            dsi_types::WorkerId(0),
            std::sync::Arc::new(spec.clone()),
            scan.clone(),
        );
        if let Some(cost) = cost {
            worker = worker.with_cost_model(cost);
        }
        for split in scan.plan_splits() {
            worker
                .process_split(&split)
                .expect("lab table reads are infallible");
        }
        worker.flush();
        worker.report()
    }

    /// Like [`RmLab::measure_worker`], additionally publishing the
    /// report's metrics (including dedup reuse counters) into `registry`.
    pub fn measure_worker_publishing(
        &self,
        spec: &SessionSpec,
        registry: &dsi_obs::Registry,
    ) -> WorkerReport {
        let report = self.measure_worker(spec);
        report.publish_metrics(registry);
        report
    }

    /// Writer options for the popularity-ordered write path (§VII):
    /// streams are laid out by how often jobs read the feature, so a job's
    /// coalesced reads land on one contiguous hot prefix.
    pub fn popularity_writer_options(&self) -> WriterOptions {
        let weights = self
            .sampler
            .access_frequency_ranking(40, self.config.seed ^ 0x9);
        WriterOptions {
            rows_per_stripe: self.config.rows_per_stripe,
            order: StreamOrder::from_weights(&weights),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_builds_and_measures() {
        let lab = RmLab::build(RmClass::Rm3, LabConfig::tiny());
        assert_eq!(lab.table.total_rows(), 400);
        let proj = lab.rc_projection();
        assert!(!proj.is_empty());
        let spec = lab.session_spec(proj, 64);
        let report = lab.measure_worker(&spec);
        assert_eq!(report.samples, 400);
        assert!(report.transform_tx_bytes > 0);
        assert!(report.batches >= 6);
    }

    #[test]
    fn rm1_transforms_cost_more_than_rm3() {
        let cfg = LabConfig::tiny();
        let rm1 = RmLab::build(RmClass::Rm1, cfg);
        let rm3 = RmLab::build(RmClass::Rm3, cfg);
        let r1 = rm1.measure_worker(&rm1.session_spec(rm1.rc_projection(), 64));
        let r3 = rm3.measure_worker(&rm3.session_spec(rm3.rc_projection(), 64));
        let t1 = r1.transform_cycles / r1.samples as f64;
        let t3 = r3.transform_cycles / r3.samples as f64;
        assert!(
            t1 > t3,
            "RM1 transform cycles/sample {t1:.0} should exceed RM3 {t3:.0}"
        );
    }

    #[test]
    fn dedup_lab_shrinks_storage_on_sessionized_data() {
        let cfg = LabConfig {
            features: 40,
            days: 1,
            rows_per_day: 4096,
            rows_per_stripe: 4096,
            seed: 0xd0d0,
        };
        let dcfg = dedup::DedupConfig::with_ratio(4.0);
        let raw = WriterOptions {
            compressed: false,
            encrypted: false,
            rows_per_stripe: cfg.rows_per_stripe,
            ..Default::default()
        };
        let off = RmLab::build_dedup(RmClass::Rm1, cfg, Some(raw.clone()), Some(dcfg));
        let on = RmLab::build_dedup(
            RmClass::Rm1,
            cfg,
            Some(WriterOptions {
                dedup: true,
                dedup_window: dcfg.session_window,
                ..raw
            }),
            Some(dcfg),
        );
        let (b_off, b_on) = (
            off.table.total_encoded_bytes(),
            on.table.total_encoded_bytes(),
        );
        assert!(
            b_off as f64 >= 2.0 * b_on as f64,
            "4x-duplicated lab should dedup >=2x on disk ({b_off} vs {b_on})"
        );
        assert_eq!(off.table.total_rows(), on.table.total_rows());
    }
}
