//! ETL: the streaming join/label engine and periodic batch ETL.
//!
//! Streaming engines join feature and event logs by request id within a time
//! window and publish labeled samples (used to update in-production models).
//! Batch engines periodically drain labeled samples from the bus, downsample
//! negatives, and emit day-partitioned sample sets for the warehouse
//! (§III-A1).

use crate::bus::MessageBus;
use crate::logdevice::Lsn;
use crate::record::{EventRecord, FeatureLogRecord, ScribeRecord};
use dedup::{DedupConfig, DedupSet, DedupStats};
use dsi_types::{PartitionId, Result, Sample};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Counters for an ETL engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EtlStats {
    /// Feature logs offered.
    pub features_in: u64,
    /// Events offered.
    pub events_in: u64,
    /// Joined (labeled) samples emitted.
    pub joined: u64,
    /// Feature logs expired without a matching event (labeled negative).
    pub expired_negative: u64,
    /// Events that arrived with no pending feature log (dropped).
    pub orphan_events: u64,
}

/// Joins feature logs with outcome events inside a time window.
///
/// A feature log waits up to `window_ns` for its event; on expiry it is
/// emitted with a negative label (no interaction observed), matching
/// production click-through labeling.
#[derive(Debug)]
pub struct StreamingJoiner {
    window_ns: u64,
    pending: HashMap<u64, FeatureLogRecord>,
    arrival_order: VecDeque<(u64, u64)>, // (ts, request_id)
    stats: EtlStats,
    registry: Option<dsi_obs::Registry>,
}

impl StreamingJoiner {
    /// Creates a joiner with the given join window in nanoseconds.
    pub fn new(window_ns: u64) -> Self {
        Self {
            window_ns,
            pending: HashMap::new(),
            arrival_order: VecDeque::new(),
            stats: EtlStats::default(),
            registry: None,
        }
    }

    /// Attaches a metrics registry: joins record their feature→event lag
    /// into `dsi_etl_join_lag_seconds`, and [`StreamingJoiner::publish_metrics`]
    /// bridges the counters.
    pub fn attach_registry(&mut self, registry: &dsi_obs::Registry) {
        self.registry = Some(registry.clone());
    }

    /// Bridges the joiner's counters and pending depth into `registry`.
    pub fn publish_metrics(&self, registry: &dsi_obs::Registry) {
        use dsi_obs::names;
        registry
            .counter(names::ETL_JOINED_TOTAL, &[])
            .advance_to(self.stats.joined);
        registry
            .counter(names::ETL_ORPHAN_EVENTS_TOTAL, &[])
            .advance_to(self.stats.orphan_events);
        registry
            .counter(names::ETL_EXPIRED_NEGATIVE_TOTAL, &[])
            .advance_to(self.stats.expired_negative);
        registry
            .gauge(names::ETL_PENDING_JOINS, &[])
            .set(self.pending.len() as f64);
    }

    /// Offers a feature log; it will wait for its event.
    pub fn offer_features(&mut self, record: FeatureLogRecord) {
        self.stats.features_in += 1;
        self.arrival_order
            .push_back((record.ts_ns, record.request_id));
        self.pending.insert(record.request_id, record);
    }

    /// Offers an event. Returns the labeled sample when it joins a pending
    /// feature log; `None` for orphans.
    pub fn offer_event(&mut self, event: EventRecord) -> Option<Sample> {
        self.stats.events_in += 1;
        match self.pending.remove(&event.request_id) {
            Some(rec) => {
                self.stats.joined += 1;
                if let Some(reg) = &self.registry {
                    let lag_ns = event.ts_ns.saturating_sub(rec.ts_ns);
                    reg.histogram(dsi_obs::names::ETL_JOIN_LAG_SECONDS, &[])
                        .record(lag_ns as f64 / 1e9);
                }
                let mut sample = rec.features;
                sample.set_label(event.label);
                Some(sample)
            }
            None => {
                self.stats.orphan_events += 1;
                None
            }
        }
    }

    /// Expires feature logs older than the window relative to `now_ns`,
    /// emitting them with negative labels.
    pub fn expire(&mut self, now_ns: u64) -> Vec<Sample> {
        let mut out = Vec::new();
        while let Some(&(ts, request_id)) = self.arrival_order.front() {
            if now_ns.saturating_sub(ts) < self.window_ns {
                break;
            }
            self.arrival_order.pop_front();
            if let Some(rec) = self.pending.remove(&request_id) {
                self.stats.expired_negative += 1;
                let mut sample = rec.features;
                sample.set_label(0.0);
                out.push(sample);
            }
        }
        out
    }

    /// Feature logs still waiting for events.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EtlStats {
        self.stats
    }
}

/// Periodic batch ETL: drains raw topics from the bus, joins and labels,
/// downsamples negatives, and groups output by day partition.
#[derive(Debug)]
pub struct BatchEtl {
    joiner: StreamingJoiner,
    feature_cursor: Lsn,
    event_cursor: Lsn,
    /// Keep this fraction of negative samples (production datasets
    /// downsample the overwhelming negative class).
    negative_keep_fraction: f64,
    ns_per_day: u64,
    negative_seen: u64,
    dedup_stats: DedupStats,
}

impl BatchEtl {
    /// Creates a batch ETL with a join window and negative downsampling.
    ///
    /// # Panics
    ///
    /// Panics if `negative_keep_fraction` is outside `[0, 1]`.
    pub fn new(window_ns: u64, negative_keep_fraction: f64, ns_per_day: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&negative_keep_fraction),
            "keep fraction in [0, 1]"
        );
        Self {
            joiner: StreamingJoiner::new(window_ns),
            feature_cursor: Lsn(0),
            event_cursor: Lsn(0),
            negative_keep_fraction,
            ns_per_day,
            negative_seen: 0,
            dedup_stats: DedupStats::default(),
        }
    }

    fn keep_negative(&mut self) -> bool {
        // Deterministic stride-based downsampling.
        self.negative_seen += 1;
        if self.negative_keep_fraction >= 1.0 {
            return true;
        }
        if self.negative_keep_fraction <= 0.0 {
            return false;
        }
        let stride = (1.0 / self.negative_keep_fraction).round() as u64;
        self.negative_seen.is_multiple_of(stride)
    }

    /// Runs one ETL pass: reads new records from `features_topic` and
    /// `events_topic` on `bus`, joins/labels/downsamples, and returns
    /// samples grouped by day partition. Also trims consumed log prefixes.
    ///
    /// `now_ns` drives join-window expiry; timestamps map to partitions via
    /// `ts / ns_per_day`.
    ///
    /// # Errors
    ///
    /// Propagates bus read failures.
    pub fn run_pass(
        &mut self,
        bus: &MessageBus,
        features_topic: &str,
        events_topic: &str,
        now_ns: u64,
    ) -> Result<BTreeMap<PartitionId, Vec<Sample>>> {
        let mut out: BTreeMap<PartitionId, Vec<Sample>> = BTreeMap::new();
        let mut emit = |this: &mut Self, ts_ns: u64, sample: Sample| {
            let keep = sample.label() > 0.0 || this.keep_negative();
            if keep {
                let day = (ts_ns / this.ns_per_day) as u32;
                out.entry(PartitionId::new(day)).or_default().push(sample);
            }
        };

        let f_tail = bus.tail(features_topic);
        let feature_records = bus.read(features_topic, self.feature_cursor, f_tail)?;
        // Remember per-request timestamps so joined samples land in the
        // partition of their serving day.
        let mut ts_of: HashMap<u64, u64> = HashMap::new();
        for r in feature_records {
            if let ScribeRecord::Feature(f) = r {
                ts_of.insert(f.request_id, f.ts_ns);
                self.joiner.offer_features(f);
            }
        }
        self.feature_cursor = f_tail;

        let e_tail = bus.tail(events_topic);
        let event_records = bus.read(events_topic, self.event_cursor, e_tail)?;
        for r in event_records {
            if let ScribeRecord::Event(e) = r {
                let ts = ts_of.get(&e.request_id).copied().unwrap_or(e.ts_ns);
                if let Some(sample) = self.joiner.offer_event(e) {
                    emit(self, ts, sample);
                }
            }
        }
        self.event_cursor = e_tail;

        // Expired feature logs become negatives in their serving partition.
        for sample in self.joiner.expire(now_ns) {
            emit(self, now_ns.saturating_sub(self.joiner.window_ns), sample);
        }

        bus.trim(features_topic, self.feature_cursor);
        bus.trim(events_topic, self.event_cursor);
        if let Some(reg) = self.joiner.registry.clone() {
            self.joiner.publish_metrics(&reg);
            bus.publish_metrics(&reg);
        }
        Ok(out)
    }

    /// Runs one ETL pass and clusters each partition's output into RecD
    /// session [`DedupSet`]s: requests served close together share
    /// bit-identical sparse payloads, so the canonical payload is kept
    /// once with per-member dense/label deltas (the form the warehouse
    /// stores and DPP transforms once per set).
    ///
    /// # Errors
    ///
    /// Propagates bus read failures.
    pub fn run_dedup_pass(
        &mut self,
        bus: &MessageBus,
        features_topic: &str,
        events_topic: &str,
        now_ns: u64,
        cfg: &DedupConfig,
    ) -> Result<BTreeMap<PartitionId, Vec<DedupSet>>> {
        let parts = self.run_pass(bus, features_topic, events_topic, now_ns)?;
        let mut out = BTreeMap::new();
        for (part, samples) in parts {
            let (sets, stats) = dedup::cluster_sessions(&samples, cfg);
            self.dedup_stats.rows += stats.rows;
            self.dedup_stats.sets += stats.sets;
            self.dedup_stats.bytes_saved += stats.bytes_saved;
            out.insert(part, sets);
        }
        if let Some(reg) = self.joiner.registry.clone() {
            use dsi_obs::names;
            reg.counter(names::DEDUP_SETS_TOTAL, &[])
                .advance_to(self.dedup_stats.sets);
            reg.counter(names::DEDUP_ROWS_TOTAL, &[])
                .advance_to(self.dedup_stats.rows);
            reg.counter(names::DEDUP_BYTES_SAVED_TOTAL, &[])
                .advance_to(self.dedup_stats.bytes_saved);
            reg.gauge(names::DEDUP_RATIO, &[])
                .set(self.dedup_stats.ratio());
        }
        Ok(out)
    }

    /// Attaches a metrics registry; every [`BatchEtl::run_pass`] then
    /// records join lag and republishes ETL counters and bus backlog.
    pub fn attach_registry(&mut self, registry: &dsi_obs::Registry) {
        self.joiner.attach_registry(registry);
    }

    /// Joiner counters.
    pub fn stats(&self) -> EtlStats {
        self.joiner.stats()
    }

    /// Cumulative session-clustering counters (dedup passes only).
    pub fn dedup_stats(&self) -> DedupStats {
        self.dedup_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsi_types::FeatureId;

    fn features(request_id: u64, ts: u64) -> FeatureLogRecord {
        let mut s = Sample::new(0.0);
        s.set_dense(FeatureId(1), request_id as f32);
        FeatureLogRecord::new(request_id, ts, s)
    }

    #[test]
    fn join_labels_sample() {
        let mut j = StreamingJoiner::new(100);
        j.offer_features(features(1, 0));
        let s = j.offer_event(EventRecord::positive(1, 50)).unwrap();
        assert_eq!(s.label(), 1.0);
        assert_eq!(s.dense(FeatureId(1)), Some(1.0));
        assert_eq!(j.stats().joined, 1);
        assert_eq!(j.pending_count(), 0);
    }

    #[test]
    fn orphan_events_are_dropped() {
        let mut j = StreamingJoiner::new(100);
        assert!(j.offer_event(EventRecord::positive(9, 0)).is_none());
        assert_eq!(j.stats().orphan_events, 1);
    }

    #[test]
    fn expiry_emits_negatives_in_order() {
        let mut j = StreamingJoiner::new(100);
        j.offer_features(features(1, 0));
        j.offer_features(features(2, 50));
        j.offer_features(features(3, 150));
        let expired = j.expire(160);
        assert_eq!(expired.len(), 2);
        assert!(expired.iter().all(|s| s.label() == 0.0));
        assert_eq!(j.pending_count(), 1);
        assert_eq!(j.stats().expired_negative, 2);
    }

    #[test]
    fn joined_request_does_not_expire() {
        let mut j = StreamingJoiner::new(100);
        j.offer_features(features(1, 0));
        j.offer_event(EventRecord::positive(1, 10)).unwrap();
        assert!(j.expire(1000).is_empty());
    }

    #[test]
    fn batch_etl_partitions_by_day() {
        let bus = MessageBus::new();
        let day = 1000u64;
        for (rid, ts) in [(1u64, 10u64), (2, 500), (3, 1500)] {
            bus.publish("f", features(rid, ts).into());
            bus.publish("e", EventRecord::positive(rid, ts + 1).into());
        }
        let mut etl = BatchEtl::new(100, 1.0, day);
        let parts = etl.run_pass(&bus, "f", "e", 2000).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[&PartitionId::new(0)].len(), 2);
        assert_eq!(parts[&PartitionId::new(1)].len(), 1);
        // Consumed prefixes trimmed.
        assert!(bus.read("f", Lsn(0), Lsn(1)).is_err());
    }

    #[test]
    fn batch_etl_downsamples_negatives() {
        let bus = MessageBus::new();
        for rid in 0..100u64 {
            bus.publish("f", features(rid, rid).into());
            // Only 10 positives; the rest will expire negative.
            if rid < 10 {
                bus.publish("e", EventRecord::positive(rid, rid + 1).into());
            }
        }
        let mut etl = BatchEtl::new(10, 0.5, 1_000_000);
        let parts = etl.run_pass(&bus, "f", "e", 1_000).unwrap();
        let total: usize = parts.values().map(Vec::len).sum();
        // 10 positives + ~45 of 90 negatives.
        assert!((50..=60).contains(&total), "total {total}");
        let positives: usize = parts.values().flatten().filter(|s| s.label() > 0.0).count();
        assert_eq!(positives, 10);
    }

    #[test]
    fn metrics_bridge_tracks_joins_and_backlog() {
        let reg = dsi_obs::Registry::new();
        let bus = MessageBus::new();
        let mut etl = BatchEtl::new(100, 1.0, 1_000_000);
        etl.attach_registry(&reg);
        for rid in 0..5u64 {
            bus.publish("f", features(rid, rid * 10).into());
            bus.publish("e", EventRecord::positive(rid, rid * 10 + 7).into());
        }
        etl.run_pass(&bus, "f", "e", 1_000).unwrap();
        assert_eq!(reg.counter_value(dsi_obs::names::ETL_JOINED_TOTAL, &[]), 5);
        // Every join lagged 7ns.
        match reg
            .value(dsi_obs::names::ETL_JOIN_LAG_SECONDS, &[])
            .unwrap()
        {
            dsi_obs::MetricValue::Histogram(s) => {
                assert_eq!(s.count, 5);
                assert!((s.max - 7e-9).abs() < 1e-15);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Published totals survive trimming; backlog reflects the trim.
        assert_eq!(
            reg.counter_value(dsi_obs::names::SCRIBE_PUBLISHED_TOTAL, &[("topic", "f")]),
            5
        );
        assert_eq!(
            reg.gauge_value(dsi_obs::names::SCRIBE_BUS_BACKLOG, &[("topic", "f")]),
            0.0
        );
    }

    #[test]
    fn dedup_pass_clusters_sessions_and_preserves_rows() {
        use dsi_types::SparseList;
        let publish_sessions = |bus: &MessageBus| {
            // 4 sessions of 4 requests each: members share a sparse payload.
            for rid in 0..16u64 {
                let session = rid / 4;
                let mut s = Sample::new(0.0);
                s.set_dense(FeatureId(1), rid as f32);
                s.set_sparse(
                    FeatureId(2),
                    SparseList::from_ids((0..10).map(|k| session * 50 + k).collect()),
                );
                bus.publish("f", FeatureLogRecord::new(rid, rid, s).into());
                bus.publish("e", EventRecord::positive(rid, rid + 1).into());
            }
        };
        let cfg = DedupConfig::default();

        let plain_bus = MessageBus::new();
        publish_sessions(&plain_bus);
        let mut plain_etl = BatchEtl::new(100, 1.0, 1_000_000);
        let plain: Vec<Sample> = plain_etl
            .run_pass(&plain_bus, "f", "e", 2_000)
            .unwrap()
            .into_values()
            .flatten()
            .collect();

        let bus = MessageBus::new();
        publish_sessions(&bus);
        let reg = dsi_obs::Registry::new();
        let mut etl = BatchEtl::new(100, 1.0, 1_000_000);
        etl.attach_registry(&reg);
        let parts = etl.run_dedup_pass(&bus, "f", "e", 2_000, &cfg).unwrap();
        let sets: Vec<_> = parts.into_values().flatten().collect();
        assert_eq!(sets.len(), 4);
        assert_eq!(dedup::expand_sets(&sets), plain, "expansion is lossless");
        let stats = etl.dedup_stats();
        assert_eq!(stats.rows, 16);
        assert_eq!(stats.sets, 4);
        assert!(stats.bytes_saved > 0);
        assert_eq!(reg.counter_value(dsi_obs::names::DEDUP_SETS_TOTAL, &[]), 4);
        assert_eq!(reg.counter_value(dsi_obs::names::DEDUP_ROWS_TOTAL, &[]), 16);
        assert!((reg.gauge_value(dsi_obs::names::DEDUP_RATIO, &[]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn batch_etl_is_incremental() {
        let bus = MessageBus::new();
        let mut etl = BatchEtl::new(10, 1.0, 1_000_000);
        bus.publish("f", features(1, 0).into());
        bus.publish("e", EventRecord::positive(1, 1).into());
        let first = etl.run_pass(&bus, "f", "e", 100).unwrap();
        assert_eq!(first.values().flatten().count(), 1);
        // Nothing new: second pass is empty.
        let second = etl.run_pass(&bus, "f", "e", 200).unwrap();
        assert!(second.is_empty());
        // New records picked up from the cursor.
        bus.publish("f", features(2, 150).into());
        bus.publish("e", EventRecord::negative(2, 151).into());
        let third = etl.run_pass(&bus, "f", "e", 300).unwrap();
        assert_eq!(third.values().flatten().count(), 1);
    }
}
