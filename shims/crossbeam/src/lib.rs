//! Offline shim of `crossbeam`, providing the `channel` module surface the
//! workspace uses: a bounded multi-producer multi-consumer channel with
//! cloneable senders *and* receivers, blocking `send`/`recv`/`recv_timeout`,
//! non-blocking `try_recv`, `len`, and a [`channel::Select`] that parks the
//! caller until one of several receivers becomes ready.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, Weak};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The buffer is at capacity; the value is handed back.
        Full(T),
        /// Every receiver has disconnected; the value is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Select::ready_timeout`] when no registered
    /// receiver became ready within the timeout.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ReadyTimeoutError;

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_full: Condvar,
        not_empty: Condvar,
        /// Parked [`Select`]s to wake when a message lands or the last
        /// sender leaves. Lock order: `state` before `watchers`.
        watchers: Mutex<Vec<Weak<Signal>>>,
    }

    impl<T> Inner<T> {
        /// Wakes every parked [`Select`] watching this channel, pruning
        /// watchers whose `Select` already went away.
        fn notify_watchers(&self) {
            let mut ws = self.watchers.lock().unwrap();
            ws.retain(|w| match w.upgrade() {
                Some(s) => {
                    s.notify();
                    true
                }
                None => false,
            });
        }
    }

    /// Wakeup token shared between one [`Select`] wait and the channels it
    /// watches.
    #[derive(Default)]
    struct Signal {
        fired: Mutex<bool>,
        cv: Condvar,
    }

    impl Signal {
        fn notify(&self) {
            *self.fired.lock().unwrap() = true;
            self.cv.notify_all();
        }

        fn reset(&self) {
            *self.fired.lock().unwrap() = false;
        }

        /// Parks until [`Signal::notify`] fires or `deadline` passes.
        fn wait_deadline(&self, deadline: Instant) {
            let mut fired = self.fired.lock().unwrap();
            while !*fired {
                let now = Instant::now();
                if now >= deadline {
                    return;
                }
                let (g, _) = self.cv.wait_timeout(fired, deadline - now).unwrap();
                fired = g;
            }
        }
    }

    /// Type-erased receiver hooks used by [`Select`].
    trait Watchable {
        fn watch(&self, signal: &Arc<Signal>);
        fn unwatch(&self, signal: &Arc<Signal>);
        /// Whether `recv` would return without blocking (data buffered, or
        /// the channel is disconnected).
        fn is_ready(&self) -> bool;
    }

    impl<T> Watchable for Receiver<T> {
        fn watch(&self, signal: &Arc<Signal>) {
            self.inner
                .watchers
                .lock()
                .unwrap()
                .push(Arc::downgrade(signal));
        }

        fn unwatch(&self, signal: &Arc<Signal>) {
            self.inner
                .watchers
                .lock()
                .unwrap()
                .retain(|w| w.upgrade().is_some_and(|s| !Arc::ptr_eq(&s, signal)));
        }

        fn is_ready(&self) -> bool {
            let s = self.inner.state.lock().unwrap();
            !s.buf.is_empty() || s.senders == 0
        }
    }

    /// Waits over several receivers at once: registers each via
    /// [`Select::recv`], then parks in [`Select::ready_timeout`] until one
    /// has a buffered message or disconnects. Readiness is a hint, as with
    /// real crossbeam: by the time the caller acts, a competing receiver
    /// clone may have taken the message, so callers must re-check with
    /// `try_recv` and re-wait.
    #[derive(Default)]
    pub struct Select<'a> {
        handles: Vec<&'a dyn Watchable>,
    }

    impl<'a> Select<'a> {
        /// Creates an empty selector.
        pub fn new() -> Self {
            Self {
                handles: Vec::new(),
            }
        }

        /// Registers a receive operation, returning its index.
        pub fn recv<T>(&mut self, r: &'a Receiver<T>) -> usize {
            self.handles.push(r);
            self.handles.len() - 1
        }

        /// Blocks until a registered receiver is ready or `timeout`
        /// elapses, returning the ready operation's index. With no
        /// registered operations, waits out the timeout.
        ///
        /// # Errors
        ///
        /// [`ReadyTimeoutError`] if nothing became ready in time.
        pub fn ready_timeout(&self, timeout: Duration) -> Result<usize, ReadyTimeoutError> {
            let deadline = Instant::now() + timeout;
            let signal = Arc::new(Signal::default());
            loop {
                if let Some(i) = self.handles.iter().position(|h| h.is_ready()) {
                    return Ok(i);
                }
                signal.reset();
                for h in &self.handles {
                    h.watch(&signal);
                }
                // Re-check after registration: a message may have landed
                // between the poll above and the watch.
                let ready = self.handles.iter().position(|h| h.is_ready());
                if ready.is_none() && Instant::now() < deadline {
                    signal.wait_deadline(deadline);
                }
                for h in &self.handles {
                    h.unwatch(&signal);
                }
                if let Some(i) = ready {
                    return Ok(i);
                }
                if Instant::now() >= deadline {
                    return self
                        .handles
                        .iter()
                        .position(|h| h.is_ready())
                        .ok_or(ReadyTimeoutError);
                }
            }
        }
    }

    impl std::fmt::Debug for Select<'_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Select")
                .field("handles", &self.handles.len())
                .finish()
        }
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a bounded channel. Cloneable: clones compete
    /// for messages (MPMC), as with the real crossbeam channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a bounded channel with capacity `cap` (at least 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                buf: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            watchers: Mutex::new(Vec::new()),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until buffer space frees, then enqueues `value`.
        ///
        /// # Errors
        ///
        /// Returns the value when every receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut s = self.inner.state.lock().unwrap();
            loop {
                if s.receivers == 0 {
                    return Err(SendError(value));
                }
                if s.buf.len() < s.cap {
                    s.buf.push_back(value);
                    self.inner.not_empty.notify_one();
                    self.inner.notify_watchers();
                    return Ok(());
                }
                s = self.inner.not_full.wait(s).unwrap();
            }
        }

        /// Enqueues `value` without blocking.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when the buffer is at capacity;
        /// [`TrySendError::Disconnected`] when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut s = self.inner.state.lock().unwrap();
            if s.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if s.buf.len() >= s.cap {
                return Err(TrySendError::Full(value));
            }
            s.buf.push_back(value);
            self.inner.not_empty.notify_one();
            self.inner.notify_watchers();
            Ok(())
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().buf.len()
        }

        /// Whether the buffer is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Pops a message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] while senders remain;
        /// [`TryRecvError::Disconnected`] once drained and senderless.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut s = self.inner.state.lock().unwrap();
            match s.buf.pop_front() {
                Some(v) => {
                    self.inner.not_full.notify_one();
                    Ok(v)
                }
                None if s.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is drained and senderless.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut s = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = s.buf.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvError);
                }
                s = self.inner.not_empty.wait(s).unwrap();
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] once the deadline passes with the
        /// channel still empty; [`RecvTimeoutError::Disconnected`] once the
        /// channel is drained and senderless.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut s = self.inner.state.lock().unwrap();
            loop {
                if let Some(v) = s.buf.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _) = self
                    .inner
                    .not_empty
                    .wait_timeout(s, deadline - now)
                    .unwrap();
                s = g;
            }
        }

        /// Whether every sender has disconnected. Buffered messages may
        /// still remain; use with [`Receiver::is_empty`] to detect an
        /// exhausted channel.
        pub fn is_disconnected(&self) -> bool {
            self.inner.state.lock().unwrap().senders == 0
        }

        /// Messages currently buffered.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().buf.len()
        }

        /// Whether the buffer is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.inner.state.lock().unwrap();
            s.senders -= 1;
            let last = s.senders == 0;
            drop(s);
            if last {
                self.inner.not_empty.notify_all();
                self.inner.notify_watchers();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut s = self.inner.state.lock().unwrap();
            s.receivers -= 1;
            if s.receivers == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn bounded_send_try_recv() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = bounded(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(42).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(42));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn select_wakes_on_send_without_polling() {
        use std::time::{Duration, Instant};
        let (tx1, rx1) = bounded::<u32>(1);
        let (tx2, rx2) = bounded::<u32>(1);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx2.send(7).unwrap();
            std::mem::forget(tx1); // keep channel 1 alive past the test
        });
        let mut sel = Select::new();
        let i1 = sel.recv(&rx1);
        let i2 = sel.recv(&rx2);
        assert_eq!((i1, i2), (0, 1));
        let start = Instant::now();
        let ready = sel.ready_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(ready, i2);
        assert!(start.elapsed() < Duration::from_secs(4), "parked, not spun");
        assert_eq!(rx2.try_recv(), Ok(7));
        h.join().unwrap();
    }

    #[test]
    fn select_reports_disconnect_and_timeout() {
        use std::time::Duration;
        let (tx, rx) = bounded::<u32>(1);
        let mut sel = Select::new();
        sel.recv(&rx);
        assert_eq!(
            sel.ready_timeout(Duration::from_millis(5)),
            Err(ReadyTimeoutError)
        );
        assert!(!rx.is_disconnected());
        drop(tx);
        // Disconnected channels are ready: recv would not block.
        assert_eq!(sel.ready_timeout(Duration::from_millis(5)), Ok(0));
        assert!(rx.is_disconnected());
    }

    #[test]
    fn cloned_receivers_compete() {
        let (tx, rx1) = bounded(8);
        let rx2 = rx1.clone();
        for i in 0..8 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx1.try_recv() {
            got.push(v);
            if let Ok(v) = rx2.try_recv() {
                got.push(v);
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }
}
