//! Offline shim of `serde`.
//!
//! Provides `Serialize`/`Deserialize` as marker traits and re-exports the
//! no-op derives so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The workspace
//! never serializes through serde at runtime (it has its own byte
//! formats), so no functional serialization machinery is needed.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
