//! Byte-size units and human-readable formatting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1024 * MIB;
/// One tebibyte (2^40 bytes).
pub const TIB: u64 = 1024 * GIB;
/// One pebibyte (2^50 bytes).
pub const PIB: u64 = 1024 * TIB;

/// A size in bytes with human-readable display and arithmetic.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from kibibytes.
    pub fn kib(n: u64) -> Self {
        ByteSize(n * KIB)
    }

    /// Creates a size from mebibytes.
    pub fn mib(n: u64) -> Self {
        ByteSize(n * MIB)
    }

    /// Creates a size from gibibytes.
    pub fn gib(n: u64) -> Self {
        ByteSize(n * GIB)
    }

    /// Creates a size from tebibytes.
    pub fn tib(n: u64) -> Self {
        ByteSize(n * TIB)
    }

    /// The raw byte count.
    pub fn bytes(self) -> u64 {
        self.0
    }

    /// This size expressed in (fractional) mebibytes.
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// This size expressed in (fractional) gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / GIB as f64
    }

    /// This size expressed in (fractional) pebibytes.
    pub fn as_pib(self) -> f64 {
        self.0 as f64 / PIB as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a floating-point scale factor, rounding to bytes.
    pub fn scale(self, factor: f64) -> ByteSize {
        ByteSize((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        let (value, unit) = if self.0 >= PIB {
            (b / PIB as f64, "PiB")
        } else if self.0 >= TIB {
            (b / TIB as f64, "TiB")
        } else if self.0 >= GIB {
            (b / GIB as f64, "GiB")
        } else if self.0 >= MIB {
            (b / MIB as f64, "MiB")
        } else if self.0 >= KIB {
            (b / KIB as f64, "KiB")
        } else {
            return write!(f, "{} B", self.0);
        };
        write!(f, "{value:.2} {unit}")
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl From<u64> for ByteSize {
    fn from(v: u64) -> Self {
        ByteSize(v)
    }
}

impl From<usize> for ByteSize {
    fn from(v: usize) -> Self {
        ByteSize(v as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(ByteSize(512).to_string(), "512 B");
        assert_eq!(ByteSize::kib(2).to_string(), "2.00 KiB");
        assert_eq!(ByteSize::mib(3).to_string(), "3.00 MiB");
        assert_eq!(ByteSize::gib(1).to_string(), "1.00 GiB");
        assert_eq!(ByteSize(PIB * 13).to_string(), "13.00 PiB");
    }

    #[test]
    fn arithmetic_works() {
        let a = ByteSize::mib(1) + ByteSize::kib(512);
        assert_eq!(a.bytes(), MIB + 512 * KIB);
        assert_eq!((a - ByteSize::kib(512)).bytes(), MIB);
        assert_eq!((ByteSize::kib(1) * 3).bytes(), 3 * KIB);
        let total: ByteSize = (0..4).map(|_| ByteSize::kib(1)).sum();
        assert_eq!(total, ByteSize::kib(4));
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(ByteSize(100).scale(0.5).bytes(), 50);
        assert_eq!(ByteSize(3).scale(0.5).bytes(), 2); // rounds 1.5 -> 2
        assert_eq!(ByteSize(100).scale(-1.0).bytes(), 0);
    }

    #[test]
    fn conversions() {
        assert!((ByteSize::gib(2).as_gib() - 2.0).abs() < 1e-12);
        assert!((ByteSize::mib(1536).as_gib() - 1.5).abs() < 1e-12);
        assert_eq!(ByteSize::from(10u64).bytes(), 10);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(ByteSize(5).saturating_sub(ByteSize(10)), ByteSize::ZERO);
    }
}
